"""Application scenario: interdependent medical data (Section 10).

A patient record with an incompletely specified history is a small set of
possible worlds: the unknown diagnosis and the symptom explaining it are
*correlated* (they live in one component), while an unrelated unknown — the
patient's smoking status — is independent (its own component).  The certain
treatment catalogue lives in a template relation.

The example answers the two questions from the paper: the possible
diagnoses (with confidences) and the medications applicable to every
possible diagnosis.

Run with::

    python examples/medical_data.py
"""

from repro.apps import MedicalScenario, PATIENT_RELATION
from repro.core import uwsdt_possible_with_confidence


def main() -> None:
    scenario = MedicalScenario(
        treatments=[
            ("influenza", "oseltamivir"),
            ("influenza", "paracetamol"),
            ("pneumonia", "amoxicillin"),
            ("pneumonia", "paracetamol"),
            ("bronchitis", "paracetamol"),
            ("bronchitis", "salbutamol"),
        ]
    )

    record = scenario.build_patient_record(
        patient="patient-17",
        observations={"FEVER": "high", "AGE": 67},
        candidate_clusters=[
            # Correlated cluster: the diagnosis and the finding that explains it.
            {
                "DIAGNOSIS": ["influenza", "pneumonia", "bronchitis"],
                "CHEST_XRAY": ["clear", "infiltrate", "clear"],
            },
            # Independent unknown.
            {"SMOKER": ["yes", "no"]},
        ],
        cluster_probabilities=[[0.5, 0.3, 0.2], [0.4, 0.6]],
    )

    print("patient record UWSDT:")
    print(f"  template tuples: {record.template_size()}")
    print(f"  components:      {record.component_count()}")
    print(f"  possible worlds: {len(record.rep())}")

    print("\npossible diagnoses (with confidence):")
    for diagnosis, confidence in scenario.possible_diagnoses(record):
        print(f"  {diagnosis:<12} {confidence:.2f}")

    print("\nmedications applicable to every possible diagnosis:")
    for medication in scenario.candidate_medications(record):
        print(f"  {medication}")

    print("\nfull possible records:")
    for values, confidence in uwsdt_possible_with_confidence(record, PATIENT_RELATION):
        print(f"  {values}  confidence {confidence:.2f}")


if __name__ == "__main__":
    main()
