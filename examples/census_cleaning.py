"""Census-scale scenario: noise injection, data cleaning, and the six queries.

A laptop-scale rerun of the paper's evaluation pipeline (Section 9):

1. generate a synthetic IPUMS-like census relation,
2. inject or-set noise at a configurable placeholder density,
3. build the UWSDT and chase the 12 dependencies of Figure 25,
4. evaluate the six queries of Figure 29 and report the Figure 27 statistics
   and per-query timings.

Run with::

    python examples/census_cleaning.py [rows] [density]

e.g. ``python examples/census_cleaning.py 5000 0.001`` for 5 000 tuples at
0.1 % placeholder density.
"""

import sys
import time

from repro.bench import census_instance, density_label, format_records
from repro.census import CENSUS_QUERIES, census_dependencies
from repro.core import chase_uwsdt
from repro.core.algebra import evaluate_on_uwsdt


def main(rows: int = 5_000, density: float = 0.001) -> None:
    print(f"census instance: {rows} tuples, density {density_label(density)}")
    instance = census_instance(rows, density)
    uwsdt = instance.uwsdt.copy()
    print(f"placeholders injected: {uwsdt.placeholder_count()}")
    print(f"worlds represented:   > 2^{uwsdt.placeholder_count()}")

    start = time.perf_counter()
    chase_uwsdt(uwsdt, census_dependencies())
    chase_seconds = time.perf_counter() - start
    statistics = uwsdt.statistics()
    print(f"\nchase of the 12 dependencies: {chase_seconds:.2f}s")
    print(f"  components:            {statistics['components']}")
    print(f"  components > 1 field:  {statistics['components_gt1']}")
    print(f"  |C| (component rows):  {statistics['component_relation_size']}")
    print(f"  |R| (template rows):   {statistics['template_size']}")

    records = []
    for name, build_query in CENSUS_QUERIES.items():
        working_copy = uwsdt.copy()
        start = time.perf_counter()
        evaluate_on_uwsdt(build_query(), working_copy, name)
        elapsed = time.perf_counter() - start
        records.append(
            {
                "query": name,
                "seconds": elapsed,
                "result_tuples": working_copy.template_size(name),
                "components": sum(
                    1
                    for component in working_copy.components.values()
                    if any(field.relation == name for field in component.fields)
                ),
            }
        )
    print("\nquery evaluation on the cleaned UWSDT (Figure 29 / Figure 30):")
    print(format_records(records, ["query", "seconds", "result_tuples", "components"]))


if __name__ == "__main__":
    arg_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000
    arg_density = float(sys.argv[2]) if len(sys.argv) > 2 else 0.001
    main(arg_rows, arg_density)
