"""Application scenario: minimal repairs of an inconsistent database (Section 10).

An address relation violates its key (one person, two conflicting cities).
The set of minimal repairs — each keeping exactly one tuple per conflicting
group — is encoded as a UWSDT: the consistent part lands in the template,
the conflicts in components.  Queries over the repair set then return the
classical *certain* answers plus the possible answers with confidences,
illustrating that UWSDT answers preserve strictly more information than
consistent query answering alone.

Run with::

    python examples/inconsistent_repairs.py
"""

from repro.apps import consistent_answer, minimal_repairs, possible_answer, repairs_to_uwsdt
from repro.core import uwsdt_possible_with_confidence
from repro.relational import Relation, RelationSchema


def main() -> None:
    addresses = Relation(
        RelationSchema("Address", ("PERSON", "CITY", "ZIP")),
        [
            ("alice", "Ithaca", "14850"),
            ("alice", "Oxford", "OX1"),       # key violation: two cities for alice
            ("bob", "Saarbruecken", "66111"),
            ("carol", "Ithaca", "14850"),
            ("carol", "Ithaca", "14853"),     # key violation: two ZIPs for carol
        ],
    )
    print("inconsistent relation (key PERSON):")
    print(addresses.to_text())

    repairs = minimal_repairs(addresses, ["PERSON"])
    print(f"\nminimal repairs: {len(repairs)}")
    print("certain (consistent) answers:", sorted(consistent_answer(repairs, "Address")))
    print("possible answers:            ", sorted(possible_answer(repairs, "Address")))

    uwsdt = repairs_to_uwsdt(addresses, ["PERSON"])
    print("\nUWSDT encoding of the repair set:")
    print(f"  template tuples: {uwsdt.template_size()}")
    print(f"  components:      {uwsdt.component_count()}")
    print(f"  worlds:          {len(uwsdt.rep())} (equals the number of repairs)")

    print("\npossible tuples with confidence over the repairs:")
    for row, confidence in uwsdt_possible_with_confidence(uwsdt, "Address"):
        print(f"  {row}  confidence {confidence:.3f}")


if __name__ == "__main__":
    main()
