"""Quickstart: the census-form example from the paper's introduction.

Walks through the running example of Sections 1–3:

1. two ambiguous census forms as an or-set relation (32 possible worlds),
2. the probabilistic WSD encoding,
3. data cleaning with the social-security-number key constraint
   (32 → 24 worlds; not representable with or-sets any more),
4. the WSDT / UWSDT refinements,
5. a projection query and tuple confidences (Example 11),
6. the equivalent c-table (the Section 1 correspondence).

Run with::

    python examples/quickstart.py
"""

from repro import OrSet, OrSetRelation, UWSDT, WSD, WSDT
from repro.core import (
    FunctionalDependency,
    chase_wsd,
    possible_with_confidence,
)
from repro.core.algebra import BaseRelation, evaluate_on_wsd
from repro.ctables import wsdt_to_ctable


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. The two ambiguous census forms (Figure 1) as an or-set relation.
    # ------------------------------------------------------------------ #
    forms = OrSetRelation.from_dicts(
        "R",
        ["S", "N", "M"],
        [
            # Smith's social security number reads as 185 or 785; he is
            # single (1) or married (2).
            {"S": OrSet([185, 785], [0.2, 0.8]), "N": "Smith", "M": OrSet([1, 2], [0.7, 0.3])},
            # Brown's number reads as 185 or 186; the marital status box is
            # completely unreadable.
            {"S": OrSet([185, 186], [0.5, 0.5]), "N": "Brown", "M": OrSet([1, 2, 3, 4])},
        ],
    )
    print("== Or-set relation ==")
    print(f"possible worlds: {forms.world_count()}")
    print(f"stored values:   {forms.representation_size()}")

    # ------------------------------------------------------------------ #
    # 2. The probabilistic WSD (Figure 4): one component per uncertain field.
    # ------------------------------------------------------------------ #
    wsd = WSD.from_orset_relation(forms)
    print("\n== Probabilistic WSD (one component per field) ==")
    print(wsd.to_text())

    # ------------------------------------------------------------------ #
    # 3. Data cleaning: social security numbers are unique (S -> N, M).
    # ------------------------------------------------------------------ #
    chase_wsd(wsd, [FunctionalDependency("R", ["S"], "N"), FunctionalDependency("R", ["S"], "M")])
    worlds = wsd.rep()
    print("\n== After chasing the key constraint S -> N, M ==")
    print(f"remaining worlds: {len(worlds)} (the paper's 24)")
    print(f"probability mass: {worlds.total_probability():.6f}")
    print(wsd.to_text())

    # ------------------------------------------------------------------ #
    # 4. Template refinements: WSDT and the uniform UWSDT.
    # ------------------------------------------------------------------ #
    wsdt = WSDT.from_wsd(wsd)
    print("\n== WSDT (certain data moved to the template, Figure 5) ==")
    print(wsdt.to_text())

    uwsdt = UWSDT.from_wsdt(wsdt)
    uniform = uwsdt.to_uniform_relations()
    print("\n== UWSDT fixed-schema relations (Figure 8) ==")
    for name in ("F", "W", "C"):
        print(uniform[name].to_text(max_rows=12))
        print()

    # ------------------------------------------------------------------ #
    # 5. A query and tuple confidences (Example 11): Q = π_S(R).
    # ------------------------------------------------------------------ #
    query = BaseRelation("R").project(["S"])
    evaluate_on_wsd(query, wsd, "Q")
    print("== possible_p(π_S(R)) ==")
    for row, confidence in possible_with_confidence(wsd, "Q"):
        print(f"  S = {row[0]}  confidence {confidence:.3f}")

    # ------------------------------------------------------------------ #
    # 6. The equivalent c-table (Section 1).
    # ------------------------------------------------------------------ #
    ctable = wsdt_to_ctable(wsdt, "R")
    print("\n== Equivalent c-table ==")
    print(f"rows: {ctable.rows}")
    print(f"global condition: {ctable.global_condition}")
    print(f"worlds represented: {len(ctable.to_worldset())}")


if __name__ == "__main__":
    main()
