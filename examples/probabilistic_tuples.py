"""Tuple-independent probabilistic databases as WSDs (Example 5, Figures 6–7).

Shows that WSDs strictly generalize the tuple-independent model: the two
relations of Figure 6(a) are encoded as one two-local-world component per
uncertain tuple (Figure 7), and the eight possible worlds with the paper's
probabilities are recovered exactly.  A join query is then evaluated on the
WSD and its answer tuple confidences are compared with the extensional
(Dalvi–Suciu style) computation.

Run with::

    python examples/probabilistic_tuples.py
"""

from repro import TupleIndependentDatabase, WSD
from repro.baselines import extensional
from repro.core import possible_with_confidence
from repro.core.algebra import BaseRelation, evaluate_on_wsd
from repro.relational import attr_eq
from repro.worlds.tuple_independent import TupleIndependentRelation
from repro.relational.schema import RelationSchema


def main() -> None:
    # Figure 6 (a): relations S(A, B) and T(C, D) with per-tuple confidences.
    s_relation = TupleIndependentRelation(RelationSchema("S", ("A", "B")))
    s_relation.insert(("m", 1), 0.8)
    s_relation.insert(("n", 1), 0.5)
    t_relation = TupleIndependentRelation(RelationSchema("T", ("C", "D")))
    t_relation.insert((1, "p"), 0.6)
    database = TupleIndependentDatabase([s_relation, t_relation])

    print("tuple-independent database: ", database)
    worlds = database.to_worldset()
    print(f"possible worlds: {len(worlds)} (Figure 6 (b))")
    for world in worlds:
        s_rows = sorted(world.database.relation("S").rows)
        t_rows = sorted(world.database.relation("T").rows)
        print(f"  P={world.probability:.2f}  S={s_rows}  T={t_rows}")

    # Figure 7: the WSD encoding.
    wsd = WSD.from_tuple_independent(database)
    print("\nWSD encoding (Figure 7):")
    print(wsd.to_text())
    print("\nsame distribution as the tuple-independent expansion:",
          wsd.rep().same_distribution(worlds))

    # A join query: pairs (A, D) such that S.B = T.C.
    query = BaseRelation("S").join(BaseRelation("T"), "B", "C").project(["A", "D"])
    evaluate_on_wsd(query, wsd, "Answer")
    print("\nconfidences of π_{A,D}(S ⋈_{B=C} T):")
    for row, confidence in possible_with_confidence(wsd, "Answer"):
        print(f"  {row}  {confidence:.3f}")

    # The extensional baseline computes the same marginals for this safe query.
    joined = extensional.join_independent(s_relation, t_relation, "B", "C")
    print("\nextensional (Dalvi-Suciu) join probabilities:")
    for values, probability in joined:
        print(f"  {values}  {probability:.3f}")


if __name__ == "__main__":
    main()
