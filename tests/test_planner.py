"""Unit tests for the logical planner: rules, cost model, Plan, Query.run."""

import pytest

from repro.core import UWSDT, WSD
from repro.core.algebra import BaseRelation, Join, Product, Project, Rename, Select
from repro.core.planner import (
    CostEstimate,
    FIXED_SELECTIVITY_FLOOR,
    Plan,
    RelationSample,
    RewriteContext,
    Statistics,
    estimate,
    floored_predicate_selectivity,
    join_selectivity,
    output_attributes,
    plan,
    predicate_selectivity,
    rewrite,
    selection_selectivity,
)
from repro.relational import (
    And,
    Database,
    HashIndex,
    IndexPool,
    Or,
    QueryError,
    Relation,
    RelationSchema,
    TruePredicate,
    attr_eq,
    eq,
    gt,
)
from repro.worlds import OrSet, OrSetRelation

STATS = Statistics(
    row_counts={"R": 1000, "S": 100},
    attributes={"R": ("A", "B", "C"), "S": ("D", "E")},
)


def rewritten(query):
    return plan(query, STATS).optimized


class TestRules:
    def test_join_fusion(self):
        query = BaseRelation("R").product(BaseRelation("S")).select(attr_eq("B", "D"))
        result = rewritten(query)
        assert isinstance(result, Join)
        assert (result.left_attr, result.right_attr) == ("B", "D")

    def test_join_fusion_swapped_sides(self):
        query = BaseRelation("R").product(BaseRelation("S")).select(attr_eq("D", "B"))
        result = rewritten(query)
        assert isinstance(result, Join)
        assert (result.left_attr, result.right_attr) == ("B", "D")

    def test_selection_pushdown_into_product(self):
        query = BaseRelation("R").product(BaseRelation("S")).select(
            And(eq("A", 1), gt("E", 5))
        )
        result = rewritten(query)
        assert isinstance(result, Product)
        assert isinstance(result.left, Select) and result.left.predicate.attributes() == ("A",)
        assert isinstance(result.right, Select) and result.right.predicate.attributes() == ("E",)

    def test_selection_pushdown_below_union(self):
        left = BaseRelation("R")
        right = BaseRelation("R")
        query = left.union(right).select(eq("A", 1))
        result = rewritten(query)
        from repro.core.algebra import Union

        assert isinstance(result, Union)
        assert isinstance(result.left, Select) and isinstance(result.right, Select)

    def test_selection_pushdown_below_difference_left_only(self):
        query = BaseRelation("R").difference(BaseRelation("R")).select(eq("A", 1))
        result = rewritten(query)
        from repro.core.algebra import Difference

        assert isinstance(result, Difference)
        assert isinstance(result.left, Select)
        assert isinstance(result.right, BaseRelation)

    def test_selection_pushdown_through_rename_substitutes(self):
        query = BaseRelation("R").rename("A", "X").select(eq("X", 1))
        result = rewritten(query)
        assert isinstance(result, Rename)
        assert isinstance(result.child, Select)
        assert result.child.predicate.attributes() == ("A",)

    def test_identity_rename_eliminated(self):
        query = BaseRelation("R").rename("A", "A").select(eq("A", 1))
        result = rewritten(query)
        assert isinstance(result, Select) and isinstance(result.child, BaseRelation)

    def test_inverse_renames_cancel(self):
        query = BaseRelation("R").rename("A", "X").rename("X", "A")
        assert isinstance(rewritten(query), BaseRelation)

    def test_rename_chain_collapses(self):
        query = BaseRelation("R").rename("A", "X").rename("X", "Y")
        result = rewritten(query)
        assert isinstance(result, Rename)
        assert (result.old, result.new) == ("A", "Y")
        assert isinstance(result.child, BaseRelation)

    def test_projection_pushdown_through_product(self):
        query = BaseRelation("R").product(BaseRelation("S")).project(["A", "D"])
        result = rewritten(query)
        assert isinstance(result, Product)
        assert isinstance(result.left, Project) and result.left.attributes == ("A",)
        assert isinstance(result.right, Project) and result.right.attributes == ("D",)

    def test_projection_keeps_join_attributes(self):
        query = BaseRelation("R").join(BaseRelation("S"), "B", "D").project(["A", "E"])
        result = rewritten(query)
        assert isinstance(result, Project)
        join = result.child
        assert isinstance(join, Join)
        assert "B" in join.left.attributes and "D" in join.right.attributes

    def test_stacked_projections_collapse(self):
        query = BaseRelation("R").project(["A", "B"]).project(["A"])
        result = rewritten(query)
        assert isinstance(result, Project) and result.attributes == ("A",)
        assert isinstance(result.child, BaseRelation)

    def test_true_select_eliminated(self):
        query = Select(BaseRelation("R"), TruePredicate())
        assert isinstance(rewritten(query), BaseRelation)

    def test_unknown_schema_blocks_pushdown_but_not_correctness(self):
        # No attributes known for "T": side-partitioning rewrites are skipped.
        query = BaseRelation("T").product(BaseRelation("U")).select(eq("A", 1))
        result = plan(query, Statistics()).optimized
        assert isinstance(result, Select)

    def test_output_attributes_inference(self):
        query = BaseRelation("R").rename("A", "X").join(BaseRelation("S"), "X", "D")
        assert output_attributes(query, STATS) == ("X", "B", "C", "D", "E")
        assert output_attributes(BaseRelation("T"), STATS) is None


class TestCostModel:
    def test_equality_more_selective_than_range(self):
        assert predicate_selectivity(eq("A", 1)) < predicate_selectivity(gt("A", 1))

    def test_and_tightens_or_loosens(self):
        atom = eq("A", 1)
        assert predicate_selectivity(And(atom, atom)) < predicate_selectivity(atom)
        assert predicate_selectivity(Or(atom, atom)) > predicate_selectivity(atom)

    def test_join_cheaper_than_select_over_product(self):
        product_form = BaseRelation("R").product(BaseRelation("S")).select(attr_eq("B", "D"))
        join_form = BaseRelation("R").join(BaseRelation("S"), "B", "D")
        assert estimate(join_form, STATS).cost < estimate(product_form, STATS).cost

    def test_pushed_selection_cheaper(self):
        raw = BaseRelation("R").product(BaseRelation("S")).select(eq("A", 1))
        pushed = BaseRelation("R").select(eq("A", 1)).product(BaseRelation("S"))
        assert estimate(pushed, STATS).cost < estimate(raw, STATS).cost

    def test_placeholder_density_inflates_selection_output(self):
        dense = Statistics(
            row_counts={"R": 1000},
            placeholder_densities={"R": 0.5},
            attributes={"R": ("A",)},
        )
        sparse = Statistics(
            row_counts={"R": 1000},
            placeholder_densities={"R": 0.0},
            attributes={"R": ("A",)},
        )
        query = BaseRelation("R").select(eq("A", 1))
        assert estimate(query, dense).rows > estimate(query, sparse).rows

    def test_statistics_from_engines(self):
        relation = Relation(RelationSchema("R", ("A", "B")), [(1, 2), (3, 4)])
        database = Database([relation])
        stats = Statistics.from_database(database)
        assert stats.row_count("R") == 2
        assert stats.relation_attributes("R") == ("A", "B")

        orset = OrSetRelation.from_dicts(
            "R", ["A", "B"], [{"A": OrSet([1, 2]), "B": 3}, {"A": 4, "B": 5}]
        )
        uwsdt_stats = Statistics.from_uwsdt(UWSDT.from_orset_relation(orset))
        assert uwsdt_stats.row_count("R") == 2
        assert 0.0 < uwsdt_stats.placeholder_density("R") < 1.0

        wsd_stats = Statistics.from_wsd(WSD.from_orset_relation(orset))
        assert wsd_stats.row_count("R") == 2
        assert 0.0 < wsd_stats.placeholder_density("R") < 1.0


class TestSamplingGuards:
    """Degenerate samples must fall back or floor — never divide by zero or
    report selectivity 0.0 (which would zero out whole plan costs)."""

    def test_empty_sample_falls_back_to_constants(self):
        empty = RelationSample("R", ("A", "B"), [], 0)
        assert empty.selectivity(eq("A", 1)) is None
        assert empty.distinct_count("A") == 1
        assert empty.filter(eq("A", 1)) is empty
        other = RelationSample("S", ("C",), [(1,)], 1)
        assert join_selectivity(empty, "A", other, "C") is None
        assert join_selectivity(other, "C", empty, "A") is None

    def test_unknown_attribute_distinct_count(self):
        sample = RelationSample("R", ("A",), [(1,)], 1)
        assert sample.distinct_count("NOPE") == 1

    def test_all_placeholder_column_join_falls_back(self):
        from repro.relational.values import PLACEHOLDER

        left = RelationSample("R", ("A",), [(PLACEHOLDER,), (PLACEHOLDER,)], 2)
        right = RelationSample("S", ("B",), [(1,), (2,)], 2)
        assert left.distinct_count("A") == 1
        assert join_selectivity(left, "A", right, "B") is None
        assert left.equijoin(right, "A", "B") is None

    def test_zero_overlap_join_selectivity_is_floored(self):
        left = RelationSample("R", ("A",), [(1,), (2,)], 2)
        right = RelationSample("S", ("B",), [(8,), (9,)], 2)
        selectivity = join_selectivity(left, "A", right, "B")
        assert selectivity is not None and selectivity > 0

    def test_zero_match_sample_selectivity_is_floored(self):
        sample = RelationSample("R", ("A",), [(1,), (2,), (3,)], 3)
        selectivity = sample.selectivity(eq("A", 99))
        assert selectivity is not None and 0 < selectivity < 1

    def test_impossible_fixed_predicate_is_floored(self):
        from repro.relational import Not

        impossible = Not(TruePredicate())
        assert predicate_selectivity(impossible) == 0.0  # the pure function
        assert floored_predicate_selectivity(impossible) == FIXED_SELECTIVITY_FLOOR
        assert selection_selectivity(impossible, None) == FIXED_SELECTIVITY_FLOOR

    def test_impossible_selection_does_not_zero_plan_costs(self):
        from repro.relational import Not

        query = (
            BaseRelation("R")
            .select(Not(TruePredicate()))
            .product(BaseRelation("S"))
        )
        result = estimate(query, STATS)
        assert result.rows > 0
        assert result.cost > 0

    def test_empty_relation_plans_without_error(self):
        database = Database([Relation(RelationSchema("R", ("A", "B")))])
        query = BaseRelation("R").select(eq("A", 1)).project(["B"])
        built = query.plan(database)
        assert built.cost_after.cost >= 0
        assert built.statistics.row_count("R") == 0


class TestPlanObject:
    def test_explain_mentions_rules_and_costs(self):
        query = BaseRelation("R").product(BaseRelation("S")).select(attr_eq("B", "D"))
        explained = plan(query, STATS).explain()
        assert "fuse-select-into-join" in explained
        assert "cost" in explained and "chosen" in explained

    def test_plan_keeps_original_when_nothing_applies(self):
        query = BaseRelation("R").select(eq("A", 1))
        result = plan(query, STATS)
        assert not result.applications
        assert result.chosen is query
        assert "(none applied)" in result.explain()

    def test_query_plan_method_uses_engine_statistics(self):
        relation = Relation(RelationSchema("R", ("A", "B")), [(1, 2)])
        database = Database([relation])
        result = BaseRelation("R").select(eq("A", 1)).plan(database)
        assert isinstance(result, Plan)
        assert result.statistics.row_count("R") == 1


class TestQueryRun:
    @pytest.fixture
    def orset(self):
        return OrSetRelation.from_dicts(
            "R",
            ["A", "B", "C"],
            [
                {"A": 1, "B": OrSet([1, 2]), "C": 7},
                {"A": OrSet([4, 5]), "B": 3, "C": 0},
                {"A": 6, "B": 6, "C": OrSet([7, 0])},
            ],
        )

    @pytest.fixture
    def join_query(self):
        left = BaseRelation("R").rename("A", "A1").rename("B", "B1").rename("C", "C1")
        right = BaseRelation("R").rename("A", "A2").rename("B", "B2").rename("C", "C2")
        return (
            left.product(right)
            .select(attr_eq("B1", "A2"))
            .select(gt("C1", 0))
            .project(["A1", "A2"])
        )

    def test_run_on_database(self, small_relation):
        database = Database([small_relation])
        query = BaseRelation("Emp").select(eq("DEPT", "eng")).project(["NAME"])
        optimized = query.run(database, "names", optimize=True)
        raw = query.run(database, "names", optimize=False)
        assert optimized.row_set() == raw.row_set() == {("ann",), ("bob",)}

    def test_run_rejects_unknown_engine(self):
        with pytest.raises(QueryError):
            BaseRelation("R").run(object())

    def test_run_planned_matches_unplanned_on_uwsdt(self, orset, join_query):
        planned = UWSDT.from_orset_relation(orset)
        unplanned = UWSDT.from_orset_relation(orset)
        join_query.run(planned, "P", optimize=True)
        join_query.run(unplanned, "P", optimize=False)
        planned.validate()
        assert _distribution(planned.rep(), "P") == pytest.approx(
            _distribution(unplanned.rep(), "P")
        )

    def test_run_planned_matches_unplanned_on_wsd(self, orset, join_query):
        planned = WSD.from_orset_relation(orset)
        unplanned = WSD.from_orset_relation(orset)
        join_query.run(planned, "P", optimize=True)
        join_query.run(unplanned, "P", optimize=False)
        assert _distribution(planned.rep(), "P") == pytest.approx(
            _distribution(unplanned.rep(), "P")
        )

    def test_rerun_on_extended_representation(self, orset, join_query):
        """A second query on the same (in-place extended) engine must not
        collide with the first run's ``__q*`` intermediates."""
        uwsdt = UWSDT.from_orset_relation(orset)
        join_query.run(uwsdt, "first", optimize=False)
        join_query.run(uwsdt, "second", optimize=False)
        wsd = WSD.from_orset_relation(orset)
        join_query.run(wsd, "first", optimize=False)
        join_query.run(wsd, "second", optimize=False)
        fresh = UWSDT.from_orset_relation(orset)
        join_query.run(fresh, "first", optimize=False)
        assert _distribution(uwsdt.rep(), "second") == pytest.approx(
            _distribution(fresh.rep(), "first")
        )

    def test_run_accepts_prebuilt_plan(self, orset, join_query):
        uwsdt = UWSDT.from_orset_relation(orset)
        prebuilt = join_query.plan(uwsdt)
        join_query.run(uwsdt, "P", plan=prebuilt)
        reference = UWSDT.from_orset_relation(orset)
        join_query.run(reference, "P", optimize=False)
        assert _distribution(uwsdt.rep(), "P") == pytest.approx(
            _distribution(reference.rep(), "P")
        )


class TestIndexing:
    def test_index_pool_caches_until_mutation(self):
        relation = Relation(RelationSchema("R", ("A", "B")), [(1, 2), (3, 4)])
        pool = IndexPool()
        first = pool.hash_index(relation, ("A",))
        assert pool.hash_index(relation, ("A",)) is first
        relation.insert((5, 6))
        second = pool.hash_index(relation, ("A",))
        assert second is not first
        assert second.lookup(5) == [(5, 6)]

    def test_relation_version_counts_effective_mutations(self):
        relation = Relation(RelationSchema("R", ("A",)))
        start = relation.version
        relation.insert((1,))
        assert relation.version == start + 1
        relation.insert((1,))  # duplicate: no-op
        assert relation.version == start + 1
        relation.remove((1,))
        assert relation.version == start + 2

    def test_select_with_index_probe(self, small_relation):
        from repro.relational import algebra

        index = HashIndex(small_relation, ("DEPT",))
        probed = algebra.select(small_relation, eq("DEPT", "hr"), index=index)
        scanned = algebra.select(small_relation, eq("DEPT", "hr"))
        assert probed.row_set() == scanned.row_set()

    def test_uwsdt_template_index_cached(self):
        orset = OrSetRelation.from_dicts(
            "R", ["A", "B"], [{"A": 1, "B": 2}, {"A": OrSet([3, 4]), "B": 5}]
        )
        uwsdt = UWSDT.from_orset_relation(orset)
        first = uwsdt.template_index("R", "A")
        assert uwsdt.template_index("R", "A") is first
        uwsdt.add_template_tuple("R", 99, (7, 8))
        assert uwsdt.template_index("R", "A") is not first


def _distribution(worldset, relation_name):
    distribution = {}
    for world in worldset:
        key = frozenset(world.database.relation(relation_name).rows)
        probability = world.probability if world.probability is not None else 1.0
        distribution[key] = distribution.get(key, 0.0) + probability
    return {key: distribution[key] for key in sorted(distribution, key=repr)}
