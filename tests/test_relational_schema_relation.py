"""Unit tests for schemas, relations, databases and values (the substrate)."""

import pytest

from repro.relational import (
    BOTTOM,
    PLACEHOLDER,
    ArityError,
    Database,
    DatabaseSchema,
    Relation,
    RelationSchema,
    SchemaError,
    UnknownAttributeError,
    UnknownRelationError,
    is_bottom,
    is_domain_value,
    is_placeholder,
)
from repro.relational.values import contains_bottom, format_value


class TestRelationSchema:
    def test_basic_properties(self):
        schema = RelationSchema("R", ("A", "B", "C"))
        assert schema.arity == 3
        assert schema.position("B") == 1
        assert schema.has_attribute("C")
        assert not schema.has_attribute("D")
        assert list(schema) == ["A", "B", "C"]
        assert len(schema) == 3

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ("A", "A"))

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ())
        with pytest.raises(SchemaError):
            RelationSchema("", ("A",))

    def test_unknown_attribute(self):
        schema = RelationSchema("R", ("A",))
        with pytest.raises(UnknownAttributeError):
            schema.position("Z")

    def test_project(self):
        schema = RelationSchema("R", ("A", "B", "C"))
        projected = schema.project(["C", "A"])
        assert projected.attributes == ("C", "A")
        with pytest.raises(UnknownAttributeError):
            schema.project(["Z"])

    def test_rename_attribute(self):
        schema = RelationSchema("R", ("A", "B"))
        renamed = schema.rename_attribute("A", "X")
        assert renamed.attributes == ("X", "B")
        with pytest.raises(SchemaError):
            schema.rename_attribute("A", "B")

    def test_concat_requires_disjoint(self):
        left = RelationSchema("R", ("A", "B"))
        right = RelationSchema("S", ("C",))
        assert left.concat(right).attributes == ("A", "B", "C")
        with pytest.raises(SchemaError):
            left.concat(RelationSchema("S", ("B",)))

    def test_equality_and_hash(self):
        a = RelationSchema("R", ("A", "B"))
        b = RelationSchema("R", ("A", "B"))
        c = RelationSchema("R", ("B", "A"))
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestDatabaseSchema:
    def test_add_and_lookup(self):
        schema = DatabaseSchema([RelationSchema("R", ("A",))])
        schema.add(RelationSchema("S", ("B",)))
        assert schema.relation_names == ("R", "S")
        assert schema.relation("S").attributes == ("B",)
        with pytest.raises(SchemaError):
            schema.add(RelationSchema("R", ("X",)))
        with pytest.raises(UnknownRelationError):
            schema.relation("T")


class TestRelation:
    def test_insert_and_set_semantics(self):
        relation = Relation(RelationSchema("R", ("A", "B")))
        assert relation.insert((1, 2))
        assert not relation.insert((1, 2))
        assert relation.insert({"A": 3, "B": 4})
        assert len(relation) == 2
        assert (1, 2) in relation
        assert (9, 9) not in relation

    def test_arity_checked(self):
        relation = Relation(RelationSchema("R", ("A", "B")))
        with pytest.raises(ArityError):
            relation.insert((1,))
        with pytest.raises(ArityError):
            relation.insert({"A": 1})
        with pytest.raises(ArityError):
            relation.insert({"A": 1, "B": 2, "C": 3})

    def test_remove(self):
        relation = Relation(RelationSchema("R", ("A",)), [(1,), (2,)])
        assert relation.remove((1,))
        assert not relation.remove((1,))
        assert len(relation) == 1

    def test_named_access_and_columns(self, small_relation):
        row = small_relation.rows[0]
        assert small_relation.value(row, "NAME") == "ann"
        assert small_relation.column("DEPT").count("eng") == 2
        assert small_relation.distinct_values("DEPT") == {"eng", "hr", "ops"}

    def test_as_dicts_roundtrip(self, small_relation):
        dicts = small_relation.as_dicts()
        rebuilt = Relation.from_dicts("Emp", small_relation.schema.attributes, dicts)
        assert rebuilt.same_rows(small_relation)

    def test_copy_is_independent(self, small_relation):
        copy = small_relation.copy()
        copy.insert(("zed", "eng", 1))
        assert len(copy) == len(small_relation) + 1

    def test_to_text_contains_header_and_rows(self, small_relation):
        text = small_relation.to_text(max_rows=2)
        assert "NAME" in text and "ann" in text and "more rows" in text

    def test_equality(self):
        a = Relation(RelationSchema("R", ("A",)), [(1,), (2,)])
        b = Relation(RelationSchema("R", ("A",)), [(2,), (1,)])
        assert a == b
        assert a.row_set() == b.row_set()


class TestDatabase:
    def test_add_replace_drop(self, small_relation, departments):
        database = Database([small_relation])
        database.add(departments)
        assert database.relation_names == ("Emp", "Dept")
        with pytest.raises(SchemaError):
            database.add(small_relation)
        database.replace(small_relation.copy())
        database.drop("Dept")
        assert not database.has_relation("Dept")
        with pytest.raises(UnknownRelationError):
            database.relation("Dept")

    def test_canonical_form_order_insensitive(self, small_relation, departments):
        first = Database([small_relation, departments])
        second = Database([departments.copy(), small_relation.copy()])
        assert first == second
        assert hash(first) == hash(second)

    def test_from_mapping_validates_names(self, small_relation):
        with pytest.raises(SchemaError):
            Database.from_mapping({"Wrong": small_relation})
        database = Database.from_mapping({"Emp": small_relation})
        assert database.has_relation("Emp")


class TestSpecialValues:
    def test_sentinels_are_distinct_and_detected(self):
        assert is_bottom(BOTTOM) and not is_bottom(PLACEHOLDER)
        assert is_placeholder(PLACEHOLDER) and not is_placeholder(BOTTOM)
        assert not is_domain_value(BOTTOM) and not is_domain_value(PLACEHOLDER)
        assert is_domain_value(0) and is_domain_value("x") and is_domain_value(None)

    def test_contains_bottom(self):
        assert contains_bottom((1, BOTTOM, 3))
        assert not contains_bottom((1, 2, 3))

    def test_format_value(self):
        assert format_value(BOTTOM) == "⊥"
        assert format_value(PLACEHOLDER) == "?"
        assert format_value(17) == "17"

    def test_sentinels_survive_copy(self):
        import copy as copy_module

        assert copy_module.copy(BOTTOM) is BOTTOM
        assert copy_module.deepcopy(PLACEHOLDER) is PLACEHOLDER

    def test_sentinels_survive_pickle(self):
        import pickle

        assert pickle.loads(pickle.dumps(BOTTOM)) is BOTTOM
        assert pickle.loads(pickle.dumps(PLACEHOLDER)) is PLACEHOLDER
