"""Tests for the possible-worlds layer: world-sets, inlining, or-sets, tuple-independence."""

import pytest
from hypothesis import given, settings

from repro.relational import Database, Relation, RelationSchema, RepresentationError
from repro.worlds import (
    OrSet,
    OrSetRelation,
    PossibleWorld,
    TupleIndependentDatabase,
    TupleIndependentRelation,
    WorldSet,
    WorldSetRelation,
)
from repro.worlds.worldset_relation import inline, inline_inverse

from conftest import orset_relations


def single_world(rows, name="R", attrs=("A", "B")):
    return Database([Relation(RelationSchema(name, attrs), rows)])


class TestWorldSet:
    def test_duplicate_worlds_merge_and_sum(self):
        worldset = WorldSet()
        worldset.add(single_world([(1, 2)]), 0.25)
        worldset.add(single_world([(1, 2)]), 0.25)
        worldset.add(single_world([(3, 4)]), 0.5)
        assert len(worldset) == 2
        assert worldset.probability_of(single_world([(1, 2)])) == pytest.approx(0.5)
        worldset.validate_probabilities()

    def test_mixed_probabilistic_rejected(self):
        worldset = WorldSet()
        worldset.add(single_world([(1, 2)]), 0.5)
        with pytest.raises(RepresentationError):
            worldset.add(single_world([(3, 4)]), None)

    def test_filter_renormalizes(self):
        worldset = WorldSet()
        worldset.add(single_world([(1, 1)]), 0.5)
        worldset.add(single_world([(2, 2)]), 0.25)
        worldset.add(single_world([(3, 3)]), 0.25)
        kept = worldset.filter(lambda db: (1, 1) not in db.relation("R"), renormalize=True)
        assert len(kept) == 2
        assert kept.total_probability() == pytest.approx(1.0)
        assert kept.probability_of(single_world([(2, 2)])) == pytest.approx(0.5)

    def test_possible_certain_and_confidence(self):
        worldset = WorldSet()
        worldset.add(single_world([(1, 1), (2, 2)]), 0.6)
        worldset.add(single_world([(1, 1)]), 0.4)
        assert worldset.possible_tuples("R") == {(1, 1), (2, 2)}
        assert worldset.certain_tuples("R") == {(1, 1)}
        assert worldset.tuple_confidence("R", (2, 2)) == pytest.approx(0.6)
        assert worldset.tuple_confidence("R", (9, 9)) == 0.0

    def test_map_preserves_probabilities(self):
        worldset = WorldSet()
        worldset.add(single_world([(1, 1)]), 1.0)
        mapped = worldset.map(lambda db: db)
        assert mapped.same_distribution(worldset)

    def test_same_worlds_vs_same_distribution(self):
        first = WorldSet([PossibleWorld(single_world([(1, 1)]), 0.5),
                          PossibleWorld(single_world([(2, 2)]), 0.5)])
        second = WorldSet([PossibleWorld(single_world([(1, 1)]), 0.9),
                           PossibleWorld(single_world([(2, 2)]), 0.1)])
        assert first.same_worlds(second)
        assert not first.same_distribution(second)

    def test_invalid_probability_rejected(self):
        with pytest.raises(RepresentationError):
            PossibleWorld(single_world([(1, 1)]), 1.5)


class TestWorldSetRelation:
    def test_inline_roundtrip_multiple_relations(self):
        world_a = Database(
            [
                Relation(RelationSchema("R", ("A",)), [(1,), (2,)]),
                Relation(RelationSchema("S", ("B", "C")), [(5, 6)]),
            ]
        )
        world_b = Database(
            [
                Relation(RelationSchema("R", ("A",)), [(3,)]),
                Relation(RelationSchema("S", ("B", "C")), []),
            ]
        )
        worldset = WorldSet([PossibleWorld(world_a), PossibleWorld(world_b)])
        wide = WorldSetRelation.from_worldset(worldset)
        assert wide.max_cardinality == {"R": 2, "S": 1}
        assert len(wide) == 2
        assert wide.to_worldset().same_worlds(worldset)

    def test_inline_pads_with_bottom(self):
        schema = Database([Relation(RelationSchema("R", ("A", "B")), [(1, 2)])]).schema()
        wide_row = inline(
            Database([Relation(RelationSchema("R", ("A", "B")), [(1, 2)])]),
            schema,
            {"R": 3},
        )
        assert len(wide_row) == 6
        decoded = inline_inverse(
            wide_row,
            [("R", 0, "A"), ("R", 0, "B"), ("R", 1, "A"), ("R", 1, "B"), ("R", 2, "A"), ("R", 2, "B")],
            schema,
        )
        assert decoded.relation("R").row_set() == {(1, 2)}

    def test_as_relation_uses_paper_column_names(self):
        worldset = WorldSet([PossibleWorld(single_world([(1, 2)]))])
        wide = WorldSetRelation.from_worldset(worldset)
        materialized = wide.as_relation()
        assert materialized.schema.attributes == ("R.t1.A", "R.t1.B")

    def test_probabilities_preserved(self):
        worldset = WorldSet(
            [
                PossibleWorld(single_world([(1, 2)]), 0.3),
                PossibleWorld(single_world([(3, 4)]), 0.7),
            ]
        )
        wide = WorldSetRelation.from_worldset(worldset)
        assert wide.to_worldset().same_distribution(worldset)

    def test_empty_worldset_rejected(self):
        with pytest.raises(RepresentationError):
            WorldSetRelation.from_worldset(WorldSet())


class TestOrSets:
    def test_orset_validation(self):
        with pytest.raises(RepresentationError):
            OrSet([])
        with pytest.raises(RepresentationError):
            OrSet([1, 1])
        with pytest.raises(RepresentationError):
            OrSet([1, 2], [0.5])
        with pytest.raises(RepresentationError):
            OrSet([1, 2], [0.9, 0.9])
        assert len(OrSet([1, 2, 3])) == 3

    def test_world_count_and_expansion(self, census_forms):
        assert census_forms.world_count() == 32
        worlds = census_forms.to_worldset()
        assert len(worlds) == 32
        assert worlds.total_probability() == pytest.approx(1.0)

    def test_uncertain_fields_and_sizes(self, census_forms):
        assert len(census_forms.uncertain_fields()) == 4
        # 2 + 1 + 2 per first row, 2 + 1 + 4 per second row
        assert census_forms.representation_size() == 12

    def test_expansion_guard(self):
        relation = OrSetRelation(RelationSchema("R", ("A",)))
        relation.insert((OrSet(list(range(10))),))
        relation.insert((OrSet(list(range(10))),))
        with pytest.raises(RepresentationError):
            relation.to_worldset(max_worlds=50)

    def test_certain_relation(self, census_forms):
        certain = census_forms.certain_relation(default=None)
        assert len(certain) == 2
        assert certain.column("N") == ["Smith", "Brown"]

    def test_bad_arity_rejected(self):
        relation = OrSetRelation(RelationSchema("R", ("A", "B")))
        with pytest.raises(RepresentationError):
            relation.insert((1,))

    @given(orset_relations())
    @settings(max_examples=25, deadline=None)
    def test_world_count_matches_expansion(self, relation):
        worlds = relation.to_worldset(max_worlds=None)
        # Duplicate worlds may merge, so the expansion never exceeds the count.
        assert len(worlds) <= relation.world_count()
        assert len(worlds) >= 1
        if relation._is_probabilistic() or all(
            not isinstance(v, OrSet) or v.probabilities is None for row in relation.rows for v in row
        ):
            pass  # probability validation is covered elsewhere


class TestTupleIndependent:
    def make_figure6(self):
        s = TupleIndependentRelation(RelationSchema("S", ("A", "B")))
        s.insert(("m", 1), 0.8)
        s.insert(("n", 1), 0.5)
        t = TupleIndependentRelation(RelationSchema("T", ("C", "D")))
        t.insert((1, "p"), 0.6)
        return TupleIndependentDatabase([s, t])

    def test_figure6_world_probabilities(self):
        database = self.make_figure6()
        worlds = database.to_worldset()
        assert len(worlds) == 8
        assert worlds.total_probability() == pytest.approx(1.0)
        d3 = Database(
            [
                Relation(RelationSchema("S", ("A", "B")), [("n", 1)]),
                Relation(RelationSchema("T", ("C", "D")), [(1, "p")]),
            ]
        )
        assert worlds.probability_of(d3) == pytest.approx(0.06)

    def test_world_count_and_confidence(self):
        database = self.make_figure6()
        assert database.world_count() == 8
        assert database.tuple_count() == 3
        assert database.tuple_confidence("S", ("m", 1)) == pytest.approx(0.8)
        assert database.tuple_confidence("S", ("zzz", 1)) == 0.0

    def test_probability_bounds_checked(self):
        relation = TupleIndependentRelation(RelationSchema("S", ("A",)))
        with pytest.raises(RepresentationError):
            relation.insert(("x",), 1.2)

    def test_expansion_guard(self):
        relation = TupleIndependentRelation(RelationSchema("S", ("A",)))
        for index in range(25):
            relation.insert((index,), 0.5)
        database = TupleIndependentDatabase([relation])
        with pytest.raises(RepresentationError):
            database.to_worldset(max_worlds=1000)

    def test_duplicate_relation_rejected(self):
        relation = TupleIndependentRelation(RelationSchema("S", ("A",)))
        database = TupleIndependentDatabase([relation])
        with pytest.raises(RepresentationError):
            database.add(TupleIndependentRelation(RelationSchema("S", ("B",))))

    def test_from_dicts(self):
        database = TupleIndependentDatabase.from_dicts(
            "S", ("A",), [{"A": 1, "P": 0.5}, {"A": 2, "P": 1.0}]
        )
        assert database.tuple_count() == 2
        assert len(database.to_worldset()) == 2
