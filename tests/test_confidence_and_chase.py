"""Confidence computation (Section 6) and the chase (Section 8), against the naive oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import naive
from repro.core import (
    UWSDT,
    WSD,
    Comparison,
    EqualityGeneratingDependency,
    FunctionalDependency,
    certain,
    chase_uwsdt,
    chase_wsd,
    confidence,
    possible,
    possible_relation,
    possible_with_confidence,
    uwsdt_confidence,
    uwsdt_possible,
    uwsdt_possible_with_confidence,
)
from repro.core.algebra import BaseRelation, evaluate_on_wsd
from repro.relational import InconsistentWorldSetError, RepresentationError
from repro.worlds import OrSet, OrSetRelation

from _fixtures import orset_relations


@pytest.fixture
def figure4_wsd(census_forms):
    """The probabilistic WSD of Figure 4 (with the paper's exact probabilities)."""
    from repro.core import Component, FieldRef
    from repro.relational import DatabaseSchema, RelationSchema

    schema = DatabaseSchema([RelationSchema("R", ("S", "N", "M"))])
    components = [
        Component(
            (FieldRef("R", 1, "S"), FieldRef("R", 2, "S")),
            [(185, 186), (785, 185), (785, 186)],
            [0.2, 0.4, 0.4],
        ),
        Component((FieldRef("R", 1, "N"),), [("Smith",)], [1.0]),
        Component((FieldRef("R", 1, "M"),), [(1,), (2,)], [0.7, 0.3]),
        Component((FieldRef("R", 2, "N"),), [("Brown",)], [1.0]),
        Component((FieldRef("R", 2, "M"),), [(1,), (2,), (3,), (4,)], [0.25] * 4),
    ]
    return WSD(schema, {"R": [1, 2]}, components)


class TestConfidenceOnWSD:
    def test_example11_projection_confidences(self, figure4_wsd):
        """Example 11: conf of the answers to Q = π_S(R) is 0.6 / 0.6 / 0.8."""
        evaluate_on_wsd(BaseRelation("R").project(["S"]), figure4_wsd, "Q")
        ranked = dict(possible_with_confidence(figure4_wsd, "Q"))
        assert ranked[(185,)] == pytest.approx(0.6)
        assert ranked[(186,)] == pytest.approx(0.6)
        assert ranked[(785,)] == pytest.approx(0.8)

    def test_confidence_matches_naive_on_base_relation(self, figure4_wsd):
        worlds = figure4_wsd.rep()
        for row in possible(figure4_wsd, "R"):
            assert confidence(figure4_wsd, "R", row) == pytest.approx(
                naive.tuple_confidence(worlds, "R", row)
            )

    def test_possible_and_certain(self, figure4_wsd):
        worlds = figure4_wsd.rep()
        assert set(possible(figure4_wsd, "R")) == naive.possible_tuples(worlds, "R")
        assert set(certain(figure4_wsd, "R")) == naive.certain_tuples(worlds, "R")

    def test_possible_relation_materialization(self, figure4_wsd):
        relation = possible_relation(figure4_wsd, "R")
        assert relation.schema.attributes == ("S", "N", "M")
        assert len(relation) == len(possible(figure4_wsd, "R"))

    def test_confidence_requires_probabilistic_wsd(self, census_forms):
        wsd = WSD.from_orset_relation(census_forms, probabilistic=False)
        with pytest.raises(RepresentationError):
            confidence(wsd, "R", (185, "Smith", 1))

    def test_confidence_arity_checked(self, figure4_wsd):
        with pytest.raises(RepresentationError):
            confidence(figure4_wsd, "R", (185,))

    def test_confidence_of_impossible_tuple_is_zero(self, figure4_wsd):
        assert confidence(figure4_wsd, "R", (999, "Nobody", 1)) == 0.0

    def test_tuple_independent_confidences(self):
        from repro.relational import RelationSchema
        from repro.worlds import TupleIndependentDatabase
        from repro.worlds.tuple_independent import TupleIndependentRelation

        relation = TupleIndependentRelation(RelationSchema("S", ("A",)))
        relation.insert((1,), 0.8)
        relation.insert((2,), 0.5)
        wsd = WSD.from_tuple_independent(TupleIndependentDatabase([relation]))
        assert confidence(wsd, "S", (1,)) == pytest.approx(0.8)
        assert confidence(wsd, "S", (2,)) == pytest.approx(0.5)


class TestConfidenceOnUWSDT:
    def test_matches_wsd_confidence(self, census_forms):
        uwsdt = UWSDT.from_orset_relation(census_forms)
        wsd = WSD.from_orset_relation(census_forms)
        wsd_ranked = dict(possible_with_confidence(wsd, "R"))
        uwsdt_ranked = dict(uwsdt_possible_with_confidence(uwsdt, "R"))
        assert set(wsd_ranked) == set(uwsdt_ranked)
        for row, value in wsd_ranked.items():
            assert uwsdt_ranked[row] == pytest.approx(value)

    def test_certain_tuples_have_confidence_one(self, small_relation):
        uwsdt = UWSDT.from_relation(small_relation)
        ranked = uwsdt_possible_with_confidence(uwsdt, "Emp")
        assert len(ranked) == len(small_relation)
        assert all(value == pytest.approx(1.0) for _, value in ranked)

    def test_uwsdt_confidence_single_tuple(self, census_forms):
        uwsdt = UWSDT.from_orset_relation(census_forms)
        assert uwsdt_confidence(uwsdt, "R", (185, "Smith", 1)) == pytest.approx(0.2 * 0.7)
        assert uwsdt_confidence(uwsdt, "R", (999, "Smith", 1)) == 0.0

    def test_possible_after_chase(self, census_forms):
        uwsdt = UWSDT.from_orset_relation(census_forms)
        chase_uwsdt(
            uwsdt,
            [FunctionalDependency("R", ["S"], "N"), FunctionalDependency("R", ["S"], "M")],
        )
        worlds = uwsdt.rep()
        assert set(uwsdt_possible(uwsdt, "R")) == naive.possible_tuples(worlds, "R")

    @given(orset_relations(max_rows=2, max_attrs=2))
    @settings(max_examples=20, deadline=None)
    def test_confidences_match_naive(self, relation):
        uwsdt = UWSDT.from_orset_relation(relation)
        worlds = uwsdt.rep()
        for row, value in uwsdt_possible_with_confidence(uwsdt, "R"):
            assert value == pytest.approx(naive.tuple_confidence(worlds, "R", row), abs=1e-9)


class TestChaseOnWSD:
    def test_intro_key_constraint(self, census_forms):
        wsd = WSD.from_orset_relation(census_forms)
        reference = naive.clean(
            wsd.rep(),
            [FunctionalDependency("R", ["S"], "N"), FunctionalDependency("R", ["S"], "M")],
        )
        chase_wsd(
            wsd,
            [FunctionalDependency("R", ["S"], "N"), FunctionalDependency("R", ["S"], "M")],
        )
        assert len(wsd.rep()) == 24
        assert wsd.rep().same_distribution(reference)

    def test_figure22_egd_after_key(self, figure4_wsd):
        """Chasing S = 785 ⇒ M = 1 on the Figure 4 WSD yields the Figure 22 WSD."""
        egd = EqualityGeneratingDependency(
            "R", [Comparison("S", "=", 785)], Comparison("M", "=", 1)
        )
        reference = naive.clean(figure4_wsd.rep(), [egd])
        chase_wsd(figure4_wsd, [egd])
        assert figure4_wsd.rep().same_distribution(reference)
        # The probabilities of Figure 22 (merged S/M component).
        ranked = dict(possible_with_confidence(figure4_wsd, "R"))
        assert ranked[(785, "Smith", 1)] == pytest.approx(0.3684 + 0.3684, abs=1e-3)

    def test_figure23_order_independence(self):
        """Chasing d1 then d2 and d2 alone yield the same world-set (Figure 23)."""
        relation = OrSetRelation.from_dicts(
            "R",
            ["A", "B", "C"],
            [
                {"A": 1, "B": OrSet([1, 2]), "C": 5},
                {"A": 2, "B": OrSet([2, 3]), "C": OrSet([5, 6])},
            ],
        )
        d1 = FunctionalDependency("R", ["B"], "C")
        d2 = EqualityGeneratingDependency("R", [Comparison("A", "=", 1)], Comparison("B", "!=", 2))

        first = WSD.from_orset_relation(relation)
        chase_wsd(first, [d1, d2])
        second = WSD.from_orset_relation(relation)
        chase_wsd(second, [d2, d1])
        assert first.rep().same_worlds(second.rep())
        # d2 first avoids merging: the decomposition stays finer.
        assert second.component_count() >= first.component_count()
        reference = naive.clean(WSD.from_orset_relation(relation).rep(), [d1, d2])
        assert first.rep().same_distribution(reference)
        assert second.rep().same_distribution(reference)

    def test_inconsistent_worldset_raises(self):
        relation = OrSetRelation.from_dicts("R", ["A", "B"], [{"A": 1, "B": OrSet([2, 3])}])
        egd = EqualityGeneratingDependency(
            "R", [Comparison("A", "=", 1)], Comparison("B", "=", 9)
        )
        wsd = WSD.from_orset_relation(relation)
        with pytest.raises(InconsistentWorldSetError):
            chase_wsd(wsd, [egd])

    def test_fd_requires_determinant(self):
        with pytest.raises(RepresentationError):
            FunctionalDependency("R", [], "A")

    @given(orset_relations(max_rows=2, max_attrs=2), st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_random_egd_matches_naive(self, relation, constant):
        first, last = relation.schema.attributes[0], relation.schema.attributes[-1]
        egd = EqualityGeneratingDependency(
            "R", [Comparison(first, "=", constant)], Comparison(last, "!=", constant)
        )
        wsd = WSD.from_orset_relation(relation)
        try:
            reference = naive.clean(wsd.rep(), [egd])
        except InconsistentWorldSetError:
            with pytest.raises(InconsistentWorldSetError):
                chase_wsd(wsd, [egd])
            return
        chase_wsd(wsd, [egd])
        assert wsd.rep().same_distribution(reference)


class TestChaseOnUWSDT:
    def test_matches_wsd_chase(self, census_forms):
        dependencies = [
            FunctionalDependency("R", ["S"], "N"),
            FunctionalDependency("R", ["S"], "M"),
        ]
        wsd = WSD.from_orset_relation(census_forms)
        chase_wsd(wsd, dependencies)
        uwsdt = UWSDT.from_orset_relation(census_forms)
        chase_uwsdt(uwsdt, dependencies)
        uwsdt.validate()
        assert uwsdt.rep().same_distribution(wsd.rep())

    def test_certain_violation_raises(self):
        relation = OrSetRelation.from_dicts("R", ["A", "B"], [{"A": 1, "B": 2}])
        egd = EqualityGeneratingDependency(
            "R", [Comparison("A", "=", 1)], Comparison("B", "=", 9)
        )
        uwsdt = UWSDT.from_orset_relation(relation)
        with pytest.raises(InconsistentWorldSetError):
            chase_uwsdt(uwsdt, [egd])

    def test_certain_fd_violation_raises(self):
        relation = OrSetRelation.from_dicts(
            "R", ["A", "B"], [{"A": 1, "B": 2}, {"A": 1, "B": 3}]
        )
        uwsdt = UWSDT.from_orset_relation(relation)
        with pytest.raises(InconsistentWorldSetError):
            chase_uwsdt(uwsdt, [FunctionalDependency("R", ["A"], "B")])

    def test_refinement_skips_unrelated_tuples(self, census_forms):
        """An EGD whose premise is certainly false never composes components."""
        uwsdt = UWSDT.from_orset_relation(census_forms)
        before = uwsdt.component_count()
        egd = EqualityGeneratingDependency(
            "R", [Comparison("N", "=", "Nobody")], Comparison("M", "=", 1)
        )
        chase_uwsdt(uwsdt, [egd])
        assert uwsdt.component_count() == before
        assert uwsdt.multi_placeholder_component_count() == 0

    @given(orset_relations(max_rows=3, max_attrs=2), st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_random_egd_matches_naive(self, relation, constant):
        first, last = relation.schema.attributes[0], relation.schema.attributes[-1]
        egd = EqualityGeneratingDependency(
            "R", [Comparison(first, ">", constant)], Comparison(last, "<=", constant)
        )
        uwsdt = UWSDT.from_orset_relation(relation)
        try:
            reference = naive.clean(uwsdt.rep(), [egd])
        except InconsistentWorldSetError:
            with pytest.raises(InconsistentWorldSetError):
                chase_uwsdt(uwsdt, [egd])
            return
        chase_uwsdt(uwsdt, [egd])
        assert uwsdt.rep().same_distribution(reference)

    @given(orset_relations(max_rows=3, max_attrs=2))
    @settings(max_examples=15, deadline=None)
    def test_random_fd_matches_naive(self, relation):
        first, last = relation.schema.attributes[0], relation.schema.attributes[-1]
        dependency = FunctionalDependency("R", [first], last)
        uwsdt = UWSDT.from_orset_relation(relation)
        try:
            reference = naive.clean(uwsdt.rep(), [dependency])
        except InconsistentWorldSetError:
            with pytest.raises(InconsistentWorldSetError):
                chase_uwsdt(uwsdt, [dependency])
            return
        chase_uwsdt(uwsdt, [dependency])
        assert uwsdt.rep().same_distribution(reference)
