"""Shared fixtures for the test suite.

Hypothesis strategies live in :mod:`_fixtures` (an importable module, not a
conftest) so that test modules can import them by name without colliding
with ``benchmarks/conftest.py``.
"""

from __future__ import annotations

import os

# The whole tier-1 suite runs with plan verification on: every rewrite-rule
# output is checked schema-preserving and every lowered physical plan is
# checked well-formed (see repro.analysis.invariants).  An explicit setting
# from the environment wins.
os.environ.setdefault("REPRO_VERIFY_PLANS", "1")

import pytest

from repro.relational import Relation, RelationSchema
from repro.worlds import OrSet, OrSetRelation

from _fixtures import orset_relations, plain_relations, values_strategy  # noqa: F401


# --------------------------------------------------------------------------- #
# Paper running examples
# --------------------------------------------------------------------------- #


@pytest.fixture
def census_forms() -> OrSetRelation:
    """The two ambiguous census forms of Figure 1 (32 possible worlds)."""
    return OrSetRelation.from_dicts(
        "R",
        ["S", "N", "M"],
        [
            {"S": OrSet([185, 785], [0.2, 0.8]), "N": "Smith", "M": OrSet([1, 2], [0.7, 0.3])},
            {"S": OrSet([185, 186], [0.5, 0.5]), "N": "Brown", "M": OrSet([1, 2, 3, 4])},
        ],
    )


@pytest.fixture
def figure10_orset() -> OrSetRelation:
    """The or-set relation whose expansion is the eight-world set of Figure 10 (a).

    The 7-WSD of Figure 10 (b) has independent components for t1.A
    ({1, 2}), t2.A ({4, 5}) and a joint component correlating t1.B, t1.C
    and t2.B.  The joint part cannot be written as an or-set relation, so
    this fixture provides only the independent skeleton used to build it;
    tests construct the correlated component explicitly.
    """
    return OrSetRelation.from_dicts(
        "R",
        ["A", "B", "C"],
        [
            {"A": OrSet([1, 2]), "B": 1, "C": 0},
            {"A": OrSet([4, 5]), "B": 3, "C": 0},
            {"A": 6, "B": 6, "C": 7},
        ],
    )


@pytest.fixture
def small_relation() -> Relation:
    """A small plain relation used by relational-algebra tests."""
    return Relation(
        RelationSchema("Emp", ("NAME", "DEPT", "SALARY")),
        [
            ("ann", "eng", 100),
            ("bob", "eng", 90),
            ("cat", "hr", 80),
            ("dan", "hr", 95),
            ("eve", "ops", 70),
        ],
    )


@pytest.fixture
def departments() -> Relation:
    return Relation(
        RelationSchema("Dept", ("DNAME", "FLOOR")),
        [("eng", 3), ("hr", 1), ("ops", 2)],
    )
