"""The possible-worlds oracle: four evaluation strategies must agree.

For random small or-set inputs and random query trees, the following must
produce the same distribution over result relations:

1. **planned UWSDT** evaluation (``Query.run(..., optimize=True)`` — rewrite
   rules, join-order search, index fast paths),
2. **unplanned UWSDT** evaluation (the AST executed verbatim),
3. **WSD** evaluation (the Figure 9 operators, planned),
4. **brute force**: enumerate ``rep(W)`` world by world, evaluate the query
   classically in every world (Theorem 1's right-hand side).

Three oracle depths are exercised:

* *deep trees* — depth-3/4 query trees over three 3-attribute relations,
  covering multi-way joins (and therefore the join-order enumerator);
* *correlated components* — the inputs are first chased with a random
  functional or equality-generating dependency, so the representation
  contains multi-template components, not just tuple-independent or-sets;
* *confidence* — per-tuple confidences computed natively on the result
  representation must equal the exact tuple frequency over the enumerated
  worlds;
* *union/difference-heavy shapes* — set-algebra trees (∪/− over selection
  chains, optionally joined across relations), planned twice against the
  same engine so the second plan runs entirely on the statistics catalog's
  cached samples — proving cached statistics never change results;
* *greedy fallback fuzz* — >8-relation product chains, where the enumerator
  abandons the subset DP for the greedy cheapest-pair heuristic, checked
  end to end against brute force (again with a warm catalog).

This is the strongest correctness statement the planner can make: every
rewrite rule, every cost-model decision, every join order and every index
fast path is squeezed through the paper's semantics on thousands of random
plans.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.baselines import naive
from repro.core import UWSDT, WSD
from repro.core.algebra import BaseRelation
from repro.core.chase import (
    Comparison,
    EqualityGeneratingDependency,
    FunctionalDependency,
    chase_uwsdt,
    chase_wsd,
)
from repro.core.confidence import confidence, uwsdt_possible_with_confidence
from repro.core.planner import GREEDY_THRESHOLD, sampling_call_count
from repro.relational import And, AttrAttr, AttrConst, InconsistentWorldSetError, Or
from repro.worlds import OrSet, OrSetRelation

from _fixtures import (
    assert_same_result_distribution,
    budgeted_orset_relations,
    orset_relations,
)

#: The fixed schema of the single-relation (depth-2) oracle.
BASE_ATTRS = ("A0", "A1")

#: The three disjoint-attribute relations of the deep oracle.
ORACLE_SCHEMAS = (
    ("R", ("A0", "A1", "A2")),
    ("S", ("B0", "B1", "B2")),
    ("T", ("C0", "C1", "C2")),
)
ORACLE_ATTRS = {name: attrs for name, attrs in ORACLE_SCHEMAS}

#: Domain of constants in generated predicates (matches the row strategies).
constants = st.integers(min_value=0, max_value=4)


@st.composite
def predicates(draw, attrs):
    """Random predicates over the given attributes."""
    kind = draw(st.sampled_from(["const", "const", "attr", "and", "or"]))
    attr = draw(st.sampled_from(sorted(attrs)))
    op = draw(st.sampled_from(["=", "!=", "<", ">="]))
    if kind == "attr" and len(attrs) >= 2:
        other = draw(st.sampled_from(sorted(set(attrs) - {attr})))
        return AttrAttr(attr, draw(st.sampled_from(["=", "<"])), other)
    if kind in ("and", "or"):
        left = AttrConst(attr, op, draw(constants))
        other_attr = draw(st.sampled_from(sorted(attrs)))
        right = AttrConst(other_attr, draw(st.sampled_from(["=", ">"])), draw(constants))
        return And(left, right) if kind == "and" else Or(left, right)
    return AttrConst(attr, op, draw(constants))


def _schema_preserving(draw, name, attrs):
    """A selection chain over one base relation (keeps the base schema)."""
    query = BaseRelation(name)
    for _ in range(draw(st.integers(min_value=0, max_value=1))):
        query = query.select(draw(predicates(attrs)))
    return query


@st.composite
def query_trees(draw, depth=2):
    """Random depth-2 query trees over the single relation ``R`` (PR 1 oracle)."""
    query, _ = _tree(draw, depth, counter=[0], single_relation=True)
    return query


@st.composite
def deep_query_trees(draw, min_depth=3, max_depth=4):
    """Random depth-3/4 query trees over the three deep-oracle relations."""
    depth = draw(st.integers(min_value=min_depth, max_value=max_depth))
    query, _ = _tree(draw, depth, counter=[0], single_relation=False)
    return query


def _base(draw, single_relation):
    if single_relation:
        return BaseRelation("R"), BASE_ATTRS
    name = draw(st.sampled_from(sorted(ORACLE_ATTRS)))
    return BaseRelation(name), ORACLE_ATTRS[name]


def _tree(draw, depth, counter, single_relation):
    if depth == 0:
        return _base(draw, single_relation)
    op = draw(
        st.sampled_from(
            [
                "base",
                "select",
                "select",
                "project",
                "rename",
                "union",
                "difference",
                "intersection",
                "product",
                "join",
            ]
        )
    )
    if op == "base":
        return _base(draw, single_relation)
    if op == "select":
        child, attrs = _tree(draw, depth - 1, counter, single_relation)
        return child.select(draw(predicates(attrs))), attrs
    if op == "project":
        child, attrs = _tree(draw, depth - 1, counter, single_relation)
        keep = tuple(a for a in attrs if draw(st.booleans()))
        if not keep:
            keep = (attrs[0],)
        return child.project(keep), keep
    if op == "rename":
        child, attrs = _tree(draw, depth - 1, counter, single_relation)
        old = draw(st.sampled_from(sorted(attrs)))
        new = f"Z{draw(st.integers(min_value=0, max_value=2))}"
        if new in attrs:
            return child, attrs
        return child.rename(old, new), tuple(new if a == old else a for a in attrs)
    if op in ("union", "difference", "intersection"):
        if single_relation:
            name, attrs = "R", BASE_ATTRS
        else:
            name = draw(st.sampled_from(sorted(ORACLE_ATTRS)))
            attrs = ORACLE_ATTRS[name]
        left = _schema_preserving(draw, name, attrs)
        right = _schema_preserving(draw, name, attrs)
        if op == "union":
            return left.union(right), attrs
        if op == "intersection":
            return left.intersection(right), attrs
        return left.difference(right), attrs
    # product / join: the right side is a fully renamed copy of a base
    # relation so the attribute sets are disjoint (the counter keeps nested
    # products apart).
    left, left_attrs = _tree(draw, depth - 1, counter, single_relation)
    right, base_attrs = _base(draw, single_relation)
    right_attrs = []
    for attribute in base_attrs:
        fresh = f"W{counter[0]}"
        counter[0] += 1
        right = right.rename(attribute, fresh)
        right_attrs.append(fresh)
    if op == "product":
        return left.product(right), tuple(left_attrs) + tuple(right_attrs)
    left_attr = draw(st.sampled_from(sorted(left_attrs)))
    right_attr = draw(st.sampled_from(sorted(right_attrs)))
    return left.join(right, left_attr, right_attr), tuple(left_attrs) + tuple(right_attrs)


@st.composite
def chase_dependencies(draw):
    """A random FD or single-tuple EGD (1-2 premises) over the deep-oracle relation ``R``."""
    attrs = ORACLE_ATTRS["R"]
    if draw(st.booleans()):
        determinants = draw(
            st.lists(st.sampled_from(attrs), min_size=1, max_size=2, unique=True)
        )
        remaining = [a for a in attrs if a not in determinants]
        dependent = draw(st.sampled_from(remaining or list(attrs)))
        return FunctionalDependency("R", determinants, dependent)
    premise_attrs = draw(
        st.lists(st.sampled_from(attrs), min_size=1, max_size=2, unique=True)
    )
    premises = [
        Comparison(attribute, draw(st.sampled_from(["=", "<", ">="])), draw(constants))
        for attribute in premise_attrs
    ]
    conclusion_attr = draw(st.sampled_from(attrs))
    conclusion = Comparison(
        conclusion_attr, draw(st.sampled_from(["=", "!=", ">="])), draw(constants)
    )
    return EqualityGeneratingDependency("R", premises, conclusion)


@st.composite
def chase_dependency_lists(draw, max_size=3):
    """1-3 dependencies chased in sequence, so they can interact on shared components."""
    return draw(st.lists(chase_dependencies(), min_size=1, max_size=max_size))


# --------------------------------------------------------------------------- #
# Oracle drivers
# --------------------------------------------------------------------------- #


def assert_engines_match_reference(reference, uwsdt, wsd, query):
    """Planned UWSDT, unplanned UWSDT and (planned) WSD must match ``reference``
    — and both UWSDT paths again under the columnar vectorized backend."""
    planned = uwsdt.copy()
    query.run(planned, "P", optimize=True)
    planned.validate()
    assert_same_result_distribution(planned.rep(), reference, "P")

    unplanned = uwsdt.copy()
    query.run(unplanned, "P", optimize=False)
    unplanned.validate()
    assert_same_result_distribution(unplanned.rep(), reference, "P")

    wsd_copy = wsd.copy()
    query.run(wsd_copy, "P", optimize=True)
    assert_same_result_distribution(wsd_copy.rep(), reference, "P")

    columnar_planned = uwsdt.copy()
    query.run(columnar_planned, "P", optimize=True, backend="columnar")
    columnar_planned.validate()
    assert_same_result_distribution(columnar_planned.rep(), reference, "P")

    columnar_unplanned = uwsdt.copy()
    query.run(columnar_unplanned, "P", optimize=False, backend="columnar")
    columnar_unplanned.validate()
    assert_same_result_distribution(columnar_unplanned.rep(), reference, "P")


def check_against_oracle(orset_relation, query):
    """All four strategies must yield the same result-world distribution."""
    base_wsd = WSD.from_orset_relation(orset_relation)
    reference = naive.evaluate_query(base_wsd.rep(), query, "P")
    assert_engines_match_reference(
        reference,
        UWSDT.from_orset_relation(orset_relation),
        WSD.from_orset_relation(orset_relation),
        query,
    )


class TestPossibleWorldsOracle:
    @given(
        orset_relations(max_rows=2, max_attrs=2, max_alternatives=2),
        query_trees(depth=2),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_plans_match_brute_force(self, relation, query):
        if relation.schema.attributes != BASE_ATTRS:
            relation = _pad_to_base_schema(relation)
        check_against_oracle(relation, query)

    @given(orset_relations(max_rows=2, max_attrs=2, max_alternatives=2))
    @settings(max_examples=20, deadline=None)
    def test_fused_join_query_matches_brute_force(self, relation):
        """The σ(A=B)∘× → join fusion path, exercised explicitly."""
        if relation.schema.attributes != BASE_ATTRS:
            relation = _pad_to_base_schema(relation)
        right = BaseRelation("R").rename("A0", "W0").rename("A1", "W1")
        query = (
            BaseRelation("R")
            .product(right)
            .select(AttrAttr("A1", "=", "W0"))
            .project(["A0", "W1"])
        )
        check_against_oracle(relation, query)


class TestDeepPossibleWorldsOracle:
    """Depth-3/4 trees over three 3-attribute relations (≥3-way joins)."""

    @given(
        budgeted_orset_relations(ORACLE_SCHEMAS, max_rows=2, uncertain_budget=4),
        deep_query_trees(min_depth=3, max_depth=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_deep_random_plans_match_brute_force(self, relations, query):
        base_wsd = WSD.from_orset_relations(relations)
        reference = naive.evaluate_query(base_wsd.rep(), query, "P")
        assert_engines_match_reference(
            reference,
            UWSDT.from_orset_relations(relations),
            WSD.from_orset_relations(relations),
            query,
        )

    @given(budgeted_orset_relations(ORACLE_SCHEMAS, max_rows=2, uncertain_budget=3))
    @settings(max_examples=25, deadline=None)
    def test_three_way_product_chain_matches_brute_force(self, relations):
        """The join-order enumerator's home turf: σ over a ×-chain of R, S, T."""
        query = (
            BaseRelation("R")
            .product(BaseRelation("S"))
            .product(BaseRelation("T"))
            .select(AttrAttr("A0", "=", "B0"))
            .select(AttrAttr("B1", "=", "C1"))
        )
        base_wsd = WSD.from_orset_relations(relations)
        reference = naive.evaluate_query(base_wsd.rep(), query, "P")
        assert_engines_match_reference(
            reference,
            UWSDT.from_orset_relations(relations),
            WSD.from_orset_relations(relations),
            query,
        )


class TestCorrelatedComponentOracle:
    """Chased (correlated, multi-template-component) inputs through the oracle."""

    @given(
        budgeted_orset_relations(ORACLE_SCHEMAS, max_rows=2, uncertain_budget=4),
        chase_dependency_lists(),
        deep_query_trees(min_depth=2, max_depth=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_chased_instances_match_brute_force(self, relations, dependencies, query):
        base_wsd = WSD.from_orset_relations(relations)
        try:
            cleaned = naive.clean(base_wsd.rep(), dependencies)
        except InconsistentWorldSetError:
            assume(False)
        reference = naive.evaluate_query(cleaned, query, "P")
        chased_uwsdt = chase_uwsdt(UWSDT.from_orset_relations(relations), dependencies)
        chased_uwsdt.validate()
        chased_wsd = chase_wsd(WSD.from_orset_relations(relations), dependencies)
        assert_engines_match_reference(reference, chased_uwsdt, chased_wsd, query)

    def test_interacting_egds_keep_independent_component_unmerged(self):
        """Regression: two interacting EGDs used to produce a wrong merged component.

        The first two EGDs force ``A0 != A1``, leaving their merged component
        with the local worlds ``{(0, 1), (1, 0)}``.  The third EGD's premises
        ``A0 = 0 ∧ A1 = 0`` are then *jointly* unsatisfiable, but the old
        per-attribute refinement judged each premise in isolation, saw both as
        still possible, and composed ``A2``'s component in as well — a
        spuriously correlated three-field component.  ``A2`` must stay in its
        own singleton component and the distribution must match brute force.
        """
        relation = OrSetRelation.from_dicts(
            "R",
            ["A0", "A1", "A2"],
            [{"A0": OrSet([0, 1]), "A1": OrSet([0, 1]), "A2": OrSet([0, 1])}],
        )
        dependencies = [
            EqualityGeneratingDependency(
                "R", [Comparison("A0", "=", 0)], Comparison("A1", "!=", 0)
            ),
            EqualityGeneratingDependency(
                "R", [Comparison("A0", "=", 1)], Comparison("A1", "!=", 1)
            ),
            EqualityGeneratingDependency(
                "R",
                [Comparison("A0", "=", 0), Comparison("A1", "=", 0)],
                Comparison("A2", "=", 1),
            ),
        ]

        def attribute_sets(components):
            return sorted(
                tuple(sorted(field.attribute for field in component.fields))
                for component in components
            )

        chased = chase_uwsdt(UWSDT.from_orset_relation(relation), dependencies)
        chased.validate()
        assert attribute_sets(chased.components.values()) == [("A0", "A1"), ("A2",)]
        pair = next(
            component
            for component in chased.components.values()
            if len(component.fields) == 2
        )
        assert sorted(
            tuple(row[pair.position(field)] for field in sorted(pair.fields, key=lambda f: f.attribute))
            for row in pair.rows
        ) == [(0, 1), (1, 0)]

        chased_wsd = chase_wsd(WSD.from_orset_relation(relation), dependencies)
        assert ("A2",) in attribute_sets(chased_wsd.components)

        cleaned = naive.clean(WSD.from_orset_relation(relation).rep(), dependencies)
        assert_same_result_distribution(chased.rep(), cleaned, "R")
        assert_same_result_distribution(chased_wsd.rep(), cleaned, "R")

    def test_multi_template_component_join_matches_brute_force(self):
        """Deterministic: the chase *must* produce a cross-tuple component here,
        and a join over the chased relation must still match brute force."""
        relation = OrSetRelation.from_dicts(
            "R",
            ["A0", "A1", "A2"],
            [
                {"A0": 1, "A1": OrSet([2, 3]), "A2": 0},
                {"A0": 1, "A1": OrSet([2, 4]), "A2": 1},
            ],
        )
        others = [
            OrSetRelation.from_dicts("S", ["B0", "B1", "B2"], [{"B0": 1, "B1": 2, "B2": 3}]),
            OrSetRelation.from_dicts("T", ["C0", "C1", "C2"], [{"C0": 0, "C1": 2, "C2": 4}]),
        ]
        dependency = FunctionalDependency("R", ["A0"], "A1")
        chased_uwsdt = chase_uwsdt(
            UWSDT.from_orset_relations([relation] + others), [dependency]
        )
        chased_uwsdt.validate()
        assert any(
            len({f.tuple_id for f in component.fields}) > 1
            for component in chased_uwsdt.components.values()
        ), "expected the chase to correlate the two R tuples"
        chased_wsd = chase_wsd(WSD.from_orset_relations([relation] + others), [dependency])

        query = (
            BaseRelation("R")
            .join(BaseRelation("S"), "A1", "B1")
            .join(BaseRelation("T"), "B1", "C1")
        )
        base_wsd = WSD.from_orset_relations([relation] + others)
        cleaned = naive.clean(base_wsd.rep(), [dependency])
        reference = naive.evaluate_query(cleaned, query, "P")
        assert_engines_match_reference(reference, chased_uwsdt, chased_wsd, query)


@st.composite
def set_heavy_trees(draw, max_set_depth=2):
    """Union/difference-heavy query shapes.

    A set-algebra tree (∪/− over selection chains, all over one relation so
    the operands stay union-compatible), optionally topped by a selection
    and optionally combined with a second relation's set tree through a
    join or product — the ROADMAP's "difference/union-heavy shapes".
    """

    def set_tree(name, attrs, depth):
        if depth == 0:
            return _schema_preserving(draw, name, attrs)
        left = set_tree(name, attrs, depth - 1)
        right = set_tree(name, attrs, depth - 1)
        op = draw(st.sampled_from(["union", "difference", "intersection", "union"]))
        if op == "union":
            return left.union(right)
        if op == "intersection":
            return left.intersection(right)
        return left.difference(right)

    name = draw(st.sampled_from(sorted(ORACLE_ATTRS)))
    attrs = ORACLE_ATTRS[name]
    depth = draw(st.integers(min_value=1, max_value=max_set_depth))
    query = set_tree(name, attrs, depth)
    if draw(st.booleans()):
        query = query.select(draw(predicates(attrs)))
    if draw(st.booleans()):
        other_name = draw(st.sampled_from(sorted(set(ORACLE_ATTRS) - {name})))
        other_attrs = ORACLE_ATTRS[other_name]
        other = set_tree(other_name, other_attrs, draw(st.integers(min_value=0, max_value=1)))
        if draw(st.booleans()):
            query = query.join(
                other,
                draw(st.sampled_from(sorted(attrs))),
                draw(st.sampled_from(sorted(other_attrs))),
            )
        else:
            query = query.product(other)
    return query


def assert_warm_catalog_plans_match_reference(reference, uwsdt, wsd, query):
    """Plan twice against the same engine — the second plan must be served
    entirely by the statistics catalog (zero sampling) and choose the same
    tree — then execute it and compare against brute force."""
    planned = uwsdt.copy()
    first = query.plan(planned)
    calls_before = sampling_call_count()
    second = query.plan(planned)
    assert sampling_call_count() == calls_before, "warm replanning re-sampled"
    assert repr(second.chosen) == repr(first.chosen)
    query.run(planned, "P", plan=second)
    planned.validate()
    assert_same_result_distribution(planned.rep(), reference, "P")

    wsd_copy = wsd.copy()
    query.plan(wsd_copy)
    calls_before = sampling_call_count()
    rebuilt = query.plan(wsd_copy)
    assert sampling_call_count() == calls_before
    query.run(wsd_copy, "P", plan=rebuilt)
    assert_same_result_distribution(wsd_copy.rep(), reference, "P")


class TestUnionDifferenceOracle:
    """ROADMAP's difference/union-heavy shapes, with the catalog enabled."""

    @given(
        budgeted_orset_relations(ORACLE_SCHEMAS, max_rows=2, uncertain_budget=4),
        set_heavy_trees(),
    )
    @settings(max_examples=50, deadline=None)
    def test_set_heavy_shapes_match_brute_force(self, relations, query):
        base_wsd = WSD.from_orset_relations(relations)
        reference = naive.evaluate_query(base_wsd.rep(), query, "P")
        assert_warm_catalog_plans_match_reference(
            reference,
            UWSDT.from_orset_relations(relations),
            WSD.from_orset_relations(relations),
            query,
        )

    def test_difference_of_unions_deterministic(self):
        """(σR ∪ R) − σR over an uncertain relation, all three engines."""
        relation = OrSetRelation.from_dicts(
            "R",
            ["A0", "A1", "A2"],
            [
                {"A0": 1, "A1": OrSet([2, 3]), "A2": 0},
                {"A0": 0, "A1": 4, "A2": OrSet([0, 1])},
            ],
        )
        others = [
            OrSetRelation.from_dicts("S", ["B0", "B1", "B2"], [{"B0": 1, "B1": 2, "B2": 3}]),
            OrSetRelation.from_dicts("T", ["C0", "C1", "C2"], [{"C0": 0, "C1": 2, "C2": 4}]),
        ]
        query = (
            BaseRelation("R")
            .select(AttrConst("A0", "=", 1))
            .union(BaseRelation("R"))
            .difference(BaseRelation("R").select(AttrConst("A1", ">=", 3)))
        )
        check = [relation] + others
        base_wsd = WSD.from_orset_relations(check)
        reference = naive.evaluate_query(base_wsd.rep(), query, "P")
        assert_warm_catalog_plans_match_reference(
            reference,
            UWSDT.from_orset_relations(check),
            WSD.from_orset_relations(check),
            query,
        )


#: Schemas for the greedy-fallback fuzz: one more relation than the DP limit.
GREEDY_SCHEMAS = tuple(
    (f"G{i}", (f"G{i}a", f"G{i}b")) for i in range(GREEDY_THRESHOLD + 1)
)


@st.composite
def greedy_chain_cases(draw):
    """A (GREEDY_THRESHOLD+1)-way product chain with consecutive equality
    predicates — the join-order enumerator must take the greedy fallback."""
    relations = draw(
        budgeted_orset_relations(GREEDY_SCHEMAS, max_rows=2, uncertain_budget=2)
    )
    query = BaseRelation(GREEDY_SCHEMAS[0][0])
    for name, _ in GREEDY_SCHEMAS[1:]:
        query = query.product(BaseRelation(name))
    predicates_ = [
        AttrAttr(
            f"G{i - 1}{draw(st.sampled_from('ab'))}",
            "=",
            f"G{i}{draw(st.sampled_from('ab'))}",
        )
        for i in range(1, len(GREEDY_SCHEMAS))
    ]
    return relations, query.select(And(*predicates_))


class TestGreedyFallbackFuzz:
    """End-to-end fuzz of the >8-relation greedy join fallback (catalog on)."""

    @given(greedy_chain_cases())
    @settings(max_examples=10, deadline=None)
    def test_greedy_planned_matches_brute_force(self, case):
        relations, query = case
        assert len(query.base_relations()) > GREEDY_THRESHOLD
        base_wsd = WSD.from_orset_relations(relations)
        reference = naive.evaluate_query(base_wsd.rep(), query, "P")

        uwsdt = UWSDT.from_orset_relations(relations)
        first = query.plan(uwsdt)
        calls_before = sampling_call_count()
        second = query.plan(uwsdt)
        assert sampling_call_count() == calls_before
        assert repr(second.chosen) == repr(first.chosen)
        query.run(uwsdt, "P", plan=second)
        uwsdt.validate()
        assert_same_result_distribution(uwsdt.rep(), reference, "P")

    @given(greedy_chain_cases())
    @settings(max_examples=10, deadline=None)
    def test_greedy_planned_matches_unplanned_on_database(self, case):
        """The certain worlds of the same inputs through the classical engine."""
        from repro.relational import Database, Relation
        from repro.worlds.orset import is_or_set

        relations, query = case
        certain = Database(
            Relation(
                orset.schema,
                [row for row in orset.rows if not any(is_or_set(v) for v in row)],
            )
            for orset in relations
        )
        planned = query.run(certain, "planned", optimize=True)
        written = query.run(certain, "written", optimize=False)
        assert planned.schema.attributes == written.schema.attributes
        assert planned.row_set() == written.row_set()


class TestConfidenceOracle:
    """Per-tuple confidences must equal exact frequencies over the worlds."""

    @given(
        budgeted_orset_relations(ORACLE_SCHEMAS, max_rows=2, uncertain_budget=3),
        deep_query_trees(min_depth=2, max_depth=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_confidence_matches_world_frequency(self, relations, query):
        base_wsd = WSD.from_orset_relations(relations)
        reference = naive.evaluate_query(base_wsd.rep(), query, "P")
        expected_possible = naive.possible_tuples(reference, "P")

        uwsdt = UWSDT.from_orset_relations(relations)
        query.run(uwsdt, "P", optimize=True)
        ranked = uwsdt_possible_with_confidence(uwsdt, "P")
        assert {row for row, _ in ranked} == expected_possible
        for row, conf in ranked:
            assert conf == pytest.approx(
                reference.tuple_confidence("P", row), abs=1e-6
            )

        wsd = WSD.from_orset_relations(relations)
        query.run(wsd, "P", optimize=True)
        for row in expected_possible:
            assert confidence(wsd, "P", row) == pytest.approx(
                reference.tuple_confidence("P", row), abs=1e-6
            )


def _pad_to_base_schema(relation):
    """Extend a 1-attribute generated relation to the fixed two-attribute schema."""
    padded = OrSetRelation.from_dicts("R", list(BASE_ATTRS), [])
    for row in relation.rows:
        values = list(row) + [0] * (len(BASE_ATTRS) - len(row))
        padded.insert(tuple(values))
    return padded
