"""The possible-worlds oracle: four evaluation strategies must agree.

For random small or-set relations and random query trees, the following
must produce the same distribution over result relations:

1. **planned UWSDT** evaluation (``Query.run(..., optimize=True)``),
2. **unplanned UWSDT** evaluation (the AST executed verbatim),
3. **WSD** evaluation (the Figure 9 operators),
4. **brute force**: enumerate ``rep(W)`` world by world, evaluate the query
   classically in every world (Theorem 1's right-hand side).

This is the strongest correctness statement the planner can make: every
rewrite rule, every cost-model decision and every index fast path is
squeezed through the paper's semantics on thousands of random plans.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import naive
from repro.core import UWSDT, WSD
from repro.core.algebra import BaseRelation
from repro.relational import And, AttrAttr, AttrConst, Or
from repro.worlds import OrSet, OrSetRelation

from _fixtures import assert_same_result_distribution, orset_relations

#: The fixed schema of the generated base relation.
BASE_ATTRS = ("A0", "A1")

#: Domain of constants in generated predicates (matches orset_relations).
constants = st.integers(min_value=0, max_value=4)


@st.composite
def predicates(draw, attrs):
    """Random predicates over the given attributes."""
    kind = draw(st.sampled_from(["const", "const", "attr", "and", "or"]))
    attr = draw(st.sampled_from(sorted(attrs)))
    op = draw(st.sampled_from(["=", "!=", "<", ">="]))
    if kind == "attr" and len(attrs) >= 2:
        other = draw(st.sampled_from(sorted(set(attrs) - {attr})))
        return AttrAttr(attr, draw(st.sampled_from(["=", "<"])), other)
    if kind in ("and", "or"):
        left = AttrConst(attr, op, draw(constants))
        other_attr = draw(st.sampled_from(sorted(attrs)))
        right = AttrConst(other_attr, draw(st.sampled_from(["=", ">"])), draw(constants))
        return And(left, right) if kind == "and" else Or(left, right)
    return AttrConst(attr, op, draw(constants))


def _schema_preserving(draw, attrs):
    """A selection chain over the base relation (keeps the base schema)."""
    query = BaseRelation("R")
    for _ in range(draw(st.integers(min_value=0, max_value=1))):
        query = query.select(draw(predicates(attrs)))
    return query


@st.composite
def query_trees(draw, depth=2):
    """Random query trees over ``R`` with known output attributes."""
    query, attrs = _tree(draw, depth, counter=[0])
    return query


def _tree(draw, depth, counter):
    if depth == 0:
        return BaseRelation("R"), BASE_ATTRS
    op = draw(
        st.sampled_from(
            [
                "base",
                "select",
                "select",
                "project",
                "rename",
                "union",
                "difference",
                "product",
                "join",
            ]
        )
    )
    if op == "base":
        return BaseRelation("R"), BASE_ATTRS
    if op == "select":
        child, attrs = _tree(draw, depth - 1, counter)
        return child.select(draw(predicates(attrs))), attrs
    if op == "project":
        child, attrs = _tree(draw, depth - 1, counter)
        keep = tuple(a for a in attrs if draw(st.booleans()))
        if not keep:
            keep = (attrs[0],)
        return child.project(keep), keep
    if op == "rename":
        child, attrs = _tree(draw, depth - 1, counter)
        old = draw(st.sampled_from(sorted(attrs)))
        new = f"Z{draw(st.integers(min_value=0, max_value=2))}"
        if new in attrs:
            return child, attrs
        return child.rename(old, new), tuple(new if a == old else a for a in attrs)
    if op in ("union", "difference"):
        left = _schema_preserving(draw, BASE_ATTRS)
        right = _schema_preserving(draw, BASE_ATTRS)
        if op == "union":
            return left.union(right), BASE_ATTRS
        return left.difference(right), BASE_ATTRS
    # product / join: the right side is a fully renamed copy of R so the
    # attribute sets are disjoint (the counter keeps nested products apart).
    left, left_attrs = _tree(draw, depth - 1, counter)
    right = BaseRelation("R")
    right_attrs = []
    for attribute in BASE_ATTRS:
        fresh = f"W{counter[0]}"
        counter[0] += 1
        right = right.rename(attribute, fresh)
        right_attrs.append(fresh)
    if op == "product":
        return left.product(right), tuple(left_attrs) + tuple(right_attrs)
    left_attr = draw(st.sampled_from(sorted(left_attrs)))
    right_attr = draw(st.sampled_from(sorted(right_attrs)))
    return left.join(right, left_attr, right_attr), tuple(left_attrs) + tuple(right_attrs)


def check_against_oracle(orset_relation, query):
    """All four strategies must yield the same result-world distribution."""
    base_wsd = WSD.from_orset_relation(orset_relation)
    # 4) brute force: evaluate classically in every enumerated world.
    reference = naive.evaluate_query(base_wsd.rep(), query, "P")

    # 1) planned UWSDT evaluation.
    planned = UWSDT.from_orset_relation(orset_relation)
    query.run(planned, "P", optimize=True)
    planned.validate()
    assert_same_result_distribution(planned.rep(), reference, "P")

    # 2) unplanned UWSDT evaluation.
    unplanned = UWSDT.from_orset_relation(orset_relation)
    query.run(unplanned, "P", optimize=False)
    unplanned.validate()
    assert_same_result_distribution(unplanned.rep(), reference, "P")

    # 3) WSD evaluation (planned: the same rewritten tree must also agree).
    wsd = WSD.from_orset_relation(orset_relation)
    query.run(wsd, "P", optimize=True)
    assert_same_result_distribution(wsd.rep(), reference, "P")


class TestPossibleWorldsOracle:
    @given(
        orset_relations(max_rows=2, max_attrs=2, max_alternatives=2),
        query_trees(depth=2),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_plans_match_brute_force(self, relation, query):
        if relation.schema.attributes != BASE_ATTRS:
            relation = _pad_to_base_schema(relation)
        check_against_oracle(relation, query)

    @given(orset_relations(max_rows=2, max_attrs=2, max_alternatives=2))
    @settings(max_examples=20, deadline=None)
    def test_fused_join_query_matches_brute_force(self, relation):
        """The σ(A=B)∘× → join fusion path, exercised explicitly."""
        if relation.schema.attributes != BASE_ATTRS:
            relation = _pad_to_base_schema(relation)
        right = BaseRelation("R").rename("A0", "W0").rename("A1", "W1")
        query = (
            BaseRelation("R")
            .product(right)
            .select(AttrAttr("A1", "=", "W0"))
            .project(["A0", "W1"])
        )
        check_against_oracle(relation, query)


def _pad_to_base_schema(relation):
    """Extend a 1-attribute generated relation to the fixed two-attribute schema."""
    padded = OrSetRelation.from_dicts("R", list(BASE_ATTRS), [])
    for row in relation.rows:
        values = list(row) + [0] * (len(BASE_ATTRS) - len(row))
        padded.insert(tuple(values))
    return padded
