"""The plan-invariant verifier: schema-preserving rewrites, well-formed plans.

* A Hypothesis property drives the full rewrite pipeline over oracle-shaped
  random trees (the same three-relation shapes the possible-worlds oracle
  uses) with verification forced on: every rule firing is checked
  schema-preserving, and the chosen tree's inferred schema must equal the
  original's.
* A deliberately broken rewrite rule (drops a column) must be caught and
  named by :class:`~repro.analysis.invariants.PlanInvariantError`.
* Hand-built malformed physical plans exercise each structural check:
  unpaired boundaries, boundaries in row plans, bad join keys, IndexScan
  without an indexable predicate, batch handles at the root.
* The plan cache's backend-kind consistency check.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import invariants
from repro.analysis.invariants import PlanInvariantError
from repro.analysis.schema import SchemaContext, inferred_attributes
from repro.core.algebra import BaseRelation
from repro.core.exec import backend_for, lower
from repro.core.exec.physical import (
    Dematerialize,
    HashJoin,
    IndexScan,
    Materialize,
    PhysicalPlan,
    Scan,
)
from repro.core.planner import Statistics, plan
from repro.core.planner.planner import rewrite
from repro.core.planner.rules import RewriteContext, RewriteRule
from repro.relational import Database, Relation, RelationSchema
from repro.relational.predicates import AttrAttr, AttrConst

from test_planner_oracle import ORACLE_ATTRS, deep_query_trees


@pytest.fixture(autouse=True)
def _verification_on():
    previous = invariants.set_verification(True)
    yield
    invariants.set_verification(previous)


def oracle_statistics() -> Statistics:
    return Statistics(
        row_counts={name: 10 for name in ORACLE_ATTRS},
        attributes={name: attrs for name, attrs in ORACLE_ATTRS.items()},
    )


# --------------------------------------------------------------------------- #
# Property: every rewrite rule is schema-preserving on oracle-shaped trees
# --------------------------------------------------------------------------- #


class TestRewritePreservation:
    @given(deep_query_trees())
    @settings(max_examples=120, deadline=None)
    def test_pipeline_preserves_schema_on_random_trees(self, query):
        statistics = oracle_statistics()
        checked_before = invariants.rewrites_verified()
        result = plan(query, statistics)
        # Each rule application was individually verified (no exception),
        # and the end-to-end schema is unchanged.
        assert invariants.rewrites_verified() - checked_before >= len(result.applications)
        context = SchemaContext.from_statistics(statistics)
        assert inferred_attributes(result.optimized, context) == inferred_attributes(
            query, context
        )

    def test_broken_rule_is_caught_and_named(self):
        class DropColumn(RewriteRule):
            """Deliberately unsound: rewrites R to π[A0](R)."""

            name = "drop-column"

            def apply(self, query, context):
                if isinstance(query, BaseRelation) and query.name == "R":
                    return BaseRelation("R").project(("A0",))
                return None

        context = RewriteContext(oracle_statistics())
        with pytest.raises(PlanInvariantError) as excinfo:
            rewrite(BaseRelation("R"), context, [("broken", [DropColumn()])])
        message = str(excinfo.value)
        assert "drop-column" in message
        assert "not\nschema-preserving" in message or "schema-preserving" in message
        assert "('A0', 'A1', 'A2')" in message and "('A0',)" in message

    def test_unknown_schemas_skip_the_check(self):
        # No statistics: inferred_attributes is None on both sides — a rule
        # firing over opaque relations must not be reported as a violation.
        class Identityish(RewriteRule):
            name = "rename-roundtrip"

            def apply(self, query, context):
                if isinstance(query, BaseRelation) and query.name == "X":
                    return BaseRelation("Y")
                return None

        rewrite(BaseRelation("X"), RewriteContext(), [("opaque", [Identityish()])])


# --------------------------------------------------------------------------- #
# Physical plan verification
# --------------------------------------------------------------------------- #


def small_database() -> Database:
    r = Relation(RelationSchema("R", ("A", "B")), [(1, 2), (3, 4)])
    s = Relation(RelationSchema("S", ("C", "D")), [(1, 5)])
    return Database([r, s])


class TestPhysicalVerification:
    def test_lowered_plans_verify_clean(self):
        database = small_database()
        backend = backend_for(database)
        statistics = Statistics.from_engine(database)
        query = (
            BaseRelation("R")
            .join(BaseRelation("S"), "A", "C")
            .select(AttrConst("B", "=", 2))
        )
        checked_before = invariants.plans_verified()
        lower(query, backend, statistics)  # raises on violation
        assert invariants.plans_verified() > checked_before

    def test_boundary_in_row_plan_rejected(self):
        root = Materialize(Scan("R"))
        plan_ = PhysicalPlan(root, "database")
        with pytest.raises(PlanInvariantError, match="boundaries belong"):
            invariants.verify_physical(plan_)

    def test_unpaired_dematerialize_rejected(self):
        root = Dematerialize(Scan("R"))
        plan_ = PhysicalPlan(root, "columnar")
        with pytest.raises(PlanInvariantError, match="unpaired boundary"):
            invariants.verify_physical(plan_)

    def test_batch_root_rejected(self):
        root = Materialize(Scan("R"))
        plan_ = PhysicalPlan(root, "columnar")
        with pytest.raises(PlanInvariantError, match="Dematerialize boundary is missing"):
            invariants.verify_physical(plan_)

    def test_hash_join_bad_key_rejected(self):
        context = SchemaContext(attributes={"R": ("A", "B"), "S": ("C", "D")})
        root = HashJoin(Scan("R"), Scan("S"), "A", "NOPE")
        plan_ = PhysicalPlan(root, "database")
        with pytest.raises(PlanInvariantError, match="'NOPE'"):
            invariants.verify_physical(plan_, schema_context=context)

    def test_index_scan_requires_equality_predicate(self):
        root = IndexScan("R", AttrConst("A", "<", 3))
        plan_ = PhysicalPlan(root, "database")
        with pytest.raises(PlanInvariantError, match="hashable"):
            invariants.verify_physical(plan_)

    def test_index_scan_predicate_attribute_checked(self):
        context = SchemaContext(attributes={"R": ("A", "B")})
        root = IndexScan("R", AttrConst("Z", "=", 3))
        plan_ = PhysicalPlan(root, "database")
        with pytest.raises(PlanInvariantError, match="'Z'"):
            invariants.verify_physical(plan_, schema_context=context)

    def test_backend_kind_mismatch_rejected(self):
        database = small_database()
        backend = backend_for(database)
        plan_ = PhysicalPlan(Scan("R"), "uwsdt")
        with pytest.raises(PlanInvariantError, match="paired with"):
            invariants.verify_physical(plan_, backend=backend)

    def test_materialize_over_uncertain_subtree_rejected(self):
        root = Dematerialize(Materialize(Scan("R")))
        root.children[0].base_relation_names = ("R",)
        plan_ = PhysicalPlan(root, "columnar")
        with pytest.raises(PlanInvariantError, match="uncertain relation"):
            invariants.verify_physical(plan_, certain_base=lambda name: False)

    def test_attr_attr_filter_over_join_verifies(self):
        # AttrAttr predicates resolve through concatenated join schemas.
        database = small_database()
        backend = backend_for(database)
        statistics = Statistics.from_engine(database)
        query = (
            BaseRelation("R")
            .join(BaseRelation("S"), "A", "C")
            .select(AttrAttr("B", "<", "D"))
            .project(("A", "D"))
        )
        lower(query, backend, statistics)


# --------------------------------------------------------------------------- #
# Enablement plumbing and the plan-cache consistency check
# --------------------------------------------------------------------------- #


class TestEnablement:
    def test_env_variable_controls_default(self, monkeypatch):
        invariants.set_verification(None)
        monkeypatch.delenv(invariants.VERIFY_ENV, raising=False)
        assert not invariants.verification_enabled()
        monkeypatch.setenv(invariants.VERIFY_ENV, "1")
        assert invariants.verification_enabled()
        monkeypatch.setenv(invariants.VERIFY_ENV, "0")
        assert not invariants.verification_enabled()

    def test_override_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(invariants.VERIFY_ENV, "0")
        invariants.set_verification(True)
        assert invariants.verification_enabled()

    def test_cached_backend_mismatch(self):
        with pytest.raises(PlanInvariantError, match="lowered for"):
            invariants.verify_cached_backend("database", "columnar", ("database", "columnar"))

    def test_cached_backend_invalid_kind(self):
        with pytest.raises(PlanInvariantError, match="not executable"):
            invariants.verify_cached_backend("wsd", "wsd", ("database", "columnar"))

    def test_cached_backend_consistent(self):
        invariants.verify_cached_backend("columnar", "columnar", ("database", "columnar"))
