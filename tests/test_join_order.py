"""Property tests for the join-order enumerator itself.

Two families:

* **optimality** — on random join graphs the DP winner's cost (under the
  enumerator's own order-independent cost metric) is never beaten by any
  left-deep join order.  This is a theorem of the subset DP as long as a
  subset's cardinality estimate does not depend on the order that built it
  — which is exactly why ``joins._Costing`` fixes every predicate's
  selectivity from the leaf samples up front.
* **semantics** — planned evaluation of 3/4/5-way census joins produces
  exactly the written-order result, on the classical engine (row sets) and
  on the UWSDT (possible tuples with confidences).
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import census_instance
from repro.census.queries import q3, q4_citizen, q6, q_four_way_join
from repro.core.algebra import BaseRelation, Join
from repro.core.confidence import uwsdt_possible_with_confidence
from repro.core.planner import (
    GREEDY_THRESHOLD,
    MIN_REORDER_RELATIONS,
    RewriteContext,
    Statistics,
    extract_join_graph,
    plan,
)
from repro.core.planner.joins import enumerate_plan_state, forced_order_state
from repro.relational import AttrAttr, Database, Relation, RelationSchema
from repro.relational.predicates import And

#: Number of leaf relations in generated join graphs (kept within the DP
#: regime; the greedy fallback is exercised separately).
MIN_LEAVES, MAX_LEAVES = 3, 5


@st.composite
def join_graph_cases(draw, min_leaves=MIN_LEAVES, max_leaves=MAX_LEAVES):
    """A random database + a ×-chain query with random equality predicates."""
    leaf_count = draw(st.integers(min_value=min_leaves, max_value=max_leaves))
    relations = []
    for index in range(leaf_count):
        schema = RelationSchema(f"L{index}", (f"X{index}a", f"X{index}b"))
        relation = Relation(schema)
        rows = draw(st.integers(min_value=0, max_value=10))
        for _ in range(rows):
            relation.insert(
                (
                    draw(st.integers(min_value=0, max_value=3)),
                    draw(st.integers(min_value=0, max_value=3)),
                )
            )
        relations.append(relation)
    database = Database(relations)

    predicate_count = draw(st.integers(min_value=1, max_value=leaf_count))
    predicates = []
    for _ in range(predicate_count):
        left, right = draw(
            st.tuples(
                st.integers(min_value=0, max_value=leaf_count - 1),
                st.integers(min_value=0, max_value=leaf_count - 1),
            ).filter(lambda pair: pair[0] != pair[1])
        )
        predicates.append(
            AttrAttr(
                f"X{left}{draw(st.sampled_from('ab'))}",
                "=",
                f"X{right}{draw(st.sampled_from('ab'))}",
            )
        )

    query = BaseRelation("L0")
    for index in range(1, leaf_count):
        query = query.product(BaseRelation(f"L{index}"))
    query = query.select(And(*predicates) if len(predicates) > 1 else predicates[0])
    return database, query, leaf_count


class TestEnumeratorOptimality:
    @given(join_graph_cases())
    @settings(max_examples=60, deadline=None)
    def test_dp_cost_never_beaten_by_left_deep_orders(self, case):
        database, query, leaf_count = case
        statistics = Statistics.from_database(database)
        graph = extract_join_graph(query, RewriteContext(statistics))
        assert graph is not None and len(graph.leaves) == leaf_count
        best = enumerate_plan_state(graph, statistics)
        for order in itertools.permutations(range(leaf_count)):
            forced = forced_order_state(graph, statistics, order)
            assert best.cost <= forced.cost * (1 + 1e-9) + 1e-9, (
                f"DP cost {best.cost} beaten by left-deep order {order} "
                f"({forced.cost})"
            )

    @given(
        join_graph_cases(),
        st.lists(
            st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
            min_size=MAX_LEAVES,
            max_size=MAX_LEAVES,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_dp_optimality_holds_at_nonzero_density(self, case, densities):
        """The enumerator's metric must stay order-independent under
        placeholder densities too (it deliberately omits the density bump)."""
        database, query, leaf_count = case
        statistics = Statistics.from_database(database)
        for index in range(leaf_count):
            statistics.placeholder_densities[f"L{index}"] = densities[index]
        graph = extract_join_graph(query, RewriteContext(statistics))
        best = enumerate_plan_state(graph, statistics)
        for order in itertools.permutations(range(leaf_count)):
            forced = forced_order_state(graph, statistics, order)
            assert best.cost <= forced.cost * (1 + 1e-9) + 1e-9

    @given(join_graph_cases(min_leaves=GREEDY_THRESHOLD + 1, max_leaves=GREEDY_THRESHOLD + 2))
    @settings(max_examples=10, deadline=None)
    def test_greedy_fallback_produces_a_complete_plan(self, case):
        """Above the DP cutover the greedy heuristic must still cover every
        leaf and apply every predicate (semantics checked via the oracle and
        the census equality tests; here we check structure)."""
        database, query, leaf_count = case
        statistics = Statistics.from_database(database)
        graph = extract_join_graph(query, RewriteContext(statistics))
        best = enumerate_plan_state(graph, statistics)
        assert best.mask == (1 << leaf_count) - 1
        assert tuple(sorted(best.attributes)) == tuple(sorted(graph.output_attributes))

    def test_reorder_only_fires_at_min_relations(self):
        """A 2-way cluster is left to join fusion, not reordered."""
        statistics = Statistics(
            row_counts={"L0": 10, "L1": 10},
            attributes={"L0": ("X0a", "X0b"), "L1": ("X1a", "X1b")},
        )
        query = BaseRelation("L0").product(BaseRelation("L1")).select(
            AttrAttr("X0a", "=", "X1a")
        )
        built = plan(query, statistics)
        assert MIN_REORDER_RELATIONS == 3
        assert not any(a.rule == "reorder-joins" for a in built.applications)
        assert isinstance(built.optimized, Join)


# --------------------------------------------------------------------------- #
# Planned ≡ written order on census joins (3-, 4- and 5-way)
# --------------------------------------------------------------------------- #


def _three_way_join():
    a = q6().rename("POWSTATE", "W1").rename("POB", "B1")
    b = q4_citizen().rename("POWSTATE", "W2").rename("CITIZEN", "C2")
    c = q3().rename("POWSTATE", "P3").rename("MARITAL", "M3").rename("FERTIL", "F3")
    return a.join(b, "W1", "W2").join(c, "B1", "P3")


def _five_way_join():
    base = q_four_way_join()
    e = q6().rename("POWSTATE", "W5").rename("POB", "B5")
    return base.join(e, "W1", "W5")


CENSUS_JOINS = {
    "3-way": _three_way_join,
    "4-way": q_four_way_join,
    "5-way": _five_way_join,
}


@pytest.mark.parametrize("name", sorted(CENSUS_JOINS))
class TestPlannedMatchesWrittenOrder:
    def test_database_row_sets_equal(self, name):
        database = census_instance(120, 0.0).one_world_database()
        query = CENSUS_JOINS[name]()
        planned = query.run(database, "planned", optimize=True)
        written = query.run(database, "written", optimize=False)
        assert planned.schema.attributes == written.schema.attributes
        assert planned.row_set() == written.row_set()

    def test_uwsdt_possible_tuples_and_confidences_equal(self, name):
        chased = census_instance(120, 0.005).chased()
        query = CENSUS_JOINS[name]()

        planned = chased.copy()
        query.run(planned, "P", optimize=True)
        planned.validate()
        planned_ranked = dict(uwsdt_possible_with_confidence(planned, "P"))

        written = chased.copy()
        query.run(written, "P", optimize=False)
        written.validate()
        written_ranked = dict(uwsdt_possible_with_confidence(written, "P"))

        assert set(planned_ranked) == set(written_ranked)
        for row, confidence in written_ranked.items():
            assert planned_ranked[row] == pytest.approx(confidence, abs=1e-9)

    def test_plan_reports_a_join_order(self, name):
        database = census_instance(120, 0.0).one_world_database()
        built = CENSUS_JOINS[name]().plan(database)
        assert built.join_order is not None
        assert "⋈" in built.join_order
        assert built.join_order.count("(") == built.join_order.count(")")


def test_describe_join_order_handles_rename_above_join():
    """A δ above a join must not mangle the rendered skeleton."""
    from repro.core.planner import describe_join_order

    query = (
        BaseRelation("R")
        .rename("A", "W1")
        .join(BaseRelation("S"), "W1", "B")
        .rename("B", "Z9")
    )
    rendered = describe_join_order(query)
    assert rendered == "(R→W1 ⋈ S)"
    assert rendered.count("(") == rendered.count(")")
