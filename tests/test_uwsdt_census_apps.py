"""UWSDT structure, the census workload, c-tables, baselines, applications and the harness."""

import pytest

from repro.apps import (
    MedicalScenario,
    consistent_answer,
    key_violation_groups,
    minimal_repairs,
    possible_answer,
    repairs_to_uwsdt,
)
from repro.baselines import extensional, naive
from repro.baselines.orset_engine import (
    is_representable_as_orsets,
    orset_representation_size,
    project as orset_project,
    select_constant,
)
from repro.bench import (
    census_instance,
    clear_instance_cache,
    density_label,
    format_records,
    run_component_size_experiment,
    run_representation_size_experiment,
)
from repro.census import (
    CENSUS_QUERIES,
    CensusGenerator,
    census_attributes,
    census_dependencies,
    census_schema,
    query_names,
)
from repro.core import (
    UWSDT,
    WSD,
    WSDT,
    FunctionalDependency,
    chase_uwsdt,
    chase_wsd,
    uwsdt_possible_with_confidence,
)
from repro.core.algebra import evaluate_on_database, evaluate_on_uwsdt
from repro.ctables import CTable, Equality, TrueFormula, Variable, VTable, wsdt_to_ctable
from repro.relational import (
    Database,
    PLACEHOLDER,
    Relation,
    RelationSchema,
    RepresentationError,
    eq,
)
from repro.worlds import OrSet, OrSetRelation


class TestUWSDTStructure:
    def test_uniform_relations_roundtrip(self, census_forms):
        uwsdt = UWSDT.from_orset_relation(census_forms)
        uniform = uwsdt.to_uniform_relations()
        assert uniform["C"].schema.attributes == ("REL", "TID", "ATTR", "LWID", "VAL")
        assert uniform["F"].schema.attributes == ("REL", "TID", "ATTR", "CID")
        assert uniform["W"].schema.attributes == ("CID", "LWID", "PR")
        rebuilt = UWSDT.from_uniform_relations(
            uwsdt.schema, uwsdt.templates, uniform, probabilistic=True
        )
        rebuilt.validate()
        assert rebuilt.rep().same_distribution(uwsdt.rep())

    def test_statistics_match_paper_quantities(self, census_forms):
        uwsdt = UWSDT.from_orset_relation(census_forms)
        statistics = uwsdt.statistics()
        assert statistics["template_size"] == 2
        assert statistics["placeholders"] == 4
        assert statistics["components"] == 4
        assert statistics["components_gt1"] == 0
        # |C| counts (field, local world) pairs: 2 + 2 + 2 + 4.
        assert statistics["component_relation_size"] == 10
        uniform = uwsdt.to_uniform_relations()
        assert len(uniform["C"]) == statistics["component_relation_size"]

    def test_validate_detects_broken_placeholder(self, census_forms):
        uwsdt = UWSDT.from_orset_relation(census_forms)
        # Remove a component without fixing the template.
        cid = next(iter(uwsdt.components))
        uwsdt.remove_component(cid)
        with pytest.raises(RepresentationError):
            uwsdt.validate()

    def test_certain_world_skips_placeholder_tuples(self, census_forms):
        uwsdt = UWSDT.from_orset_relation(census_forms)
        assert len(uwsdt.certain_world().relation("R")) == 0  # both tuples are uncertain
        certain_only = UWSDT.from_relation(
            Relation(RelationSchema("R", ("A",)), [(1,), (2,)])
        )
        assert len(certain_only.certain_world().relation("R")) == 2

    def test_wsdt_uwsdt_conversions(self, census_forms):
        wsd = WSD.from_orset_relation(census_forms)
        wsdt = WSDT.from_wsd(wsd)
        uwsdt = UWSDT.from_wsdt(wsdt)
        assert uwsdt.to_wsdt().rep().same_distribution(wsdt.rep())
        assert UWSDT.from_wsd(wsd).rep().same_distribution(wsd.rep())

    def test_merge_components(self, census_forms):
        from repro.core import FieldRef

        uwsdt = UWSDT.from_orset_relation(census_forms)
        first = uwsdt.component_of(FieldRef("R", 1, "S"))
        second = uwsdt.component_of(FieldRef("R", 2, "S"))
        merged = uwsdt.merge_components([first, second])
        assert uwsdt.component_of(FieldRef("R", 1, "S")) == merged
        assert uwsdt.component_of(FieldRef("R", 2, "S")) == merged
        assert uwsdt.components[merged].arity == 2
        uwsdt.validate()

    def test_duplicate_relation_rejected(self, census_forms):
        uwsdt = UWSDT.from_orset_relation(census_forms)
        with pytest.raises(RepresentationError):
            uwsdt.add_relation(RelationSchema("R", ("A",)))


class TestCensusWorkload:
    def test_schema_shape(self):
        schema = census_schema()
        assert schema.arity == 50
        assert "CITIZEN" in schema.attributes and "POWSTATE" in schema.attributes
        assert len(census_attributes()) == 50

    def test_clean_data_satisfies_dependencies(self):
        generator = CensusGenerator(seed=7)
        relation = generator.clean_relation(300)
        attributes = relation.schema.attributes
        for dependency in census_dependencies():
            for row in relation:
                values = dict(zip(attributes, row))
                assert dependency.holds_for(values), (dependency, values)

    def test_noise_injection_density_and_original_value_kept(self):
        generator = CensusGenerator(seed=3)
        clean = generator.clean_relation(200)
        noisy = generator.add_noise(clean, 0.01)
        uncertain = noisy.uncertain_fields()
        expected = 200 * 50 * 0.01
        assert 0.2 * expected <= len(uncertain) <= 3 * expected
        # Every or-set contains the original (clean) value.
        for row_index, attribute in uncertain:
            original = clean.rows[row_index][clean.schema.position(attribute)]
            value = noisy.rows[row_index][noisy.schema.position(attribute)]
            assert original in value.values

    def test_generator_is_deterministic(self):
        first = CensusGenerator(seed=11).clean_relation(50)
        second = CensusGenerator(seed=11).clean_relation(50)
        assert first.row_set() == second.row_set()

    def test_queries_run_on_one_world(self):
        generator = CensusGenerator(seed=5)
        database = Database([generator.clean_relation(400)])
        for name in query_names():
            result = evaluate_on_database(CENSUS_QUERIES[name](), database, name)
            assert result.schema.name == name

    def test_query_results_on_uwsdt_contain_certain_answers(self):
        """Tuples selected from fully-certain rows must appear in the UWSDT answer."""
        instance = census_instance(300, 0.001, seed=13)
        chased = instance.chased()
        q1 = CENSUS_QUERIES["Q1"]()
        uwsdt = chased.copy()
        evaluate_on_uwsdt(q1, uwsdt, "A1")
        answer_rows = {row for row, _ in uwsdt_possible_with_confidence(uwsdt, "A1")}
        database = instance.one_world_database()
        clean_answer = evaluate_on_database(q1, database, "A1")
        # The clean world is one of the possible worlds, so every clean answer
        # tuple must be possible in the UWSDT answer.
        for row in clean_answer:
            assert row in answer_rows

    def test_chase_keeps_clean_world_possible(self):
        instance = census_instance(200, 0.002, seed=17)
        chased = instance.chased()
        assert chased.template_size("R") == 200
        # No certain violations were generated, so the chase never errors and
        # every component keeps at least one local world.
        for component in chased.components.values():
            assert component.size >= 1
            component.validate()

    def test_bench_density_labels(self):
        assert density_label(0.001) == "0.1%"
        assert density_label(0.0) == "0%"
        assert density_label(0.25) == "25%"


class TestCTables:
    def test_vtable_worlds(self):
        x = Variable("x")
        vtable = VTable(
            RelationSchema("R", ("A", "B")), [(x, 1), (2, 2)], {x: [10, 20]}
        )
        worlds = vtable.to_worldset()
        assert len(worlds) == 2
        assert worlds.possible_tuples("R") == {(10, 1), (20, 1), (2, 2)}

    def test_vtable_missing_domain(self):
        vtable = VTable(RelationSchema("R", ("A",)), [(Variable("x"),)])
        with pytest.raises(RepresentationError):
            list(vtable.valuations())

    def test_ctable_global_and_local_conditions(self):
        x, y = Variable("x"), Variable("y")
        ctable = CTable(
            RelationSchema("R", ("A", "B")),
            [(x, y), (1, 1)],
            {x: [1, 2], y: [1, 2]},
            local_conditions=[Equality(x, y), TrueFormula()],
            global_condition=Equality(x, 1, negated=True),
        )
        worlds = ctable.to_worldset()
        # x must be 2; the first tuple appears only when y = 2 as well.
        assert len(worlds) == 2
        assert worlds.possible_tuples("R") == {(2, 2), (1, 1)}

    def test_wsdt_to_ctable_equivalence(self, census_forms):
        wsd = WSD.from_orset_relation(census_forms)
        chase_wsd(
            wsd,
            [FunctionalDependency("R", ["S"], "N"), FunctionalDependency("R", ["S"], "M")],
        )
        wsdt = WSDT.from_wsd(wsd)
        ctable = wsdt_to_ctable(wsdt, "R")
        assert ctable.to_worldset().same_worlds(wsd.rep())


class TestBaselines:
    def test_naive_query_and_clean(self, census_forms):
        from repro.core.algebra import BaseRelation

        worlds = census_forms.to_worldset()
        extended = naive.evaluate_query(worlds, BaseRelation("R").select(eq("N", "Smith")), "P")
        assert all(
            all(row[1] == "Smith" for row in world.database.relation("P"))
            for world in extended
        )
        assert naive.representation_size(worlds) == 32 * 6

    def test_orset_engine_selection_and_projection(self, census_forms):
        selected = select_constant(census_forms, eq("S", 185))
        assert len(selected) == 2
        projected = orset_project(census_forms, ["N"])
        assert projected.schema.attributes == ("N",)
        assert orset_representation_size(census_forms) == 12

    def test_orset_representability_oracle(self, census_forms):
        worlds = census_forms.to_worldset()
        assert is_representable_as_orsets(worlds, "R")
        cleaned = naive.clean(
            worlds,
            [FunctionalDependency("R", ["S"], "N"), FunctionalDependency("R", ["S"], "M")],
        )
        assert not is_representable_as_orsets(cleaned, "R")

    def test_extensional_rules_match_naive(self):
        from repro.relational import RelationSchema
        from repro.worlds import TupleIndependentDatabase
        from repro.worlds.tuple_independent import TupleIndependentRelation

        relation = TupleIndependentRelation(RelationSchema("S", ("A", "B")))
        relation.insert((1, "x"), 0.5)
        relation.insert((1, "y"), 0.4)
        relation.insert((2, "z"), 0.9)
        database = TupleIndependentDatabase([relation])
        worlds = database.to_worldset()
        for key, probability in extensional.project_independent(relation, ["A"]):
            exact = sum(
                world.probability
                for world in worlds
                if any(row[0] == key[0] for row in world.database.relation("S"))
            )
            assert probability == pytest.approx(exact)


class TestApplications:
    def make_address_relation(self):
        return Relation(
            RelationSchema("Address", ("PERSON", "CITY")),
            [("alice", "Ithaca"), ("alice", "Oxford"), ("bob", "Paris")],
        )

    def test_minimal_repairs_and_answers(self):
        relation = self.make_address_relation()
        assert len(key_violation_groups(relation, ["PERSON"])) == 1
        repairs = minimal_repairs(relation, ["PERSON"])
        assert len(repairs) == 2
        assert consistent_answer(repairs, "Address") == {("bob", "Paris")}
        assert possible_answer(repairs, "Address") == set(relation.rows)

    def test_repairs_to_uwsdt_matches_enumeration(self):
        relation = self.make_address_relation()
        uwsdt = repairs_to_uwsdt(relation, ["PERSON"])
        uwsdt.validate()
        assert uwsdt.rep().same_worlds(minimal_repairs(relation, ["PERSON"]))
        assert uwsdt.component_count() == 1
        assert uwsdt.template_size() == 3

    def test_medical_scenario(self):
        scenario = MedicalScenario(
            [("flu", "a"), ("flu", "c"), ("cold", "b"), ("cold", "c")]
        )
        record = scenario.build_patient_record(
            "p1",
            observations={"FEVER": "yes"},
            candidate_clusters=[{"DIAGNOSIS": ["flu", "cold"]}],
            cluster_probabilities=[[0.7, 0.3]],
        )
        diagnoses = dict(scenario.possible_diagnoses(record))
        assert diagnoses == {"flu": pytest.approx(0.7), "cold": pytest.approx(0.3)}
        assert scenario.candidate_medications(record) == ["c"]
        assert scenario.common_medications([]) == []
        with pytest.raises(RepresentationError):
            scenario.build_patient_record(
                "p2", {}, [{"A": ["x"], "B": ["y", "z"]}]
            )

    def test_medical_scenario_requires_catalogue(self):
        with pytest.raises(RepresentationError):
            MedicalScenario([])


class TestBenchHarness:
    def test_census_instance_cached(self):
        clear_instance_cache()
        first = census_instance(100, 0.001, seed=23)
        second = census_instance(100, 0.001, seed=23)
        assert first is second
        clear_instance_cache()

    def test_component_size_experiment_shape(self):
        records = run_component_size_experiment(sizes=(200,), densities=(0.002,), seed=29)
        assert len(records) == 1
        record = records[0]
        assert record["size_1"] >= record["size_2"] >= record["size_3"]

    def test_representation_size_experiment_shows_exponential_gap(self):
        records = run_representation_size_experiment(field_counts=(2, 6, 10))
        assert [r["worlds"] for r in records] == [4, 64, 1024]
        assert all(r["wsd_values"] == r["orset_values"] for r in records)
        assert records[-1]["worldset_relation_values"] > 50 * records[-1]["wsd_values"]

    def test_format_records(self):
        text = format_records(
            [{"a": 1, "b": 0.123456}, {"a": 2, "b": 7}], ["a", "b"]
        )
        assert "a" in text and "0.1235" in text


class TestEndToEndIntegration:
    def test_tiny_census_pipeline_equivalence(self):
        """The full pipeline at tiny scale: WSD, UWSDT and the naive engine agree."""
        generator = CensusGenerator(seed=31)
        clean = generator.clean_relation(5)
        # Inject a handful of or-sets by hand (instead of random noise) so that
        # the explicit world-set stays small enough for the naive oracle and the
        # uncertainty touches attributes constrained by the dependencies.
        attributes = clean.schema.attributes
        noisy = OrSetRelation(clean.schema)
        for index, row in enumerate(clean):
            values = list(row)
            if index == 0:
                position = clean.schema.position("CITIZEN")
                values[position] = OrSet(sorted({row[position], 0, 1}))
            if index == 1:
                position = clean.schema.position("ENGLISH")
                values[position] = OrSet(sorted({row[position], 4}))
                position = clean.schema.position("MILITARY")
                values[position] = OrSet(sorted({row[position], 4}))
            if index == 2:
                position = clean.schema.position("WWII")
                values[position] = OrSet(sorted({row[position], 1, 0}))
            noisy.insert(tuple(values))
        assert noisy.world_count() <= 64
        dependencies = census_dependencies()

        uwsdt = UWSDT.from_orset_relation(noisy)
        chase_uwsdt(uwsdt, dependencies)
        wsd = WSD.from_orset_relation(noisy)
        chase_wsd(wsd, dependencies)
        reference = naive.clean(WSD.from_orset_relation(noisy).rep(), dependencies)
        assert uwsdt.rep().same_distribution(reference)
        assert wsd.rep().same_distribution(reference)

        query = CENSUS_QUERIES["Q2"]()
        answer = naive.query_answer_worlds(reference, query, "Q2")
        uwsdt_copy = uwsdt.copy()
        evaluate_on_uwsdt(query, uwsdt_copy, "Q2")
        for world in answer:
            rows = world.database.relation("Q2").row_set()
            if rows:
                possible_rows = {
                    row for row, _ in uwsdt_possible_with_confidence(uwsdt_copy, "Q2")
                }
                assert rows <= possible_rows
