"""Edge cases for the chase (Section 8) and confidence computation (Section 6).

Covers the corners the main suites skip over: chasing an already-consistent
instance must be a structural no-op, certain tuples must carry confidence
exactly 1.0, and the confidences over an or-set column must reproduce the
marginals of the paper's Figure 1 census forms.
"""

import pytest

from repro.core import (
    UWSDT,
    WSD,
    Comparison,
    EqualityGeneratingDependency,
    FunctionalDependency,
    chase_uwsdt,
    chase_wsd,
    confidence,
    possible_with_confidence,
    uwsdt_confidence,
    uwsdt_possible_with_confidence,
)
from repro.relational import Relation, RelationSchema
from repro.worlds import OrSet, OrSetRelation


class TestChaseNoOp:
    """The chase of a consistent instance changes nothing."""

    @pytest.fixture
    def consistent_orset(self):
        # Distinct SSNs in every world: the key S -> (N, M) can never fire.
        return OrSetRelation.from_dicts(
            "R",
            ["S", "N", "M"],
            [
                {"S": OrSet([1, 2]), "N": "a", "M": 1},
                {"S": OrSet([7, 8]), "N": "b", "M": OrSet([3, 4])},
            ],
        )

    def test_uwsdt_chase_consistent_is_noop(self, consistent_orset):
        uwsdt = UWSDT.from_orset_relation(consistent_orset)
        before_stats = uwsdt.statistics()
        before_rep = uwsdt.rep()
        chase_uwsdt(
            uwsdt,
            [FunctionalDependency("R", ["S"], "N"), FunctionalDependency("R", ["S"], "M")],
        )
        uwsdt.validate()
        assert uwsdt.statistics() == before_stats
        assert uwsdt.rep().same_distribution(before_rep)

    def test_wsd_chase_consistent_is_noop(self, consistent_orset):
        wsd = WSD.from_orset_relation(consistent_orset)
        before_components = wsd.component_count()
        before_rep = wsd.rep()
        chase_wsd(
            wsd,
            [FunctionalDependency("R", ["S"], "N"), FunctionalDependency("R", ["S"], "M")],
        )
        assert wsd.component_count() == before_components
        assert wsd.rep().same_distribution(before_rep)

    def test_egd_with_false_premise_is_noop(self, consistent_orset):
        uwsdt = UWSDT.from_orset_relation(consistent_orset)
        before = uwsdt.statistics()
        egd = EqualityGeneratingDependency(
            "R", [Comparison("N", "=", "nobody")], Comparison("M", "=", 1)
        )
        chase_uwsdt(uwsdt, [egd])
        assert uwsdt.statistics() == before

    def test_certain_instance_chase_is_noop(self):
        relation = Relation(RelationSchema("R", ("S", "N")), [(1, "a"), (2, "b")])
        uwsdt = UWSDT.from_relation(relation)
        before = uwsdt.statistics()
        chase_uwsdt(uwsdt, [FunctionalDependency("R", ["S"], "N")])
        assert uwsdt.statistics() == before
        assert uwsdt.component_count() == 0


class TestCertainTupleConfidence:
    """A tuple present in every world has confidence exactly 1.0."""

    def test_uwsdt_certain_tuple(self):
        relation = Relation(RelationSchema("R", ("A", "B")), [(1, 2), (3, 4)])
        uwsdt = UWSDT.from_relation(relation)
        assert uwsdt_confidence(uwsdt, "R", (1, 2)) == 1.0
        assert uwsdt_confidence(uwsdt, "R", (3, 4)) == 1.0

    def test_wsd_certain_tuple(self):
        relation = Relation(RelationSchema("R", ("A", "B")), [(1, 2)])
        wsd = WSD.from_relation(relation)
        assert confidence(wsd, "R", (1, 2)) == 1.0

    def test_certain_tuple_next_to_uncertain_one(self):
        orset = OrSetRelation.from_dicts(
            "R",
            ["A", "B"],
            [{"A": 1, "B": 2}, {"A": OrSet([5, 6]), "B": 7}],
        )
        uwsdt = UWSDT.from_orset_relation(orset)
        assert uwsdt_confidence(uwsdt, "R", (1, 2)) == 1.0
        wsd = WSD.from_orset_relation(orset)
        assert confidence(wsd, "R", (1, 2)) == 1.0


class TestFigure1Probabilities:
    """Confidence sums over the or-set columns of the Figure 1 census forms."""

    def test_tuple1_socsec_marginals(self, census_forms):
        uwsdt = UWSDT.from_orset_relation(census_forms)
        # Tuple 1: S ∈ {185 (0.2), 785 (0.8)}, N = Smith, M ∈ {1 (0.7), 2 (0.3)}.
        assert uwsdt_confidence(uwsdt, "R", (185, "Smith", 1)) == pytest.approx(0.2 * 0.7)
        assert uwsdt_confidence(uwsdt, "R", (185, "Smith", 2)) == pytest.approx(0.2 * 0.3)
        assert uwsdt_confidence(uwsdt, "R", (785, "Smith", 1)) == pytest.approx(0.8 * 0.7)
        assert uwsdt_confidence(uwsdt, "R", (785, "Smith", 2)) == pytest.approx(0.8 * 0.3)

    def test_socsec_column_sums_to_orset_probabilities(self, census_forms):
        uwsdt = UWSDT.from_orset_relation(census_forms)
        ranked = dict(uwsdt_possible_with_confidence(uwsdt, "R"))
        smith = {row: conf for row, conf in ranked.items() if row[1] == "Smith"}
        # Summing out M recovers the or-set marginals of the S column.
        assert sum(conf for row, conf in smith.items() if row[0] == 185) == pytest.approx(0.2)
        assert sum(conf for row, conf in smith.items() if row[0] == 785) == pytest.approx(0.8)
        # The whole Smith row sums to 1: the tuple exists in every world.
        assert sum(smith.values()) == pytest.approx(1.0)

    def test_brown_uniform_marital_column(self, census_forms):
        uwsdt = UWSDT.from_orset_relation(census_forms)
        ranked = dict(uwsdt_possible_with_confidence(uwsdt, "R"))
        brown = {row: conf for row, conf in ranked.items() if row[1] == "Brown"}
        # M ∈ {1, 2, 3, 4} without probabilities defaults to uniform 0.25.
        for marital in (1, 2, 3, 4):
            assert sum(
                conf for row, conf in brown.items() if row[2] == marital
            ) == pytest.approx(0.25)

    def test_wsd_and_uwsdt_marginals_agree(self, census_forms):
        uwsdt = UWSDT.from_orset_relation(census_forms)
        wsd = WSD.from_orset_relation(census_forms)
        uwsdt_ranked = dict(uwsdt_possible_with_confidence(uwsdt, "R"))
        wsd_ranked = dict(possible_with_confidence(wsd, "R"))
        assert set(uwsdt_ranked) == set(wsd_ranked)
        for row, value in wsd_ranked.items():
            assert uwsdt_ranked[row] == pytest.approx(value)
