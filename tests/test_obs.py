"""The observability subsystem: metrics registry, tracer, slow-query log.

Coverage of :mod:`repro.obs` and its wiring:

* counters / gauges / bounded histograms — get-or-create identity, label
  separation, exact totals under thread stress, bucket-edge percentiles,
  snapshot and Prometheus text exposition,
* the contextvar tracer — parentage within one context, isolation across
  interleaved asyncio tasks, root trace-id minting, JSONL and Chrome
  trace-event export, ``REPRO_TRACE`` configuration,
* **the disabled fast path**: a disabled tracer hands out the shared
  ``NOOP_SPAN`` singleton (no allocation, no recording during
  ``Query.run``) and its per-call cost stays within a generous micro
  bound — the acceptance criterion that observability is free when off,
* the service slow-query log: threshold from argument or
  ``REPRO_SLOW_QUERY_MS``, bounded retention, registry counter.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.core.algebra import BaseRelation
from repro.obs import (
    LATENCY_BUCKETS,
    NOOP_SPAN,
    QERROR_BUCKETS,
    configure_from_env,
    get_registry,
    get_tracer,
    render_name,
)
from repro.relational import Database, Relation, RelationSchema
from repro.relational.predicates import AttrConst
from repro.service import QueryService
from repro.service.server import slow_query_threshold_from_env


@pytest.fixture(autouse=True)
def clean_obs():
    """Reset the process-wide tracer and registry around every test."""
    get_tracer().reset()
    get_registry().reset()
    yield
    get_tracer().reset()
    get_registry().reset()


def small_database() -> Database:
    r = Relation(RelationSchema("R", ("A", "RV")), [(i % 5, i) for i in range(40)])
    s = Relation(RelationSchema("S", ("B", "C")), [(i % 5, i % 7) for i in range(40)])
    t = Relation(RelationSchema("T", ("D", "TV")), [(i % 7, i) for i in range(40)])
    return Database([r, s, t])


def small_query():
    return (
        BaseRelation("R")
        .select(AttrConst("A", "=", 1))
        .join(BaseRelation("S"), "A", "B")
        .join(BaseRelation("T"), "C", "D")
    )


# --------------------------------------------------------------------------- #
# MetricsRegistry
# --------------------------------------------------------------------------- #


class TestMetricsRegistry:
    def test_counter_identity_and_labels(self):
        registry = get_registry()
        a = registry.counter("repro.test.events", kind="x")
        b = registry.counter("repro.test.events", kind="x")
        c = registry.counter("repro.test.events", kind="y")
        assert a is b and a is not c
        a.inc()
        a.inc(3)
        assert a.value == 4 and c.value == 0

    def test_gauge_set_and_add(self):
        gauge = get_registry().gauge("repro.test.level")
        gauge.set(2.5)
        gauge.add(-0.5)
        assert gauge.value == 2.0

    def test_type_conflict_is_an_error(self):
        registry = get_registry()
        registry.counter("repro.test.conflict")
        with pytest.raises(TypeError):
            registry.gauge("repro.test.conflict")

    def test_render_name(self):
        assert render_name("repro.x", ()) == "repro.x"
        assert render_name("repro.x", (("a", "1"), ("b", "2"))) == 'repro.x{a="1",b="2"}'

    def test_histogram_totals_and_percentiles(self):
        histogram = get_registry().histogram(
            "repro.test.latency", buckets=(0.001, 0.01, 0.1, 1.0)
        )
        for value in (0.0005, 0.002, 0.002, 0.05, 0.5):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(0.5545)
        # Percentiles resolve to bucket upper edges.
        assert histogram.percentile(0.50) == 0.01
        assert histogram.percentile(0.99) == 1.0
        snap = histogram.snapshot()
        assert snap["min"] == 0.0005 and snap["max"] == 0.5
        assert snap["buckets"][-1][0] == "+Inf"

    def test_histogram_overflow_resolves_to_observed_max(self):
        histogram = get_registry().histogram("repro.test.over", buckets=(1.0,))
        histogram.observe(40.0)
        assert histogram.percentile(0.95) == 40.0

    def test_qerror_ladder_starts_at_one(self):
        assert QERROR_BUCKETS[0] == 1.0
        assert LATENCY_BUCKETS[0] == pytest.approx(1e-6)

    def test_thread_stress_exact_totals(self):
        registry = get_registry()
        counter = registry.counter("repro.test.stress")
        histogram = registry.histogram("repro.test.stress_seconds", buckets=(0.5, 1.0))

        def worker():
            for _ in range(1_000):
                counter.inc()
                histogram.observe(0.25)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8_000
        assert histogram.count == 8_000
        assert histogram.sum == pytest.approx(2_000.0)

    def test_snapshot_document(self):
        registry = get_registry()
        registry.counter("repro.test.events", kind="x").inc(2)
        registry.gauge("repro.test.level").set(1.5)
        registry.histogram("repro.test.seconds", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["format"] == "repro-metrics" and snap["version"] == 1
        assert snap["counters"]['repro.test.events{kind="x"}'] == 2
        assert snap["gauges"]["repro.test.level"] == 1.5
        assert snap["histograms"]["repro.test.seconds"]["count"] == 1
        json.dumps(snap)  # must be JSON-serializable as-is

    def test_prometheus_text(self):
        registry = get_registry()
        registry.counter("repro.test.events", kind="x").inc(2)
        registry.histogram("repro.test.seconds", buckets=(1.0,)).observe(0.5)
        text = registry.to_prometheus_text()
        assert "# TYPE repro_test_events counter" in text
        assert 'repro_test_events{kind="x"} 2' in text
        assert "# TYPE repro_test_seconds histogram" in text
        assert 'repro_test_seconds_bucket{le="1.0"} 1' in text
        assert "repro_test_seconds_count 1" in text


# --------------------------------------------------------------------------- #
# Tracer
# --------------------------------------------------------------------------- #


class TestTracer:
    def test_nesting_and_trace_id_inheritance(self):
        tracer = get_tracer()
        tracer.enable()
        with tracer.span("request") as root:
            with tracer.span("plan") as plan:
                assert plan.parent_id == root.span_id
                assert plan.trace_id == root.trace_id
                assert tracer.current() is plan
            assert tracer.current() is root
        assert tracer.current() is None
        names = [span.name for span in tracer.finished_spans()]
        assert names == ["plan", "request"]  # children finish first

    def test_separate_roots_get_separate_trace_ids(self):
        tracer = get_tracer()
        tracer.enable()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_exception_annotates_error(self):
        tracer = get_tracer()
        tracer.enable()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (span,) = tracer.finished_spans()
        assert span.attrs["error"] == "ValueError"

    def test_asyncio_tasks_keep_isolated_span_trees(self):
        tracer = get_tracer()
        tracer.enable()

        async def request(name):
            with tracer.span("request", client=name) as root:
                await asyncio.sleep(0)
                with tracer.span("inner") as inner:
                    await asyncio.sleep(0)
                    assert inner.parent_id == root.span_id
                return root.trace_id

        async def scenario():
            return await asyncio.gather(*(request(f"c{i}") for i in range(4)))

        trace_ids = asyncio.run(scenario())
        assert len(set(trace_ids)) == 4
        spans = tracer.finished_spans()
        roots = {s.span_id: s for s in spans if s.name == "request"}
        for span in spans:
            if span.name == "inner":
                assert roots[span.parent_id].trace_id == span.trace_id

    def test_jsonl_export(self, tmp_path):
        tracer = get_tracer()
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(str(path)) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert {line["name"] for line in lines} == {"outer", "inner"}
        assert all("seconds" in line and "trace_id" in line for line in lines)

    def test_chrome_export_parses_and_tracks_by_trace(self, tmp_path):
        tracer = get_tracer()
        tracer.enable()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        path = tmp_path / "trace.json"
        assert tracer.export_chrome(str(path)) == 2
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert all(
            event["ph"] == "X" and {"ts", "dur", "name", "pid", "tid"} <= set(event)
            for event in events
        )
        # Distinct traces render on distinct tracks.
        assert len({event["tid"] for event in events}) == 2

    def test_configure_from_env(self, tmp_path, monkeypatch):
        tracer = get_tracer()
        assert configure_from_env({"REPRO_TRACE": ""}) is None
        assert configure_from_env({"REPRO_TRACE": "0"}) is None
        assert configure_from_env({"REPRO_TRACE": "false"}) is None
        assert not tracer.enabled
        target = str(tmp_path / "env_trace.json")
        assert configure_from_env({"REPRO_TRACE": target}) == target
        assert tracer.enabled
        tracer.reset()
        # Redirect the "=1" default so the registered atexit export lands
        # in tmp rather than littering the working directory.
        from repro.obs import trace as trace_module

        default = str(tmp_path / "default_trace.json")
        monkeypatch.setattr(trace_module, "DEFAULT_TRACE_PATH", default)
        assert configure_from_env({"REPRO_TRACE": "1"}) == default
        assert tracer.enabled


# --------------------------------------------------------------------------- #
# The disabled fast path
# --------------------------------------------------------------------------- #


class TestDisabledFastPath:
    def test_disabled_span_is_the_shared_singleton(self):
        tracer = get_tracer()
        assert not tracer.enabled
        span = tracer.span("anything", key="value")
        assert span is NOOP_SPAN
        assert tracer.span("other") is NOOP_SPAN  # no per-call allocation
        with span as entered:
            entered.annotate(ignored=True)
        assert tracer.finished_spans() == []

    def test_query_run_records_nothing_while_disabled(self):
        tracer = get_tracer()
        query = small_query()
        result = query.run(small_database(), "__q", collect_metrics=True)
        assert result.metrics is not None
        assert tracer.finished_spans() == []
        assert tracer.dropped == 0

    def test_disabled_span_call_is_micro_cheap(self):
        """The instrumented hot path costs one attribute check per span site.

        The bound is deliberately generous (5 µs/call amortized over 50k
        calls — two orders of magnitude above the real cost) so the test
        asserts the *mechanism* (no allocation, no clock read, no contextvar
        write) without flaking on a loaded CI machine.
        """
        tracer = get_tracer()
        assert not tracer.enabled
        calls = 50_000
        start = time.perf_counter()
        for _ in range(calls):
            with tracer.span("hot"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed / calls < 5e-6
        assert tracer.finished_spans() == []

    def test_query_run_timing_parity_disabled_vs_uninstrumented_floor(self):
        """Disabled-tracer Query.run stays within noise of its own repeat runs.

        We cannot run the *uninstrumented* code, so assert the next-best
        thing: with the tracer disabled the run-to-run spread of Query.run
        is dominated by ordinary noise, and enabling the tracer afterwards
        records spans (proving the instrumented sites are genuinely on this
        code path and were being skipped for free).
        """
        database = small_database()
        query = small_query()
        query.run(database, "__warm")  # warm caches, indexes, statistics

        tracer = get_tracer()
        assert not tracer.enabled
        disabled = min(
            _timed(lambda i=i: query.run(database, f"__d{i}")) for i in range(5)
        )
        tracer.enable()
        query.run(database, "__traced")
        assert any(
            span.name.startswith("execute-operator:") for span in tracer.finished_spans()
        )
        tracer.disable()
        disabled_again = min(
            _timed(lambda i=i: query.run(database, f"__e{i}")) for i in range(5)
        )
        # Both disabled measurements sit on the same fast path; 5x covers
        # scheduler noise while still catching an accidentally-left-on
        # tracing path (which costs far more than 5x on this tiny query).
        assert disabled_again < disabled * 5 + 1e-3


def _timed(thunk) -> float:
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


# --------------------------------------------------------------------------- #
# Slow-query log and service telemetry
# --------------------------------------------------------------------------- #


class TestSlowQueryLog:
    def test_threshold_zero_records_every_request(self):
        async def scenario():
            service = QueryService(slow_query_seconds=0.0)
            service.register_engine("database", small_database())
            session = service.session("database")
            await session.execute(small_query())
            await session.execute(small_query())
            return service

        service = asyncio.run(scenario())
        assert len(service.slow_queries) == 2
        record = service.slow_queries[0]
        assert record.engine == "database"
        assert record.seconds > 0
        assert record.cached is False and service.slow_queries[1].cached is True
        assert record.worst_qerror is None or record.worst_qerror >= 1.0
        assert get_registry().counter("repro.service.slow_queries").value == 2

    def test_high_threshold_records_nothing(self):
        async def scenario():
            service = QueryService(slow_query_seconds=60.0)
            service.register_engine("database", small_database())
            await service.session("database").execute(small_query())
            return service

        service = asyncio.run(scenario())
        assert len(service.slow_queries) == 0

    def test_threshold_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "5")
        assert slow_query_threshold_from_env() == pytest.approx(0.005)
        assert QueryService().slow_query_seconds == pytest.approx(0.005)
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "not-a-number")
        assert slow_query_threshold_from_env() == pytest.approx(0.25)
        monkeypatch.delenv("REPRO_SLOW_QUERY_MS")
        assert QueryService().slow_query_seconds == pytest.approx(0.25)

    def test_stats_snapshot_and_prometheus_exposition(self):
        async def scenario():
            service = QueryService()
            service.register_engine("database", small_database())
            session = service.session("database")
            for _ in range(3):
                await session.execute(small_query())
            return service

        service = asyncio.run(scenario())
        snap = service.stats_snapshot()
        assert snap["requests"] == 3 and snap["cache_hits"] == 2
        assert snap["plan_caches"]["database"]["hits"] == 2
        assert snap["registry"]["counters"]['repro.service.requests{cache="hit"}'] == 2
        assert snap["latency_seconds"]["warm_p50"] is not None
        json.dumps(snap)
        text = service.metrics_text()
        assert "# TYPE repro_service_requests counter" in text
        assert "repro_service_request_seconds_bucket" in text


class TestConcurrentSessionsObservability:
    def test_interleaved_sessions_produce_coherent_traces_and_counters(self):
        """Three asyncio clients against one engine: every request gets its
        own trace, operator spans chain to their request, and the registry
        totals equal the request count."""
        get_tracer().enable()

        async def scenario():
            service = QueryService()
            service.register_engine("database", small_database())
            sessions = [service.session("database", f"c{i}") for i in range(3)]

            async def client(session):
                for _ in range(4):
                    await session.execute(small_query())

            await asyncio.gather(*(client(s) for s in sessions))
            return service

        asyncio.run(scenario())
        spans = get_tracer().finished_spans()
        requests = [s for s in spans if s.name == "request"]
        assert len(requests) == 12
        assert len({s.trace_id for s in requests}) == 12
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if not span.name.startswith("execute-operator:"):
                continue
            cursor = span
            while cursor.parent_id is not None:
                cursor = by_id[cursor.parent_id]
            assert cursor.name == "request"
            assert cursor.trace_id == span.trace_id
        counters = get_registry().snapshot()["counters"]
        hits = counters.get('repro.service.requests{cache="hit"}', 0)
        misses = counters.get('repro.service.requests{cache="miss"}', 0)
        assert hits + misses == 12
