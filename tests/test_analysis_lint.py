"""The repo-specific lint: rules over synthetic trees, baseline, CLI.

Each of the four AST rules is exercised positively (a crafted source file
triggers it) and negatively (the compliant variant is clean); the baseline
round-trips and partitions findings; the CLI exit codes match the CI
contract (2 without ``--lint``, 1 with new violations, 0 when clean or
updating the baseline); and the real tree is clean against the checked-in
baseline — the actual CI gate, run in-process.
"""

import ast
import json

import pytest

from repro.analysis.lint import (
    BASELINE_FORMAT,
    DEFAULT_BASELINE,
    REPORT_FORMAT,
    RULES,
    Violation,
    build_report,
    check_async_blocking,
    check_locked_state,
    check_picklable_plan_state,
    check_relation_version,
    check_watch_release,
    default_root,
    load_baseline,
    run_lint,
    split_by_baseline,
    write_baseline,
)
from repro.analysis.__main__ import main


def violations_of(check, source, path="repro/example.py"):
    return check(ast.parse(source), path)


class TestRelationVersion:
    def test_mutation_without_bump_flagged(self):
        source = (
            "class Relation:\n"
            "    def insert(self, row):\n"
            "        self._rows.append(row)\n"
        )
        found = violations_of(check_relation_version, source)
        assert [v.rule for v in found] == ["relation-version"]
        assert found[0].symbol == "Relation.insert"

    def test_mutation_with_bump_clean(self):
        source = (
            "class Relation:\n"
            "    def insert(self, row):\n"
            "        self._rows.append(row)\n"
            "        self._version += 1\n"
        )
        assert violations_of(check_relation_version, source) == []

    def test_storage_rebinding_counts_as_mutation(self):
        source = (
            "class Relation:\n"
            "    def replace(self, rows):\n"
            "        self._rows = list(rows)\n"
        )
        found = violations_of(check_relation_version, source)
        assert [v.symbol for v in found] == ["Relation.replace"]

    def test_init_is_exempt(self):
        source = (
            "class Relation:\n"
            "    def __init__(self):\n"
            "        self._rows = []\n"
        )
        assert violations_of(check_relation_version, source) == []


class TestLockedState:
    def test_unlocked_access_flagged(self):
        source = (
            "class PlanCache:\n"
            "    def size(self):\n"
            "        return len(self._entries)\n"
        )
        found = violations_of(check_locked_state, source)
        assert [v.symbol for v in found] == ["PlanCache.size"]
        assert "_entries" in found[0].message

    def test_locked_access_clean(self):
        source = (
            "class PlanCache:\n"
            "    def size(self):\n"
            "        with self._lock:\n"
            "            return len(self._entries)\n"
        )
        assert violations_of(check_locked_state, source) == []

    def test_other_classes_ignored(self):
        source = (
            "class Unrelated:\n"
            "    def size(self):\n"
            "        return len(self._entries)\n"
        )
        assert violations_of(check_locked_state, source) == []

    def test_nested_callback_loses_the_lock(self):
        # A closure registered under the lock runs later, without it.
        source = (
            "class StatisticsCatalog:\n"
            "    def arm(self):\n"
            "        with self._lock:\n"
            "            def hook():\n"
            "                self._entries.clear()\n"
            "            return hook\n"
        )
        found = violations_of(check_locked_state, source)
        assert [v.symbol for v in found] == ["StatisticsCatalog.arm"]


class TestAsyncBlocking:
    SERVICE_PATH = "repro/service/worker.py"

    def test_blocking_call_in_coroutine_flagged(self):
        source = (
            "import time\n"
            "async def tick():\n"
            "    time.sleep(1)\n"
        )
        found = violations_of(check_async_blocking, source, self.SERVICE_PATH)
        assert [v.rule for v in found] == ["async-blocking"]
        assert "time.sleep" in found[0].message

    def test_open_and_path_io_flagged(self):
        source = (
            "async def load(path):\n"
            "    with open(path) as handle:\n"
            "        return handle\n"
            "async def read(path):\n"
            "    return path.read_text()\n"
        )
        found = violations_of(check_async_blocking, source, self.SERVICE_PATH)
        assert sorted(v.symbol for v in found) == ["load", "read"]

    def test_sync_function_not_checked(self):
        source = "import time\ndef tick():\n    time.sleep(1)\n"
        assert violations_of(check_async_blocking, source, self.SERVICE_PATH) == []

    def test_only_service_paths_checked(self):
        source = "import time\nasync def tick():\n    time.sleep(1)\n"
        assert violations_of(check_async_blocking, source, "repro/core/x.py") == []


class TestWatchRelease:
    def test_watch_without_unwatch_flagged(self):
        source = "def arm(relation, hook):\n    relation.watch(hook)\n"
        found = violations_of(check_watch_release, source)
        assert [v.rule for v in found] == ["watch-release"]
        assert found[0].symbol == "<module>"

    def test_watch_with_unwatch_clean(self):
        source = (
            "def arm(relation, hook):\n"
            "    relation.watch(hook)\n"
            "def disarm(relation, hook):\n"
            "    relation.unwatch(hook)\n"
        )
        assert violations_of(check_watch_release, source) == []

    def test_relation_module_exempt(self):
        source = "def arm(relation, hook):\n    relation.watch(hook)\n"
        assert (
            check_watch_release(ast.parse(source), "repro/relational/relation.py") == []
        )


class TestPicklablePlanState:
    def test_lambda_on_operator_flagged(self):
        source = (
            "class Filter(PhysicalOperator):\n"
            "    def __init__(self, predicate):\n"
            "        self.test = lambda row: predicate(row)\n"
        )
        found = violations_of(check_picklable_plan_state, source)
        assert [v.rule for v in found] == ["picklable-plan"]
        assert found[0].symbol == "Filter.__init__"
        assert "lambda" in found[0].message

    def test_open_handle_on_predicate_flagged(self):
        source = (
            "class FromFile(Predicate):\n"
            "    def __init__(self, path):\n"
            "        self.handle = open(path)\n"
        )
        found = violations_of(check_picklable_plan_state, source)
        assert [v.symbol for v in found] == ["FromFile.__init__"]
        assert "open file handle" in found[0].message

    def test_engine_reference_flagged(self):
        source = (
            "class Scan(PhysicalOperator):\n"
            "    def __init__(self, engine, name):\n"
            "        self.engine = engine\n"
            "        self.name = name\n"
        )
        found = violations_of(check_picklable_plan_state, source)
        assert [v.symbol for v in found] == ["Scan.__init__"]
        assert "engine" in found[0].message

    def test_transitive_subclass_checked(self):
        source = (
            "class Join(PhysicalOperator):\n"
            "    pass\n"
            "class HashJoin(Join):\n"
            "    def __init__(self, probe):\n"
            "        self.probe = lambda row: row\n"
        )
        found = violations_of(check_picklable_plan_state, source)
        assert [v.symbol for v in found] == ["HashJoin.__init__"]

    def test_plain_state_clean(self):
        source = (
            "class Scan(PhysicalOperator):\n"
            "    def __init__(self, name, rows):\n"
            "        self.name = name\n"
            "        self.estimated_rows = rows\n"
        )
        assert violations_of(check_picklable_plan_state, source) == []

    def test_unrelated_classes_ignored(self):
        source = (
            "class Service:\n"
            "    def __init__(self, engine):\n"
            "        self.engine = engine\n"
            "        self.hook = lambda: None\n"
        )
        assert violations_of(check_picklable_plan_state, source) == []


# --------------------------------------------------------------------------- #
# run_lint over a synthetic tree, baseline workflow, report format
# --------------------------------------------------------------------------- #


def synthetic_package(tmp_path):
    """A package with one violation per rule; returns its root directory."""
    root = tmp_path / "pkg"
    (root / "service").mkdir(parents=True)
    (root / "__init__.py").write_text("")
    (root / "service" / "__init__.py").write_text("")
    (root / "storage.py").write_text(
        "class Relation:\n"
        "    def insert(self, row):\n"
        "        self._rows.append(row)\n"
        "\n"
        "class PlanCache:\n"
        "    def size(self):\n"
        "        return len(self._entries)\n"
    )
    (root / "service" / "loop.py").write_text(
        "import time\n"
        "async def tick():\n"
        "    time.sleep(1)\n"
    )
    (root / "hooks.py").write_text(
        "def arm(relation, hook):\n"
        "    relation.watch(hook)\n"
    )
    (root / "physical.py").write_text(
        "class Filter(PhysicalOperator):\n"
        "    def __init__(self, predicate):\n"
        "        self.test = lambda row: predicate(row)\n"
    )
    return root


class TestRunLintAndBaseline:
    def test_all_rules_fire_over_synthetic_tree(self, tmp_path):
        found = run_lint(synthetic_package(tmp_path))
        assert sorted({v.rule for v in found}) == [
            "async-blocking",
            "locked-state",
            "picklable-plan",
            "relation-version",
            "watch-release",
        ]
        # Paths are relative to the package's parent, posix-style.
        assert all(v.path.startswith("pkg/") for v in found)

    def test_baseline_roundtrip_and_partition(self, tmp_path):
        found = run_lint(synthetic_package(tmp_path))
        baseline_path = tmp_path / "baseline.json"
        write_baseline(found[:2], baseline_path)
        payload = json.loads(baseline_path.read_text())
        assert payload["format"] == BASELINE_FORMAT
        baseline = load_baseline(baseline_path)
        new, known = split_by_baseline(found, baseline)
        assert len(known) == 2 and len(new) == len(found) - 2

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_baseline_key_ignores_line_numbers(self):
        a = Violation("r", "p.py", 3, "f", "m")
        b = Violation("r", "p.py", 99, "f", "other message")
        assert a.key() == b.key()

    def test_report_format(self, tmp_path):
        found = run_lint(synthetic_package(tmp_path))
        report = build_report(found, {found[0].key()})
        assert report["format"] == REPORT_FORMAT
        assert report["total"] == len(found)
        assert len(report["new"]) + len(report["baselined"]) == len(found)
        assert report["rules"] == sorted(rule.__name__ for rule in RULES)


class TestCommandLine:
    def test_no_lint_flag_exits_2(self, capsys):
        assert main([]) == 2

    def test_new_violations_exit_1(self, tmp_path, capsys):
        root = synthetic_package(tmp_path)
        code = main(["--lint", "--root", str(root), "--baseline", str(tmp_path / "b.json")])
        assert code == 1
        assert "NEW:" in capsys.readouterr().out

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        root = synthetic_package(tmp_path)
        baseline = tmp_path / "b.json"
        assert main(["--lint", "--root", str(root), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert main(["--lint", "--root", str(root), "--baseline", str(baseline)]) == 0
        assert "0 new" in capsys.readouterr().out

    def test_report_artifact_written(self, tmp_path, capsys):
        root = synthetic_package(tmp_path)
        report = tmp_path / "LINT_report.json"
        main(["--lint", "--root", str(root), "--baseline", str(tmp_path / "b.json"),
              "--report", str(report)])
        assert json.loads(report.read_text())["format"] == REPORT_FORMAT


class TestRepositoryIsClean:
    def test_repo_tree_has_no_new_violations(self):
        # The actual CI gate, in-process: the installed package linted
        # against the checked-in baseline must produce nothing new.
        new, _known = split_by_baseline(
            run_lint(default_root()), load_baseline(DEFAULT_BASELINE)
        )
        assert new == [], "\n".join(v.render() for v in new)

    def test_checked_in_baseline_is_current(self):
        # Every baselined entry still corresponds to a real finding —
        # stale entries mean the fix landed and the baseline should shrink.
        keys = {v.key() for v in run_lint(default_root())}
        assert load_baseline(DEFAULT_BASELINE) <= keys
