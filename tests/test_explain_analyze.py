"""EXPLAIN ANALYZE and the REPRO_TRACE acceptance path.

The PR's acceptance criteria, as tests:

* ``Session.explain_analyze()`` on a *cached* four-way join renders every
  physical operator with estimated vs actual rows, q-error, per-child input
  cardinalities and self vs cumulative time, plus the cache provenance
  header — and tags feedback-fed estimates ``est←feedback`` once the
  observation store has consumed enough executions,
* ``Query.explain_analyze(engine)`` produces the same per-operator report
  without a service,
* a run with ``REPRO_TRACE`` set produces a Chrome trace-event file whose
  span tree nests ``execute-operator`` spans (transitively) under the
  ``request`` span, with timestamp containment on the request's track —
  verified both in-process and through a real subprocess whose export is
  written by the atexit hook,
* ``OperatorMetrics.describe`` / ``ExecutionMetrics.summary`` expose the
  self-vs-cumulative contract: per-operator ``seconds`` are non-overlapping
  self times, so their sum is the true cumulative total.
"""

import asyncio
import json
import os
import subprocess
import sys

import pytest

from repro.core.algebra import BaseRelation
from repro.obs import get_registry, get_tracer
from repro.relational import Database, Relation, RelationSchema
from repro.relational.predicates import AttrConst
from repro.service import QueryService


@pytest.fixture(autouse=True)
def clean_obs():
    get_tracer().reset()
    get_registry().reset()
    yield
    get_tracer().reset()
    get_registry().reset()


def four_way_database() -> Database:
    r = Relation(RelationSchema("R", ("A", "RV")), [(i % 10, i) for i in range(60)])
    s = Relation(RelationSchema("S", ("B", "C")), [(i % 10, i % 12) for i in range(60)])
    t = Relation(RelationSchema("T", ("D", "TV")), [(i % 12, i % 9) for i in range(60)])
    u = Relation(RelationSchema("U", ("E", "UV")), [(i % 9, i) for i in range(60)])
    return Database([r, s, t, u])


def four_way_query():
    return (
        BaseRelation("R")
        .select(AttrConst("A", "=", 1))
        .join(BaseRelation("S"), "A", "B")
        .join(BaseRelation("T"), "C", "D")
        .join(BaseRelation("U"), "TV", "E")
    )


class TestSessionExplainAnalyze:
    def test_cached_four_way_join_report(self):
        """The acceptance criterion: a cached 4-way join, fully annotated."""

        async def scenario():
            service = QueryService()
            service.register_engine("database", four_way_database())
            session = service.session("database")
            query = four_way_query()
            for _ in range(3):  # populate the cache and the observation store
                await session.execute(query)
            return await session.explain_analyze(query)

        report = asyncio.run(scenario())
        assert "EXPLAIN ANALYZE (database)" in report
        assert "plan source: plan cache (hit)" in report
        assert "fingerprint:" in report
        # Every operator line carries actuals, q-error and self/cum times.
        assert "actual" in report
        assert "q-err" in report
        assert "self" in report and "cum" in report
        # Join fan-in is explicit per child.
        assert " × " in report
        # After three executions the estimates come from recorded feedback.
        assert "est←feedback" in report
        # All four base relations appear in the plan.
        for relation in ("R", "S", "T", "U"):
            assert f"({relation}" in report or f"{relation}," in report

    def test_miss_and_replan_provenance(self):
        async def scenario():
            service = QueryService()
            service.register_engine("database", four_way_database())
            session = service.session("database")
            return await session.explain_analyze(four_way_query())

        report = asyncio.run(scenario())
        assert "planned this request (miss)" in report

    def test_trace_id_in_header_when_tracing(self):
        get_tracer().enable()

        async def scenario():
            service = QueryService()
            service.register_engine("database", four_way_database())
            session = service.session("database")
            return await session.explain_analyze(four_way_query())

        report = asyncio.run(scenario())
        assert "trace: t" in report


class TestQueryExplainAnalyze:
    def test_direct_report_without_a_service(self):
        database = four_way_database()
        query = four_way_query()
        report = query.explain_analyze(database)
        assert "EXPLAIN ANALYZE (database)" in report
        assert "actual" in report and "q-err" in report
        assert "self" in report and "cum" in report

    def test_feedback_provenance_after_repeated_runs(self):
        database = four_way_database()
        query = four_way_query()
        query.run(database, "__r1", collect_metrics=True)
        query.run(database, "__r2", collect_metrics=True)
        report = query.explain_analyze(database)
        assert "est←feedback" in report


class TestSelfVsCumulativeTime:
    def test_describe_and_summary_expose_the_contract(self):
        database = four_way_database()
        result = four_way_query().run(database, "__m", collect_metrics=True)
        metrics = result.metrics
        join_records = [r for r in metrics.records if r.rows_in]
        assert join_records, "a 4-way join must execute join operators"
        for record in join_records:
            line = record.describe()
            assert "in " in line and " × ".join(
                f"{rows:,}" for rows in record.rows_in
            ) in line
            assert "ms self" in line
        summary = metrics.summary()
        assert "cumulative" in summary and "self" in summary
        # The physical tree agrees: root-cumulative == sum of self times.
        assert result.physical.cumulative_seconds() == pytest.approx(
            metrics.total_seconds
        )

    def test_total_seconds_is_sum_of_non_overlapping_self_times(self):
        database = four_way_database()
        result = four_way_query().run(database, "__t", collect_metrics=True)
        metrics = result.metrics
        assert metrics.total_seconds == pytest.approx(
            sum(record.seconds for record in metrics.records)
        )


class TestChromeTraceNesting:
    def test_request_span_contains_operator_spans(self, tmp_path):
        get_tracer().enable()

        async def scenario():
            service = QueryService()
            service.register_engine("database", four_way_database())
            session = service.session("database")
            for _ in range(2):
                await session.execute(four_way_query())

        asyncio.run(scenario())
        path = tmp_path / "trace.json"
        assert get_tracer().export_chrome(str(path)) > 0
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        by_id = {event["args"]["span_id"]: event for event in events}
        requests = [e for e in events if e["name"] == "request"]
        operators = [e for e in events if e["name"].startswith("execute-operator:")]
        assert requests and operators
        for operator in operators:
            cursor = operator
            while cursor["args"]["parent_id"] is not None:
                cursor = by_id[cursor["args"]["parent_id"]]
            assert cursor["name"] == "request"
            # Same synthetic track, and timestamp containment within it.
            assert operator["tid"] == cursor["tid"]
            assert operator["ts"] >= cursor["ts"] - 1e-3
            assert operator["ts"] + operator["dur"] <= cursor["ts"] + cursor["dur"] + 1e-3

    def test_repro_trace_env_subprocess_end_to_end(self, tmp_path):
        """REPRO_TRACE=<path> on a real process: the atexit hook writes a
        parseable Chrome trace with nested operator spans."""
        target = tmp_path / "subproc_trace.json"
        script = (
            "import asyncio\n"
            "from repro.core.algebra import BaseRelation\n"
            "from repro.relational import Database, Relation, RelationSchema\n"
            "from repro.relational.predicates import AttrConst\n"
            "from repro.service import QueryService\n"
            "r = Relation(RelationSchema('R', ('A', 'RV')), [(i % 5, i) for i in range(30)])\n"
            "s = Relation(RelationSchema('S', ('B', 'C')), [(i % 5, i % 7) for i in range(30)])\n"
            "q = BaseRelation('R').select(AttrConst('A', '=', 1)).join(BaseRelation('S'), 'A', 'B')\n"
            "async def main():\n"
            "    service = QueryService()\n"
            "    service.register_engine('database', Database([r, s]))\n"
            "    session = service.session('database')\n"
            "    await session.execute(q)\n"
            "    await session.execute(q)\n"
            "asyncio.run(main())\n"
        )
        env = dict(os.environ, REPRO_TRACE=str(target))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH")) if p
        )
        completed = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True
        )
        assert completed.returncode == 0, completed.stderr
        document = json.loads(target.read_text())
        names = {event["name"] for event in document["traceEvents"]}
        assert "request" in names
        assert any(name.startswith("execute-operator:") for name in names)
