"""Sharded execution: oracle, partition invariant, boundary, crash fallback.

Three correctness pillars of the sharded backend:

1. **Possible-worlds oracle** — planned and unplanned sharded execution must
   produce the same result-world distribution (and exact per-tuple
   confidences) as brute-force enumeration, on random deep query trees.
2. **Partition invariant** — no world-set component's covered tuples are
   ever split across shards (property-tested over chased, correlated
   inputs), every template row lands on exactly one shard, and every
   shipped component on exactly one shard.
3. **Fallback** — when the worker pool dies mid-gather, the affected shards
   re-execute in-process, the fallback is counted, and the result is
   identical to the row backend's.
"""

from __future__ import annotations

from collections import Counter
from concurrent.futures.process import BrokenProcessPool

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.baselines import naive
from repro.core import UWSDT, WSD
from repro.core.algebra import BaseRelation
from repro.core.chase import FunctionalDependency, chase_uwsdt
from repro.core.confidence import uwsdt_possible_with_confidence
from repro.core.exec import (
    SHARDABLE_OPS,
    Exchange,
    Gather,
    ShardedBackend,
    insert_shard_boundaries,
    partition_uwsdt_components,
    reset_shard_pool,
)
from repro.core.exec import shard as shard_module
from repro.relational import (
    Database,
    InconsistentWorldSetError,
    QueryError,
    Relation,
    RelationSchema,
    eq,
    gt,
)
from repro.worlds import OrSet, OrSetRelation

from _fixtures import assert_same_result_distribution, budgeted_orset_relations
from test_planner_oracle import ORACLE_SCHEMAS, deep_query_trees

SCANNED = tuple(name for name, _ in ORACLE_SCHEMAS)


@pytest.fixture(scope="module", autouse=True)
def _tear_down_pool():
    yield
    reset_shard_pool()


def run_sharded(uwsdt, query, optimize, workers=2):
    copy = uwsdt.copy()
    query.run(copy, "P", optimize=optimize, backend="sharded", workers=workers)
    copy.validate()
    return copy


# --------------------------------------------------------------------------- #
# 1. The possible-worlds oracle under backend="sharded"
# --------------------------------------------------------------------------- #


class TestShardedPossibleWorldsOracle:
    @given(
        budgeted_orset_relations(ORACLE_SCHEMAS, max_rows=2, uncertain_budget=4),
        deep_query_trees(min_depth=3, max_depth=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_sharded_plans_match_brute_force(self, relations, query):
        base_wsd = WSD.from_orset_relations(relations)
        reference = naive.evaluate_query(base_wsd.rep(), query, "P")
        uwsdt = UWSDT.from_orset_relations(relations)

        planned = run_sharded(uwsdt, query, optimize=True)
        assert_same_result_distribution(planned.rep(), reference, "P")

        unplanned = run_sharded(uwsdt, query, optimize=False)
        assert_same_result_distribution(unplanned.rep(), reference, "P")

    @given(
        budgeted_orset_relations(ORACLE_SCHEMAS, max_rows=2, uncertain_budget=3),
        deep_query_trees(min_depth=2, max_depth=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_sharded_confidences_match_world_frequency(self, relations, query):
        base_wsd = WSD.from_orset_relations(relations)
        reference = naive.evaluate_query(base_wsd.rep(), query, "P")
        expected_possible = naive.possible_tuples(reference, "P")

        sharded = run_sharded(
            UWSDT.from_orset_relations(relations), query, optimize=True
        )
        ranked = uwsdt_possible_with_confidence(sharded, "P")
        assert {row for row, _ in ranked} == expected_possible
        for row, conf in ranked:
            assert conf == pytest.approx(
                reference.tuple_confidence("P", row), abs=1e-6
            )

    def test_sharded_matches_row_backend_on_database(self):
        """The certain engine: sharded and row execution agree row-for-row."""
        database = Database(
            [
                Relation(
                    RelationSchema("R", ("A0", "A1")),
                    [(i, i % 3) for i in range(20)],
                )
            ]
        )
        query = BaseRelation("R").select(gt("A0", 4)).project(["A1"])
        expected = query.run(database, "expected", backend="row")
        sharded = query.run(database, "result", backend="sharded", workers=2)
        assert sharded.row_set() == expected.row_set()


# --------------------------------------------------------------------------- #
# 2. The component-partition invariant
# --------------------------------------------------------------------------- #


class TestComponentPartitionInvariant:
    @given(
        budgeted_orset_relations(ORACLE_SCHEMAS, max_rows=3, uncertain_budget=5),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_component_split_across_shards(self, relations, shards):
        """Chased (correlated) inputs: each component group stays whole."""
        uwsdt = UWSDT.from_orset_relations(relations)
        try:
            uwsdt = chase_uwsdt(uwsdt, [FunctionalDependency("R", ["A0"], "A1")])
        except InconsistentWorldSetError:
            assume(False)
        uwsdt.validate()

        specs, shipped = partition_uwsdt_components(uwsdt, SCANNED, shards)

        # Every template row of every scanned relation lands on exactly one
        # shard, under its original tuple id.
        for relation in SCANNED:
            parent_rows = Counter(tid for tid, _ in uwsdt.template_rows(relation))
            shard_rows = Counter(
                tid for spec in specs for tid, _ in spec.rows.get(relation, [])
            )
            assert shard_rows == parent_rows

        # Every shipped component is assigned to exactly one shard, and that
        # shard holds *all* the scanned tuples the component covers.
        assert sorted(cid for spec in specs for cid in spec.cids) == sorted(shipped)
        for spec in specs:
            rows_here = {
                (relation, tid)
                for relation, rows in spec.rows.items()
                for tid, _ in rows
            }
            for cid in spec.cids:
                covered = {
                    (relation, tid)
                    for relation, tid in uwsdt.components[cid].tuples_covered()
                    if relation in SCANNED
                }
                assert covered <= rows_here, (
                    f"component {cid} split: covers {covered}, shard has {rows_here}"
                )

        # Components covering no scanned tuple are never shipped.
        for cid, component in uwsdt.components.items():
            if cid in set(shipped):
                continue
            assert not any(
                relation in SCANNED
                for relation, _ in component.tuples_covered()
            )


# --------------------------------------------------------------------------- #
# 3. Boundary insertion and backend guard rails
# --------------------------------------------------------------------------- #


class TestShardBoundaries:
    def _engine(self):
        relation = OrSetRelation.from_dicts(
            "R",
            ["A0", "A1"],
            [{"A0": i, "A1": OrSet([0, 1])} for i in range(8)],
        )
        return UWSDT.from_orset_relation(relation)

    def test_select_chain_wrapped_join_stays_above(self):
        engine = self._engine()
        left = BaseRelation("R").select(gt("A0", 1))
        right = BaseRelation("R").select(gt("A0", 3)).rename("A0", "B0").rename("A1", "B1")
        query = left.join(right, "A1", "B1")
        physical = query.physical_plan(engine, backend="sharded", workers=2)
        ops = [node.op_name for node in physical.operators()]
        assert "Gather" in ops and "Exchange" in ops
        # The join executes above every Gather: no Gather has a join above
        # it inside an Exchange, and the root region contains the join.
        for node in physical.operators():
            if isinstance(node, Exchange):
                for inner in node.children[0].walk():
                    assert inner.op_name in SHARDABLE_OPS

    def test_bare_scan_not_wrapped(self):
        engine = self._engine()
        physical = BaseRelation("R").physical_plan(
            engine, backend="sharded", workers=2
        )
        assert not any(isinstance(node, Gather) for node in physical.operators())

    def test_non_sharded_backend_untouched(self):
        engine = self._engine()
        physical = BaseRelation("R").select(gt("A0", 1)).physical_plan(engine)
        root = physical.root
        from repro.core.exec.backends import backend_for

        assert insert_shard_boundaries(root, backend_for(engine)) is root

    def test_wsd_engine_rejected(self):
        relation = OrSetRelation.from_dicts("R", ["A0"], [{"A0": OrSet([0, 1])}])
        with pytest.raises(QueryError):
            ShardedBackend(WSD.from_orset_relation(relation), workers=2)

    def test_zero_workers_rejected(self):
        with pytest.raises(QueryError):
            ShardedBackend(self._engine(), workers=0)


# --------------------------------------------------------------------------- #
# 4. Worker-crash fallback
# --------------------------------------------------------------------------- #


class _DoomedFuture:
    def result(self):
        raise BrokenProcessPool("worker died")


class _DoomedPool:
    def submit(self, fn, payload):
        return _DoomedFuture()


class TestWorkerCrashFallback:
    def _engine(self):
        relation = OrSetRelation.from_dicts(
            "R",
            ["A0", "A1"],
            [{"A0": i, "A1": OrSet([0, 1]) if i % 3 == 0 else i} for i in range(12)],
        )
        return UWSDT.from_orset_relation(relation)

    def test_broken_pool_falls_back_in_process(self, monkeypatch):
        query = BaseRelation("R").select(gt("A0", 2)).project(["A1"])
        engine = self._engine()
        expected = engine.copy()
        query.run(expected, "P", backend="row")
        expected_rows = sorted(
            (values for _, values in expected.template_rows("P")), key=repr
        )

        monkeypatch.setattr(shard_module, "_shard_pool", lambda workers: _DoomedPool())
        sharded = engine.copy()
        backend = ShardedBackend(sharded, workers=2)
        query.run(sharded, "P", backend=backend)
        sharded.validate()

        assert backend.fallbacks >= 1
        assert (
            sorted((values for _, values in sharded.template_rows("P")), key=repr)
            == expected_rows
        )

    def test_healthy_pool_has_no_fallbacks(self):
        query = BaseRelation("R").select(gt("A0", 2)).project(["A1"])
        engine = self._engine()
        backend = ShardedBackend(engine, workers=2)
        query.run(engine, "P", backend=backend)
        engine.validate()
        assert backend.fallbacks == 0


# --------------------------------------------------------------------------- #
# 5. Metrics attribution and EXPLAIN ANALYZE annotations
# --------------------------------------------------------------------------- #


class TestShardMetrics:
    def test_worker_metrics_attributed_and_skew_rendered(self):
        relation = OrSetRelation.from_dicts(
            "R",
            ["A0", "A1"],
            [{"A0": i, "A1": OrSet([0, 1]) if i % 4 == 0 else 1} for i in range(16)],
        )
        engine = UWSDT.from_orset_relation(relation)
        query = BaseRelation("R").select(eq("A1", 1)).project(["A0"])
        report = query.explain_analyze(engine, backend="sharded", workers=2)
        assert "Exchange" in report and "Gather" in report
        assert "shard rows" in report
        assert "max" in report and "min" in report

    def test_subtree_metrics_not_dropped(self):
        relation = OrSetRelation.from_dicts(
            "R",
            ["A0", "A1"],
            [{"A0": i, "A1": OrSet([0, 1]) if i % 4 == 0 else 1} for i in range(16)],
        )
        engine = UWSDT.from_orset_relation(relation)
        query = BaseRelation("R").select(eq("A1", 1)).project(["A0"])
        result = query.run(
            engine, "P", optimize=False, backend="sharded", workers=2,
            collect_metrics=True,
        )
        by_op = {record.operator for record in result.metrics.records}
        # The sharded subtree's own operators report merged worker metrics
        # alongside the boundary pair — nothing is dropped.
        assert {"Project", "Exchange", "Gather"} <= by_op
        leaf = next(
            r for r in result.metrics.records if r.operator in ("Scan", "IndexScan")
        )
        assert leaf.rows_out == 16  # summed across shards
