"""The asyncio query service: sessions, cache hits, replans, concurrency.

End-to-end coverage of :mod:`repro.service`:

* a repeated query is served from the plan cache — zero sampling calls,
  zero planner invocations, identical results,
* mutations invalidate exactly the affected fingerprints,
* the replan trigger evicts a hot mis-estimated query, and the next request
  plans the genuinely cheaper join order from the recorded observations,
* snapshot reads detect concurrent writers via version keys,
* the shared statistics catalog and index pool survive overlapping clients
  (thread stress for the locking added in this PR),
* the concurrent-traffic benchmark reports a healthy hit rate and a warm
  speedup of at least the 3× acceptance bar.
"""

import asyncio
import threading

from repro.core.algebra import BaseRelation
from repro.core.exec.backends import index_pool_for
from repro.core.planner import catalog_for, plan_call_count, sampling_call_count
from repro.relational import Database, Relation, RelationSchema
from repro.relational.predicates import AttrConst
from repro.service import QueryService, run_traffic_benchmark

from test_feedback_loop import skewed_database, skewed_query


def small_database() -> Database:
    r = Relation(RelationSchema("R", ("A", "RV")), [(i % 5, i) for i in range(40)])
    s = Relation(RelationSchema("S", ("B", "C")), [(i % 5, i % 7) for i in range(40)])
    t = Relation(RelationSchema("T", ("D", "TV")), [(i % 7, i) for i in range(40)])
    return Database([r, s, t])


class TestServiceRequests:
    def test_repeated_query_is_served_from_cache(self):
        async def scenario():
            service = QueryService()
            service.register_engine("database", small_database())
            session = service.session("database", "client")
            query = BaseRelation("R").join(BaseRelation("S"), "A", "B")

            first = await session.execute(query)
            plans_before = plan_call_count()
            samples_before = sampling_call_count()
            second = await session.execute(query)

            assert not first.cached and second.cached
            assert plan_call_count() == plans_before
            assert sampling_call_count() == samples_before
            assert sorted(first.value) == sorted(second.value)
            assert service.plan_cache("database").hits == 1
            assert session.hit_rate == 0.5
            assert service.stats.hit_rate == 0.5

        asyncio.run(scenario())

    def test_sessions_share_the_plan_cache(self):
        async def scenario():
            service = QueryService()
            service.register_engine("database", small_database())
            query = BaseRelation("T").select(AttrConst("D", "=", 3))
            alice = service.session("database", "alice")
            bob = service.session("database", "bob")
            await alice.execute(query)
            outcome = await bob.execute(query)
            assert outcome.cached
            assert bob.cache_hits == 1

        asyncio.run(scenario())

    def test_mutation_invalidates_only_touched_fingerprints(self):
        async def scenario():
            service = QueryService()
            service.register_engine("database", small_database())
            session = service.session("database")
            joined = BaseRelation("R").join(BaseRelation("S"), "A", "B")
            lone = BaseRelation("T").select(AttrConst("D", "=", 3))
            await session.execute(joined)
            await session.execute(lone)

            await session.mutate(lambda engine: engine.relation("R").insert((4, 999)))

            after_joined = await session.execute(joined)
            after_lone = await session.execute(lone)
            assert not after_joined.cached  # touched R → invalidated
            assert after_lone.cached  # untouched → still warm
            # The refreshed plan reflects the mutation.
            oracle = joined.run(service.engines["database"], optimize=False)
            assert sorted(after_joined.value) == sorted(oracle)

        asyncio.run(scenario())

    def test_snapshot_detects_concurrent_writers(self):
        async def scenario():
            service = QueryService()
            service.register_engine("database", small_database())
            session = service.session("database")
            snapshot = session.snapshot(["R", "T"])
            assert snapshot.valid()
            await session.mutate(lambda engine: engine.relation("R").insert((4, 997)))
            assert snapshot.changed() == ["R"]
            assert not snapshot.valid()

        asyncio.run(scenario())


class TestReplanTrigger:
    def test_hot_misestimated_query_replans_through_the_service(self):
        async def scenario():
            database = skewed_database()
            # Configure the engine's catalog before registration: fixed
            # constants mis-estimate the correlated join, which is the whole
            # point of the scenario.
            catalog_for(database, sample_size=0)
            service = QueryService()
            service.register_engine("database", database)
            session = service.session("database")
            query = skewed_query()

            first = await session.execute(query)
            second = await session.execute(query)
            # The second execution crosses the observation threshold with a
            # q-error far above the bound: the entry is evicted for replan.
            assert second.cached and second.replanned
            assert service.stats.replans == 1

            third = await session.execute(query)
            assert not third.cached
            corrected = query.plan(database)
            assert "(R ⋈ S)" not in corrected.join_order

            assert sorted(first.value) == sorted(third.value)
            oracle = query.run(database, optimize=False)
            assert sorted(third.value) == sorted(oracle)

            # The corrected plan's estimates now track reality → no further
            # replans; the entry stays cached.
            fourth = await session.execute(query)
            fifth = await session.execute(query)
            assert fourth.cached and fifth.cached
            assert service.stats.replans == 1

        asyncio.run(scenario())


class TestSharedStateUnderConcurrency:
    def test_catalog_and_index_pool_survive_overlapping_clients(self):
        database = small_database()
        catalog = catalog_for(database)
        pool = index_pool_for(database)
        relation = database.relation("R")
        errors = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    catalog.entry("R")
                    catalog.statistics(("R", "S"))
                    pool.hash_index(relation, ("A",))
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        def writer():
            try:
                for i in range(200):
                    relation.insert((5 + (i % 7), 1000 + i))
                    if i % 5 == 0:
                        pool.invalidate(relation)
                    if i % 11 == 0:
                        catalog.invalidate("R")
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        writers = [threading.Thread(target=writer) for _ in range(2)]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()

        assert errors == []
        # The catalog converges on the final state of the relation.
        entry, _ = catalog.entry("R")
        assert entry.row_count == len(relation.rows)
        index = pool.hash_index(relation, ("A",))
        indexed = sum(len(index.lookup(key)) for key in range(12))
        assert indexed == len(relation.rows)

    def test_interleaved_async_clients_agree_on_results(self):
        async def scenario():
            service = QueryService()
            service.register_engine("database", small_database())
            query = BaseRelation("R").join(BaseRelation("S"), "A", "B")
            sessions = [service.session("database", f"c{i}") for i in range(4)]

            async def drive(session):
                return [await session.execute(query) for _ in range(5)]

            outcomes = await asyncio.gather(*(drive(s) for s in sessions))
            flat = [outcome for batch in outcomes for outcome in batch]
            baseline = sorted(flat[0].value)
            assert all(sorted(outcome.value) == baseline for outcome in flat)
            # Exactly one cold plan across every interleaving.
            assert sum(1 for outcome in flat if not outcome.cached) == 1

        asyncio.run(scenario())


class TestTrafficBenchmark:
    def test_smoke_meets_the_acceptance_bar(self):
        report = run_traffic_benchmark(rows=600, clients=3, requests_per_client=12)
        assert report["requests"] == 36
        assert report["cache"]["hit_rate"] >= 0.5
        latency = report["latency_seconds"]
        assert latency["warm_p50"] is not None and latency["warm_p99"] is not None
        assert latency["warm_p50"] <= latency["warm_p99"]
        # The acceptance bar: repeated traffic at least 3× faster than cold.
        assert report["warm_speedup"] >= 3.0
