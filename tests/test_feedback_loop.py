"""The closed feedback loop: observed cardinalities steer the planner.

PR 5 recorded estimated-vs-actual cardinalities into the statistics catalog
but the planner never read them back.  These tests pin the full loop:

* ``record_actual`` EWMA-blends *both* sides (actuals and estimates) instead
  of overwriting the stored estimate with the latest guess,
* semantically keyed observations enter ``Statistics.observed`` once they
  reach :data:`OBSERVED_MIN_COUNT` and are dropped when any underlying
  relation mutates (version-key staleness),
* the join-order DP consults them: a correlated, mis-estimated join flips
  to the genuinely cheaper order after two observed executions — confirmed
  against the unoptimized oracle,
* catalog invalidation releases its relation watchers (the PR-5 leak).
"""

from repro.core.algebra import BaseRelation
from repro.core.planner import OBSERVED_MIN_COUNT, cardinality_key, catalog_for
from repro.relational import Database, Relation, RelationSchema
from repro.relational.predicates import AttrAttr, AttrConst


def skewed_database() -> Database:
    """Heavy-hitter skew the fixed-constant estimator cannot see.

    With ``sample_size=0`` the DP prices both equi-join edges at the fixed
    0.1 selectivity:

    * est ``|R ⋈ S|`` = 60·60·0.1 = 360, but the correlated heavy hitter
      (key 0 on 50 rows of each side) makes the truth 50·50 + 10 = 2510;
    * est ``|S ⋈ T|`` = 60·200·0.1 = 1200, truth 60·10 = 600 (uniform).

    So the cold plan joins R and S first — the order that is *truly* four
    times more expensive.
    """
    r = Relation(
        RelationSchema("R", ("A", "RV")),
        [(0 if i < 50 else i - 49, i) for i in range(60)],
    )
    s = Relation(
        RelationSchema("S", ("B", "C", "SV")),
        [(0 if i < 50 else i - 49, i % 20, i) for i in range(60)],
    )
    t = Relation(RelationSchema("T", ("D", "TV")), [(i % 20, i) for i in range(200)])
    return Database([r, s, t])


def skewed_query():
    return (
        BaseRelation("R")
        .join(BaseRelation("S"), "A", "B")
        .join(BaseRelation("T"), "C", "D")
    )


class TestObservedStore:
    def test_record_actual_blends_estimates_symmetrically(self):
        database = Database(
            [Relation(RelationSchema("R", ("A",)), [(1,), (2,)])]
        )
        catalog = catalog_for(database)
        catalog.record_actual("op", estimated_rows=100.0, actual_rows=10.0)
        catalog.record_actual("op", estimated_rows=50.0, actual_rows=20.0)
        ewma, estimated, count = catalog.observed_cardinalities["op"]
        assert ewma == 15.0  # 0.5·10 + 0.5·20
        # The stored estimate must be the same EWMA blend, not the latest
        # planner guess (which would make the q-error trend meaningless).
        assert estimated == 75.0  # 0.5·100 + 0.5·50
        assert count == 2

    def test_observations_require_min_count(self):
        database = skewed_database()
        catalog = catalog_for(database, sample_size=0)
        query = skewed_query()
        query.run(database, "once", collect_metrics=True)
        assert OBSERVED_MIN_COUNT > 1
        assert catalog.observed_view() == {}
        # A second execution crosses the threshold.
        query.run(database, "twice", collect_metrics=True)
        assert catalog.observed_view() != {}

    def test_observations_dropped_when_relation_mutates(self):
        database = skewed_database()
        catalog = catalog_for(database, sample_size=0)
        query = skewed_query()
        query.run(database, "one", collect_metrics=True)
        query.run(database, "two", collect_metrics=True)
        observed = catalog.observed_view()
        join_key = cardinality_key(BaseRelation("R").join(BaseRelation("S"), "A", "B"))
        assert join_key in observed
        assert "T|" in observed

        database.relation("R").insert((999, 999))
        observed = catalog.observed_view()
        # Every observation touching R is stale; the rest survives.
        assert join_key not in observed
        assert "R|" not in observed
        assert "T|" in observed

    def test_cardinality_key_is_order_independent(self):
        left = BaseRelation("R").join(BaseRelation("S"), "A", "B")
        right = BaseRelation("S").join(BaseRelation("R"), "B", "A")
        assert cardinality_key(left) == cardinality_key(right)
        # A product plus the equivalent selection shares the key too.
        fused = (
            BaseRelation("S")
            .product(BaseRelation("R"))
            .select(AttrAttr("B", "=", "A"))
        )
        assert cardinality_key(fused) == cardinality_key(left)
        other = BaseRelation("R").join(BaseRelation("S"), "A", "C")
        assert cardinality_key(other) != cardinality_key(left)


class TestReplanAfterFeedback:
    def test_misestimated_join_replans_to_cheaper_order(self):
        database = skewed_database()
        catalog = catalog_for(database, sample_size=0)
        query = skewed_query()

        cold = query.plan(database)
        assert "(R ⋈ S)" in cold.join_order  # the mis-estimated order

        query.run(database, "one", collect_metrics=True)
        query.run(database, "two", collect_metrics=True)

        warm = query.plan(database)
        assert "(R ⋈ S)" not in warm.join_order
        assert "(S ⋈ T)" in warm.join_order or "(T ⋈ S)" in warm.join_order

        # The corrected plan is an optimization, never a semantic change.
        corrected = query.run(database, "corrected", plan=warm)
        oracle = query.run(database, "oracle", optimize=False)
        assert sorted(corrected) == sorted(oracle)

    def test_feedback_is_inert_below_threshold(self):
        database = skewed_database()
        catalog_for(database, sample_size=0)
        query = skewed_query()
        cold = query.plan(database)
        query.run(database, "one", collect_metrics=True)
        still_cold = query.plan(database)
        assert still_cold.join_order == cold.join_order


class TestWatcherRelease:
    def test_invalidate_releases_relation_watchers(self):
        database = skewed_database()
        catalog = catalog_for(database)
        query = skewed_query()
        for _ in range(3):
            query.plan(database)
        # One persistent watcher per watched relation, however often planned.
        assert len(database.relation("R")._watchers) == 1
        assert len(database.relation("S")._watchers) == 1

        catalog.invalidate("R")
        assert len(database.relation("R")._watchers) == 0
        assert len(database.relation("S")._watchers) == 1

        catalog.invalidate()
        for name in ("R", "S", "T"):
            assert len(database.relation(name)._watchers) == 0

    def test_plan_invalidate_cycles_do_not_leak(self):
        database = skewed_database()
        catalog = catalog_for(database)
        query = skewed_query()
        for _ in range(5):
            query.plan(database)
            catalog.invalidate()
        for name in ("R", "S", "T"):
            assert len(database.relation(name)._watchers) == 0

    def test_watcher_fired_drop_keeps_single_watcher(self):
        database = skewed_database()
        catalog = catalog_for(database)
        query = skewed_query()
        query.plan(database)
        # A mutation fires the watcher (entry dropped) but the watcher stays
        # registered — replanning must not stack a second one.
        database.relation("R").insert((877, 877))
        query.plan(database)
        assert len(database.relation("R")._watchers) == 1


class TestObservedOverrideScope:
    def test_select_observation_feeds_estimate(self):
        database = skewed_database()
        catalog = catalog_for(database, sample_size=0)
        query = BaseRelation("R").select(AttrConst("A", "=", 0))
        query.run(database, "one", collect_metrics=True)
        query.run(database, "two", collect_metrics=True)
        observed = catalog.observed_view()
        key = cardinality_key(query)
        assert key in observed
        assert observed[key].actual_rows == 50.0
        statistics = catalog.statistics()
        assert statistics.observed_rows(key) == 50.0
