"""Static schema/type inference: golden error trees and eager set-op checks.

Covers the tentpole's analyzer contract:

* each :data:`~repro.analysis.schema.ERROR_CODES` class raises an
  :class:`~repro.analysis.schema.AnalysisError` (a ``SchemaError``) whose
  message embeds the rendered query tree with the offending node marked —
  the golden tests below pin the exact rendering for four error classes;
* incompatible ∪ / − / ∩ are rejected *at builder time* when both operand
  schemas are structurally resolvable, with both schemas in the message;
* valid queries infer the expected attribute lists and sampled types;
* unknown base relations disable checks instead of failing them.
"""

import pytest

from repro.analysis.schema import (
    ANY_TYPE,
    NUMBER,
    STRING,
    AnalysisError,
    InferredSchema,
    SchemaContext,
    analyze,
    column_types,
    inferred_attributes,
)
from repro.core.algebra import BaseRelation
from repro.core.planner import Statistics, plan
from repro.relational import Database, Relation, RelationSchema
from repro.relational.errors import SchemaError
from repro.relational.predicates import AttrAttr, AttrConst
from repro.relational.values import PLACEHOLDER


def typed_database() -> Database:
    emp = Relation(
        RelationSchema("EMP", ("EID", "NAME", "DEPT")),
        [(1, "ada", "eng"), (2, "bob", "ops")],
    )
    dept = Relation(RelationSchema("DEPT", ("DID", "HEAD")), [(10, "ada")])
    return Database([emp, dept])


@pytest.fixture
def context() -> SchemaContext:
    return SchemaContext.from_engine(typed_database())


# --------------------------------------------------------------------------- #
# Golden rendered-tree tests: one per error class
# --------------------------------------------------------------------------- #


class TestGoldenErrorTrees:
    def test_unknown_attribute_marks_the_projection(self, context):
        query = BaseRelation("EMP").select(AttrConst("EID", "=", 1)).project(("SALARY",))
        with pytest.raises(AnalysisError) as excinfo:
            analyze(query, context)
        error = excinfo.value
        assert error.code == "unknown-attribute"
        assert str(error) == (
            "plan analysis failed [unknown-attribute]: projection references "
            "unknown attribute 'SALARY'; input schema is "
            "(EID: number, NAME: str, DEPT: str)\n"
            "  π[SALARY]   <-- here\n"
            "    σ[(EID = 1)]\n"
            "      EMP"
        )

    def test_duplicate_attribute_marks_the_product(self, context):
        query = BaseRelation("EMP").product(BaseRelation("EMP"))
        with pytest.raises(AnalysisError) as excinfo:
            analyze(query, context)
        error = excinfo.value
        assert error.code == "duplicate-attribute"
        assert str(error) == (
            "plan analysis failed [duplicate-attribute]: both sides of the "
            "product define ['DEPT', 'EID', 'NAME']; left is "
            "(EID: number, NAME: str, DEPT: str), right is "
            "(EID: number, NAME: str, DEPT: str) — rename one side first\n"
            "  ×   <-- here\n"
            "    EMP\n"
            "    EMP"
        )

    def test_arity_mismatch_marks_the_union(self, context):
        # Bare BaseRelations resolve only through the context, so the
        # builder-time structural check passes and strict analysis fails.
        query = BaseRelation("EMP").union(BaseRelation("DEPT"))
        with pytest.raises(AnalysisError) as excinfo:
            analyze(query, context)
        error = excinfo.value
        assert error.code == "arity-mismatch"
        assert str(error) == (
            "plan analysis failed [arity-mismatch]: ∪ requires union-compatible "
            "inputs; left has arity 3 (EID: number, NAME: str, DEPT: str) but "
            "right has arity 2 (DID: number, HEAD: str)\n"
            "  ∪   <-- here\n"
            "    EMP\n"
            "    DEPT"
        )

    def test_predicate_type_mismatch_marks_the_select(self, context):
        query = BaseRelation("EMP").select(AttrConst("NAME", "=", 7))
        with pytest.raises(AnalysisError) as excinfo:
            analyze(query, context)
        error = excinfo.value
        assert error.code == "type-mismatch"
        assert str(error) == (
            "plan analysis failed [type-mismatch]: predicate (NAME = 7) compares "
            "'NAME' (str) with a number constant — the comparison can never hold\n"
            "  σ[(NAME = 7)]   <-- here\n"
            "    EMP"
        )

    def test_errors_are_schema_errors(self, context):
        with pytest.raises(SchemaError):
            analyze(BaseRelation("EMP").project(("NOPE",)), context)


class TestMoreErrorClasses:
    def test_rename_of_unknown_attribute(self, context):
        with pytest.raises(AnalysisError) as excinfo:
            analyze(BaseRelation("EMP").rename("SALARY", "S"), context)
        assert excinfo.value.code == "unknown-attribute"

    def test_rename_collision(self, context):
        with pytest.raises(AnalysisError) as excinfo:
            analyze(BaseRelation("EMP").rename("EID", "NAME"), context)
        assert excinfo.value.code == "duplicate-attribute"

    def test_duplicate_projection_list(self, context):
        with pytest.raises(AnalysisError) as excinfo:
            analyze(BaseRelation("EMP").project(("EID", "EID")), context)
        assert excinfo.value.code == "duplicate-attribute"

    def test_join_type_mismatch(self, context):
        query = BaseRelation("EMP").join(
            BaseRelation("DEPT").rename("HEAD", "H"), "EID", "H"
        )
        with pytest.raises(AnalysisError) as excinfo:
            analyze(query, context)
        assert excinfo.value.code == "type-mismatch"

    def test_join_key_missing(self, context):
        query = BaseRelation("EMP").join(BaseRelation("DEPT"), "EID", "XID")
        with pytest.raises(AnalysisError) as excinfo:
            analyze(query, context)
        assert excinfo.value.code == "unknown-attribute"

    def test_attr_attr_type_mismatch(self, context):
        with pytest.raises(AnalysisError) as excinfo:
            analyze(BaseRelation("EMP").select(AttrAttr("EID", "=", "NAME")), context)
        assert excinfo.value.code == "type-mismatch"


# --------------------------------------------------------------------------- #
# Builder-time set-operation checks (Query.union / difference / intersection)
# --------------------------------------------------------------------------- #


class TestBuilderTimeSetOperations:
    def test_union_of_mismatched_projections_raises_at_build(self):
        left = BaseRelation("R").project(("A", "B"))
        right = BaseRelation("S").project(("A",))
        with pytest.raises(SchemaError) as excinfo:
            left.union(right)
        message = str(excinfo.value)
        assert "arity-mismatch" in message
        # Both operand schemas are spelled out in the message.
        assert "('A', 'B')" in message and "('A',)" in message

    def test_difference_attribute_mismatch_at_build(self):
        left = BaseRelation("R").project(("A", "B"))
        right = BaseRelation("S").project(("A", "C"))
        with pytest.raises(SchemaError) as excinfo:
            left.difference(right)
        assert "attribute-mismatch" in str(excinfo.value)

    def test_intersection_mismatch_at_build(self):
        with pytest.raises(SchemaError):
            BaseRelation("R").project(("A",)).intersection(
                BaseRelation("S").project(("A", "B"))
            )

    def test_bare_base_relations_pass_at_build(self):
        # No structural schema on either side: nothing definite to reject.
        BaseRelation("R").union(BaseRelation("S"))

    def test_rename_chains_resolve_structurally(self):
        left = BaseRelation("R").project(("A", "B")).rename("A", "X")
        right = BaseRelation("S").project(("X", "B"))
        left.union(right)  # identical lists after the rename: compatible


# --------------------------------------------------------------------------- #
# Inference results, type lattice, contexts
# --------------------------------------------------------------------------- #


class TestInference:
    def test_inferred_types_from_rows(self, context):
        schema = analyze(BaseRelation("EMP"), context)
        assert schema == InferredSchema(
            ("EID", "NAME", "DEPT"), (NUMBER, STRING, STRING)
        )

    def test_join_concatenates_schemas(self, context):
        query = BaseRelation("EMP").join(BaseRelation("DEPT"), "EID", "DID")
        schema = analyze(query, context)
        assert schema.attributes == ("EID", "NAME", "DEPT", "DID", "HEAD")

    def test_unknown_relation_disables_checks(self, context):
        # MYSTERY is unknown: projection over it cannot be validated.
        query = BaseRelation("MYSTERY").project(("WHATEVER",))
        schema = analyze(query, context)
        assert schema.attributes == ("WHATEVER",)
        assert schema.types == (ANY_TYPE,)

    def test_column_types_skips_placeholders(self):
        types = column_types(
            ("A", "B"), [(1, "x"), (PLACEHOLDER, "y"), (2, PLACEHOLDER)]
        )
        assert types == {"A": NUMBER, "B": STRING}

    def test_column_types_mixed_becomes_any(self):
        assert column_types(("A",), [(1,), ("x",)]) == {"A": ANY_TYPE}

    def test_inferred_attributes_matches_context(self, context):
        query = BaseRelation("EMP").select(AttrConst("EID", "=", 1)).rename("EID", "X")
        assert inferred_attributes(query, context) == ("X", "NAME", "DEPT")
        # Without context the base relation is opaque.
        assert inferred_attributes(query) is None


class TestPlanTimeRejection:
    def test_plan_rejects_bad_query_with_statistics(self):
        statistics = Statistics(attributes={"EMP": ("EID", "NAME", "DEPT")})
        query = BaseRelation("EMP").project(("SALARY",))
        with pytest.raises(AnalysisError) as excinfo:
            plan(query, statistics)
        assert excinfo.value.code == "unknown-attribute"

    def test_query_plan_on_engine_rejects_bad_query(self):
        database = typed_database()
        with pytest.raises(AnalysisError):
            BaseRelation("EMP").project(("SALARY",)).plan(database)

    def test_run_rejects_bad_query_before_execution(self):
        database = typed_database()
        with pytest.raises(SchemaError):
            BaseRelation("EMP").select(AttrConst("NAME", "=", 7)).run(database)

    def test_valid_queries_still_plan_and_run(self):
        database = typed_database()
        query = BaseRelation("EMP").select(AttrConst("DEPT", "=", "eng")).project(("NAME",))
        result = query.run(database)
        assert sorted(result) == [("ada",)]
