"""Tests for components, WSDs, WSDTs, decomposition and normalization."""

import pytest
from hypothesis import given, settings

from repro.core import (
    WSD,
    WSDT,
    Component,
    FieldRef,
    component_size_histogram,
    compose_all,
    decompose_component,
    decompose_wsd,
    normalize_wsd,
    remove_invalid_tuples,
)
from repro.relational import BOTTOM, DatabaseSchema, RelationSchema, RepresentationError
from repro.worlds import OrSet, OrSetRelation, TupleIndependentDatabase
from repro.worlds.tuple_independent import TupleIndependentRelation

from conftest import orset_relations


def field(tid, attr, rel="R"):
    return FieldRef(rel, tid, attr)


class TestComponent:
    def test_construction_validation(self):
        with pytest.raises(RepresentationError):
            Component((), [], None)
        with pytest.raises(RepresentationError):
            Component((field(1, "A"),), [], None)
        with pytest.raises(RepresentationError):
            Component((field(1, "A"), field(1, "A")), [(1, 2)], None)
        with pytest.raises(RepresentationError):
            Component((field(1, "A"),), [(1, 2)], None)
        with pytest.raises(RepresentationError):
            Component((field(1, "A"),), [(1,)], [0.5, 0.5])

    def test_probability_mass_validation(self):
        component = Component((field(1, "A"),), [(1,), (2,)], [0.5, 0.4])
        with pytest.raises(RepresentationError):
            component.validate()
        Component((field(1, "A"),), [(1,), (2,)], [0.5, 0.5]).validate()

    def test_certain_and_uniform_constructors(self):
        certain = Component.certain(field(1, "A"), 7)
        assert certain.is_certain() and certain.probability(0) == 1.0
        uniform = Component.uniform(field(1, "A"), [1, 2, 3, 4])
        assert uniform.size == 4
        assert uniform.probability(2) == pytest.approx(0.25)

    def test_ext_copies_column(self):
        component = Component((field(1, "A"),), [(1,), (2,)], [0.6, 0.4])
        extended = component.ext(field(1, "A"), FieldRef("P", 1, "A"))
        assert extended.fields == (field(1, "A"), FieldRef("P", 1, "A"))
        assert extended.rows == [(1, 1), (2, 2)]
        with pytest.raises(RepresentationError):
            extended.ext(field(1, "A"), FieldRef("P", 1, "A"))

    def test_compose_multiplies_probabilities(self):
        first = Component((field(1, "A"),), [(1,), (2,)], [0.3, 0.7])
        second = Component((field(2, "A"),), [(5,), (6,)], [0.5, 0.5])
        composed = first.compose(second)
        assert composed.size == 4
        assert composed.probability(0) == pytest.approx(0.15)
        composed.validate()
        with pytest.raises(RepresentationError):
            first.compose(first)

    def test_compose_all(self):
        parts = [Component.certain(field(i, "A"), i) for i in range(3)]
        composed = compose_all(parts)
        assert composed.arity == 3 and composed.size == 1
        with pytest.raises(RepresentationError):
            compose_all([])

    def test_propagate_bottom(self):
        component = Component(
            (field(1, "A"), field(1, "B"), field(2, "A")),
            [(BOTTOM, 5, 9), (1, 2, 3)],
            [0.5, 0.5],
        )
        propagated = component.propagate_bottom()
        assert propagated.rows[0] == (BOTTOM, BOTTOM, 9)
        assert propagated.rows[1] == (1, 2, 3)

    def test_project_away_merges_duplicates(self):
        component = Component(
            (field(1, "A"), field(1, "B")),
            [(1, 10), (1, 20), (2, 30)],
            [0.2, 0.3, 0.5],
        )
        reduced = component.project_away([field(1, "B")])
        assert reduced.rows == [(1,), (2,)]
        assert reduced.probabilities == pytest.approx([0.5, 0.5])
        assert component.project_away(component.fields) is None

    def test_filter_rows_renormalizes(self):
        component = Component((field(1, "A"),), [(1,), (2,), (3,)], [0.2, 0.3, 0.5])
        filtered = component.filter_rows(lambda row: row[0] != 1)
        assert filtered.probabilities == pytest.approx([0.375, 0.625])
        assert component.filter_rows(lambda row: False) is None

    def test_compress(self):
        component = Component((field(1, "A"),), [(1,), (1,), (2,)], [0.25, 0.25, 0.5])
        compressed = component.compress()
        assert compressed.size == 2
        assert compressed.probabilities == pytest.approx([0.5, 0.5])

    def test_rename_fields_and_set_field_where(self):
        component = Component((field(1, "A"),), [(1,), (2,)], [0.5, 0.5])
        renamed = component.rename_fields({field(1, "A"): FieldRef("P", 1, "A")})
        assert renamed.fields == (FieldRef("P", 1, "A"),)
        marked = component.set_field_where(field(1, "A"), BOTTOM, lambda row: row[0] == 2)
        assert marked.rows[1] == (BOTTOM,)

    def test_to_text(self):
        component = Component((field(1, "A"),), [(1,), (BOTTOM,)], [0.5, 0.5])
        text = component.to_text()
        assert "R.t1.A" in text and "⊥" in text and "P" in text


class TestWSDConstruction:
    def test_field_coverage_enforced(self):
        schema = DatabaseSchema([RelationSchema("R", ("A", "B"))])
        with pytest.raises(RepresentationError):
            WSD(schema, {"R": [1]}, [Component.certain(field(1, "A"), 1)])

    def test_duplicate_field_rejected(self):
        schema = DatabaseSchema([RelationSchema("R", ("A",))])
        with pytest.raises(RepresentationError):
            WSD(
                schema,
                {"R": [1]},
                [Component.certain(field(1, "A"), 1), Component.certain(field(1, "A"), 2)],
            )

    def test_from_relation(self, small_relation):
        wsd = WSD.from_relation(small_relation)
        assert wsd.world_count() == 1
        worlds = wsd.rep()
        assert len(worlds) == 1
        assert worlds.databases[0].relation("Emp").same_rows(small_relation)

    def test_from_empty_relation(self):
        from repro.relational import Relation

        empty = Relation(RelationSchema("R", ("A",)))
        wsd = WSD.from_relation(empty)
        worlds = wsd.rep()
        assert len(worlds) == 1
        assert len(worlds.databases[0].relation("R")) == 0

    def test_from_orset_relation_is_linear(self, census_forms):
        wsd = WSD.from_orset_relation(census_forms)
        assert wsd.component_count() == 6  # one component per field
        assert wsd.representation_size() == census_forms.representation_size()
        assert len(wsd.rep()) == 32

    def test_from_tuple_independent_matches_expansion(self):
        s = TupleIndependentRelation(RelationSchema("S", ("A", "B")))
        s.insert(("m", 1), 0.8)
        s.insert(("n", 1), 0.5)
        t = TupleIndependentRelation(RelationSchema("T", ("C", "D")))
        t.insert((1, "p"), 0.6)
        database = TupleIndependentDatabase([s, t])
        wsd = WSD.from_tuple_independent(database)
        assert wsd.component_count() == 3
        assert wsd.rep().same_distribution(database.to_worldset())

    def test_from_tuple_independent_degenerate_probabilities(self):
        s = TupleIndependentRelation(RelationSchema("S", ("A",)))
        s.insert((1,), 1.0)
        s.insert((2,), 0.0)
        wsd = WSD.from_tuple_independent(TupleIndependentDatabase([s]))
        worlds = wsd.rep()
        assert len(worlds) == 1
        assert worlds.databases[0].relation("S").row_set() == {(1,)}

    def test_from_worldset_roundtrip(self, census_forms):
        worlds = census_forms.to_worldset()
        wsd = WSD.from_worldset(worlds)
        assert wsd.component_count() == 1  # 1-WSD by construction
        assert wsd.rep().same_distribution(worlds)

    def test_copy_is_independent(self, census_forms):
        wsd = WSD.from_orset_relation(census_forms)
        clone = wsd.copy()
        clone.merge_components_of([field(1, "S"), field(2, "S")])
        assert wsd.component_count() == 6
        assert clone.component_count() == 5

    def test_world_count_guard(self):
        relation = OrSetRelation(RelationSchema("R", ("A",)))
        for _ in range(25):
            relation.insert((OrSet([0, 1]),))
        wsd = WSD.from_orset_relation(relation)
        with pytest.raises(RepresentationError):
            wsd.to_worldset(max_worlds=1000)

    def test_drop_and_restrict_relations(self, census_forms):
        wsd = WSD.from_orset_relation(census_forms)
        from repro.core.algebra import wsd_ops

        wsd_ops.copy_relation(wsd, "R", "P")
        restricted = wsd.restrict_to_relations(["P"])
        assert restricted.schema.relation_names == ("P",)
        assert len(restricted.rep()) == 32
        wsd.drop_relation("P")
        assert wsd.schema.relation_names == ("R",)


class TestDecompose:
    def test_independent_fields_split(self):
        component = Component(
            (field(1, "A"), field(1, "B")),
            [(1, 10), (1, 20), (2, 10), (2, 20)],
            [0.25, 0.25, 0.25, 0.25],
        )
        factors = decompose_component(component)
        assert len(factors) == 2
        assert sorted(factor.arity for factor in factors) == [1, 1]

    def test_correlated_fields_stay_together(self):
        component = Component(
            (field(1, "A"), field(1, "B")),
            [(1, 10), (2, 20)],
            [0.5, 0.5],
        )
        assert len(decompose_component(component)) == 1

    def test_xor_relation_is_prime(self):
        # Pairwise independent but not decomposable: c = a XOR b.
        rows = [(a, b, a ^ b) for a in (0, 1) for b in (0, 1)]
        component = Component(
            (field(1, "A"), field(1, "B"), field(1, "C")), rows, [0.25] * 4
        )
        assert len(decompose_component(component)) == 1

    def test_probability_correlation_blocks_split(self):
        # The relation factorizes but the distribution does not.
        component = Component(
            (field(1, "A"), field(1, "B")),
            [(1, 10), (1, 20), (2, 10), (2, 20)],
            [0.4, 0.1, 0.1, 0.4],
        )
        assert len(decompose_component(component)) == 1

    def test_three_way_split(self):
        parts = [Component.uniform(field(i, "A"), [0, 1]) for i in range(3)]
        composed = compose_all(parts)
        factors = decompose_component(composed)
        assert len(factors) == 3
        for factor in factors:
            factor.validate()

    def test_decompose_wsd_preserves_semantics(self, census_forms):
        worlds = census_forms.to_worldset()
        wsd = WSD.from_worldset(worlds)
        decompose_wsd(wsd)
        assert wsd.component_count() > 1
        assert wsd.rep().same_distribution(worlds)


class TestNormalize:
    def test_remove_invalid_tuples(self):
        schema = DatabaseSchema([RelationSchema("R", ("A", "B"))])
        components = [
            Component((field(1, "A"),), [(BOTTOM,)], [1.0]),
            Component((field(1, "B"),), [(5,)], [1.0]),
            Component((field(2, "A"),), [(1,), (2,)], [0.5, 0.5]),
            Component((field(2, "B"),), [(7,)], [1.0]),
        ]
        wsd = WSD(schema, {"R": [1, 2]}, components)
        removed = remove_invalid_tuples(wsd)
        assert removed == [("R", 1)]
        assert wsd.tuple_ids["R"] == [2]
        assert len(wsd.rep()) == 2

    def test_normalize_reaches_fixpoint_and_preserves_rep(self, census_forms):
        worlds = census_forms.to_worldset()
        wsd = WSD.from_worldset(worlds)
        normalize_wsd(wsd)
        assert wsd.rep().same_distribution(worlds)
        histogram = component_size_histogram(wsd)
        assert sum(histogram.values()) == wsd.component_count()

    def test_normalization_of_query_answer_example12(self, figure10_orset):
        """Example 12: a tuple that is ⊥ in all worlds disappears after normalization."""
        from repro.core.algebra import BaseRelation, evaluate_on_wsd
        from repro.relational import eq

        wsd = WSD.from_orset_relation(figure10_orset)
        evaluate_on_wsd(BaseRelation("R").select(eq("C", 7)), wsd, "P")
        before = wsd.rep()
        result = wsd.restrict_to_relations(["P"])
        # t2 has C=0 in every world, so it is invalid in P.
        removed = remove_invalid_tuples(result)
        assert ("P", 2) in removed
        after_worlds = result.rep()
        projected_before = before.map(
            lambda db: type(db)([db.relation("P")])
        )
        assert after_worlds.same_distribution(projected_before)


class TestWSDT:
    def test_from_wsd_moves_certain_data_to_templates(self, census_forms):
        wsd = WSD.from_orset_relation(census_forms)
        wsdt = WSDT.from_wsd(wsd)
        assert wsdt.placeholder_count() == 4
        assert wsdt.component_count() == 4
        assert wsdt.template_size() == 2
        # Certain names are in the template.
        assert wsdt.templates["R"][1]["N"] == "Smith"
        assert wsdt.rep().same_distribution(wsd.rep())

    def test_roundtrip_wsd_wsdt(self, census_forms):
        wsd = WSD.from_orset_relation(census_forms)
        wsdt = WSDT.from_wsd(wsd)
        back = wsdt.to_wsd()
        assert back.rep().same_distribution(wsd.rep())

    def test_validation_rejects_uncovered_placeholder(self):
        schema = DatabaseSchema([RelationSchema("R", ("A",))])
        from repro.relational import PLACEHOLDER

        with pytest.raises(RepresentationError):
            WSDT(schema, {"R": {1: {"A": PLACEHOLDER}}}, [])

    def test_validation_rejects_component_on_certain_field(self):
        schema = DatabaseSchema([RelationSchema("R", ("A",))])
        with pytest.raises(RepresentationError):
            WSDT(schema, {"R": {1: {"A": 5}}}, [Component.uniform(field(1, "A"), [1, 2])])

    def test_template_relation_materialization(self, census_forms):
        wsdt = WSDT.from_wsd(WSD.from_orset_relation(census_forms))
        template = wsdt.template_relation("R")
        assert template.schema.attributes == ("TID", "S", "N", "M")
        assert len(template) == 2

    def test_statistics(self, census_forms):
        wsdt = WSDT.from_wsd(WSD.from_orset_relation(census_forms))
        assert wsdt.component_relation_size() == 2 + 2 + 2 + 4
        assert "WSDT" in repr(wsdt)
        assert "Template" in wsdt.to_text()


class TestPropertyBased:
    @given(orset_relations())
    @settings(max_examples=25, deadline=None)
    def test_orset_to_wsd_preserves_worlds(self, relation):
        wsd = WSD.from_orset_relation(relation)
        worlds = wsd.rep()
        assert worlds.same_worlds(relation.to_worldset(max_worlds=None))
        assert worlds.total_probability() == pytest.approx(1.0)

    @given(orset_relations())
    @settings(max_examples=25, deadline=None)
    def test_wsd_wsdt_roundtrip(self, relation):
        wsd = WSD.from_orset_relation(relation)
        wsdt = WSDT.from_wsd(wsd)
        assert wsdt.to_wsd().rep().same_distribution(wsd.rep())

    @given(orset_relations())
    @settings(max_examples=20, deadline=None)
    def test_normalize_preserves_rep(self, relation):
        worlds = relation.to_worldset(max_worlds=None)
        wsd = WSD.from_worldset(worlds)
        normalize_wsd(wsd)
        assert wsd.rep().same_distribution(worlds)
        for component in wsd.components:
            component.validate()
