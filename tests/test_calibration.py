"""Cost-constant calibration: fitting, JSON round-trip, planner pickup."""

import json

import pytest

from repro.core.planner import (
    COST_MODELS,
    CalibrationProfile,
    CostModel,
    Measurement,
    Statistics,
    calibrate,
    clear_cost_profile,
    fit_cost_model,
    install_cost_profile,
    load_cost_profile,
    parse_cost_profile,
    plan,
    run_microbenchmarks,
)
from repro.core.algebra import BaseRelation
from repro.core.planner.cost import arity_width
from repro.relational import attr_eq


@pytest.fixture(autouse=True)
def _no_profile_leaks():
    """Every test starts and ends on the hand-tuned constants."""
    clear_cost_profile()
    yield
    clear_cost_profile()


def _synthetic_measurements(engine, unit=1e-6):
    """Noise-free timings generated from known constants: select 1×, project
    3×, rename 0.5×, union 2×, emit 4×, join build+probe 1.5×, difference 6×
    — all in units of ``unit`` seconds per work item."""
    measurements = []
    for n in (100, 200):
        measurements.append(Measurement(engine, "select", n, 0, n, 4, 4, unit * n))
        measurements.append(
            Measurement(engine, "project", n, 0, n, 4, 2, 3 * unit * n * arity_width(4))
        )
        measurements.append(Measurement(engine, "rename", n, 0, n, 4, 4, 0.5 * unit * n))
        measurements.append(Measurement(engine, "union", n, n, 2 * n, 4, 4, 2 * unit * 2 * n))
        out = 4 * n
        join_seconds = 4 * unit * out * arity_width(8) + 1.5 * unit * (n + n)
        measurements.append(Measurement(engine, "join", n, n, out, 4, 8, join_seconds))
    for n in (10, 20):
        measurements.append(
            Measurement(engine, "product", n, n, n * n, 4, 8, 4 * unit * n * n * arity_width(8))
        )
        measurements.append(Measurement(engine, "difference", n, n, n, 4, 4, 6 * unit * n * n))
    return measurements


class TestFit:
    def test_fit_recovers_known_ratios(self):
        reference = COST_MODELS["database"]
        fitted = fit_cost_model("database", _synthetic_measurements("database"))
        assert fitted.source == "calibrated"
        # select is the anchor: it keeps the reference value exactly.
        assert fitted.select_tuple == reference.select_tuple
        scale = reference.select_tuple  # measured select constant was 1.0·unit
        assert fitted.project_tuple == pytest.approx(3 * scale, rel=1e-6)
        assert fitted.rename_tuple == pytest.approx(0.5 * scale, rel=1e-6)
        assert fitted.union_tuple == pytest.approx(2 * scale, rel=1e-6)
        assert fitted.emit_tuple == pytest.approx(4 * scale, rel=1e-6)
        assert fitted.join_build == pytest.approx(1.5 * scale, rel=1e-6)
        assert fitted.join_probe == fitted.join_build
        assert fitted.difference_pair == pytest.approx(6 * scale, rel=1e-6)

    def test_fit_without_select_keeps_reference(self):
        fitted = fit_cost_model("uwsdt", [])
        assert fitted is COST_MODELS["uwsdt"]
        assert fitted.source == "hand-tuned"

    def test_fit_floors_sub_resolution_ops(self):
        """An operator timed at ~0 seconds must not fit to a zero constant."""
        measurements = _synthetic_measurements("database")
        measurements.append(Measurement("database", "rename", 400, 0, 400, 4, 4, 0.0))
        fitted = fit_cost_model("database", measurements)
        assert fitted.rename_tuple > 0


class TestMicrobenchmarks:
    def test_database_microbenchmarks_fit_positive_constants(self):
        measurements = run_microbenchmarks(
            "database", linear_sizes=(40, 80), product_sizes=(8, 12),
            difference_sizes=(4, 6), repeats=1,
        )
        operators = {m.operator for m in measurements}
        assert operators == {
            "select", "project", "rename", "union", "join", "product", "difference",
        }
        fitted = fit_cost_model("database", measurements)
        for name in CostModel.CONSTANT_FIELDS:
            assert getattr(fitted, name) > 0

    def test_representation_microbenchmarks_run(self):
        for engine in ("wsd", "uwsdt"):
            measurements = run_microbenchmarks(
                engine, linear_sizes=(12,), product_sizes=(4,),
                difference_sizes=(3,), repeats=1,
            )
            assert all(m.seconds >= 0 for m in measurements)
            fitted = fit_cost_model(engine, measurements)
            assert fitted.source == "calibrated"


class TestProfileRoundTrip:
    def test_profile_round_trips_through_json(self, tmp_path):
        profile = calibrate(
            engines=("database",), linear_sizes=(30, 60), product_sizes=(6, 10),
            difference_sizes=(4, 6), repeats=1,
        )
        path = tmp_path / "profile.json"
        profile.save(str(path))
        loaded = CalibrationProfile.load(str(path))
        assert loaded.models["database"].constants() == pytest.approx(
            profile.models["database"].constants()
        )
        assert loaded.models["database"].source == "calibrated"
        assert loaded.metadata["engines"] == ["database"]

    def test_parse_rejects_foreign_documents(self):
        with pytest.raises(ValueError):
            parse_cost_profile({"format": "something-else", "engines": {}})
        with pytest.raises(ValueError):
            parse_cost_profile({"format": "repro-cost-profile"})

    def test_unknown_constant_rejected(self):
        with pytest.raises(ValueError):
            CostModel.from_constants("uwsdt", {"select_tuple": 1.0, "warp_factor": 9.0})

    def test_loaded_profile_picked_up_by_planner_and_explain(self, tmp_path):
        calibrated = CostModel.from_constants(
            "uwsdt", dict(COST_MODELS["uwsdt"].constants(), emit_tuple=9.75)
        )
        path = tmp_path / "profile.json"
        CalibrationProfile({"uwsdt": calibrated}).save(str(path))
        load_cost_profile(str(path))
        try:
            assert CostModel.for_engine("uwsdt").emit_tuple == 9.75
            # Engines the profile does not cover keep their hand-tuned model.
            assert CostModel.for_engine("wsd") is COST_MODELS["wsd"]
            stats = Statistics(
                row_counts={"R": 1000, "S": 100},
                attributes={"R": ("A", "B", "C"), "S": ("D", "E")},
                engine="uwsdt",
            )
            query = BaseRelation("R").product(BaseRelation("S")).select(attr_eq("B", "D"))
            built = plan(query, stats)
            explained = built.explain()
            assert "calibrated" in explained
            assert str(path) in explained
            # The calibrated emit constant is live in the estimates too.
            clear_cost_profile()
            hand_tuned = plan(query, stats)
            assert built.cost_after.cost != hand_tuned.cost_after.cost
        finally:
            clear_cost_profile()

    def test_install_without_path_still_reports_calibrated(self):
        calibrated = CostModel.from_constants("database", COST_MODELS["database"].constants())
        install_cost_profile({"database": calibrated})
        try:
            stats = Statistics(row_counts={"R": 10}, attributes={"R": ("A",)}, engine="database")
            from repro.relational import eq

            explained = plan(BaseRelation("R").select(eq("A", 1)), stats).explain()
            assert "cost model: database (calibrated constants)" in explained
        finally:
            clear_cost_profile()

    def test_explicit_install_not_clobbered_by_env_profile(self, monkeypatch, tmp_path):
        """An explicit install must survive the REPRO_COST_PROFILE env var
        being discovered afterwards (first for_engine call)."""
        import repro.core.planner.cost as cost_module

        env_model = CostModel.from_constants(
            "uwsdt", dict(COST_MODELS["uwsdt"].constants(), select_tuple=9.0)
        )
        env_path = tmp_path / "env.json"
        CalibrationProfile({"uwsdt": env_model}).save(str(env_path))
        monkeypatch.setenv(cost_module.COST_PROFILE_ENV, str(env_path))
        # Simulate a fresh process that has not consulted the env var yet.
        monkeypatch.setattr(cost_module, "_PROFILE_ENV_CHECKED", False)
        explicit = CostModel.from_constants(
            "uwsdt", dict(COST_MODELS["uwsdt"].constants(), select_tuple=42.0)
        )
        install_cost_profile({"uwsdt": explicit})
        assert CostModel.for_engine("uwsdt").select_tuple == 42.0

    def test_malformed_env_profile_falls_back_to_hand_tuned(self, monkeypatch, tmp_path):
        import repro.core.planner.cost as cost_module

        path = tmp_path / "bad.json"
        path.write_text(
            '{"format": "repro-cost-profile", "version": 1,'
            ' "engines": {"uwsdt": {"select_tuple": null}}}'
        )
        monkeypatch.setenv(cost_module.COST_PROFILE_ENV, str(path))
        monkeypatch.setattr(cost_module, "_PROFILE_ENV_CHECKED", False)
        assert CostModel.for_engine("uwsdt") is COST_MODELS["uwsdt"]

    def test_saved_document_format(self, tmp_path):
        profile = CalibrationProfile(
            {"database": CostModel.from_constants("database", COST_MODELS["database"].constants())}
        )
        path = tmp_path / "profile.json"
        profile.save(str(path))
        document = json.loads(path.read_text())
        assert document["format"] == "repro-cost-profile"
        assert document["version"] == 1
        assert set(document["engines"]["database"]) == set(CostModel.CONSTANT_FIELDS)
