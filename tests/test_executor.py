"""The physical execution layer: lowering, backends, metrics, self-tuning.

Covers the PR 5 tentpole:

* logical plans lower to per-engine physical operator trees
  (``Scan``/``IndexScan``/``Filter``/``HashJoin``/``IndexNestedLoopJoin``/…),
* the hash-join vs index-nested-loop-join choice is a cost-model decision —
  a small-outer/large-inner join *provably* selects the index join
  (asserted via ``PhysicalPlan.explain()``), a balanced join keeps the hash
  join, and both algorithms produce identical results on every engine,
* execution records per-operator metrics (rows in/out, wall time,
  estimated-vs-actual cardinality) exposed as ``ExecutionMetrics`` on the
  query result and folded into the statistics catalog,
* one feedback iteration of :mod:`repro.core.exec.feedback` measurably
  reduces the cost model's estimated-vs-observed time error and persists
  through the existing ``repro-cost-profile`` path,
* ``Query.intersection`` evaluates natively on a Database and through its
  ``A − (A − B)`` expansion on the representation engines.
"""

import pytest

from repro.baselines import naive
from repro.core import UWSDT, WSD
from repro.core.algebra import BaseRelation, Query, evaluate_on_database
from repro.core.exec import (
    ExecutionResult,
    apply_feedback,
    backend_for,
    cost_model_error,
    fold_metrics,
    index_pool_for,
    lower,
)
from repro.core.planner import Statistics, clear_cost_profile, load_cost_profile
from repro.core.planner.catalog import catalog_for
from repro.relational import Database, QueryError, Relation, RelationSchema
from repro.relational.predicates import AttrAttr, AttrConst
from repro.worlds import OrSet, OrSetRelation

from _fixtures import assert_same_result_distribution


def eq(attribute, value):
    return AttrConst(attribute, "=", value)


def small_large_database(small=6, large=600):
    """R is tiny, S is big: the canonical index-nested-loop-join shape."""
    R = Relation(RelationSchema("R", ("A", "B")), [(i % 3, i) for i in range(small)])
    S = Relation(RelationSchema("S", ("C", "D")), [(i % small, i * 2) for i in range(large)])
    return Database([R, S])


def balanced_database(rows=200):
    R = Relation(RelationSchema("R", ("A", "B")), [(i % 3, i) for i in range(rows)])
    S = Relation(RelationSchema("S", ("C", "D")), [(i % 7, i * 2) for i in range(rows)])
    return Database([R, S])


ORACLE_RELATIONS = [
    OrSetRelation.from_dicts(
        "R",
        ["A0", "A1"],
        [{"A0": 1, "A1": OrSet([2, 3])}, {"A0": 0, "A1": 4}, {"A0": 1, "A1": 2}],
    ),
    OrSetRelation.from_dicts(
        "S",
        ["B0", "B1"],
        [{"B0": 2, "B1": OrSet([0, 1])}, {"B0": 4, "B1": 7}],
    ),
]


class TestLowering:
    def test_database_plan_uses_index_scan_for_pushed_equality(self):
        database = small_large_database()
        query = BaseRelation("R").select(eq("A", 1))
        physical = query.physical_plan(database)
        assert physical.uses("IndexScan")
        assert "IndexScan(R" in physical.explain()

    def test_wsd_backend_has_no_index_scan(self):
        wsd = WSD.from_orset_relations(ORACLE_RELATIONS)
        physical = BaseRelation("R").select(eq("A0", 1)).physical_plan(wsd)
        assert not physical.uses("IndexScan")
        assert physical.uses("Filter")

    def test_unplanned_lowering_executes_verbatim_tree(self):
        database = small_large_database()
        query = BaseRelation("R").product(BaseRelation("S")).select(AttrAttr("B", "=", "C"))
        physical = query.physical_plan(database, optimize=False)
        assert physical.uses("Product")
        assert not physical.uses("HashJoin")

    def test_intersection_native_on_database_expanded_on_uwsdt(self):
        database = small_large_database()
        query = BaseRelation("R").intersection(BaseRelation("R").select(eq("A", 1)))
        assert query.physical_plan(database).uses("Intersection")

        uwsdt = UWSDT.from_orset_relations(ORACLE_RELATIONS)
        query = BaseRelation("R").intersection(BaseRelation("R").select(eq("A0", 1)))
        physical = query.physical_plan(uwsdt)
        assert not physical.uses("Intersection")
        assert physical.uses("Difference")

    def test_unknown_node_error_renders_query_text(self):
        class Mystery(Query):
            def children(self):
                return ()

            def node_label(self):
                return "mystery"

        database = small_large_database()
        with pytest.raises(QueryError) as excinfo:
            Mystery().run(database, optimize=False)
        assert "mystery" in str(excinfo.value)

    def test_backend_for_rejects_unknown_engines(self):
        with pytest.raises(QueryError):
            backend_for(object())
        with pytest.raises(QueryError):
            BaseRelation("R").run(42)


class TestJoinAlgorithmChoice:
    def test_small_outer_large_inner_selects_index_nested_loop(self):
        """The acceptance case: the cost model provably prefers the index
        join when the outer side is small and the inner is a big base scan."""
        database = small_large_database()
        query = BaseRelation("R").select(eq("A", 1)).join(BaseRelation("S"), "B", "C")
        physical = query.physical_plan(database)
        assert physical.uses("IndexNestedLoopJoin")
        assert not physical.uses("HashJoin")
        assert "IndexNestedLoopJoin" in physical.explain()

    def test_balanced_join_keeps_hash_join(self):
        database = balanced_database()
        query = BaseRelation("R").join(BaseRelation("S"), "A", "C")
        physical = query.physical_plan(database)
        assert physical.uses("HashJoin")
        assert not physical.uses("IndexNestedLoopJoin")

    def test_uwsdt_small_outer_selects_index_nested_loop(self):
        small = OrSetRelation.from_dicts(
            "R", ["A0", "A1"], [{"A0": 1, "A1": OrSet([2, 3])}, {"A0": 0, "A1": 4}]
        )
        large = OrSetRelation.from_dicts(
            "S", ["B0", "B1"], [{"B0": i % 9, "B1": i} for i in range(300)]
        )
        uwsdt = UWSDT.from_orset_relations([small, large])
        query = BaseRelation("R").join(BaseRelation("S"), "A1", "B0")
        physical = query.physical_plan(uwsdt)
        assert "IndexNestedLoopJoin" in physical.explain()

    @pytest.mark.parametrize("force", ["hash", "index-nested-loop"])
    def test_both_algorithms_agree_with_brute_force(self, force):
        """Placeholders on either join side: both algorithms must produce
        the same world distribution as the naive engine."""
        query = BaseRelation("R").join(BaseRelation("S"), "A1", "B0")
        base = WSD.from_orset_relations(ORACLE_RELATIONS)
        reference = naive.evaluate_query(base.rep(), query, "P")
        uwsdt = UWSDT.from_orset_relations(ORACLE_RELATIONS)
        result = query.run(uwsdt, "P", collect_metrics=True, force_join=force)
        uwsdt.validate()
        assert_same_result_distribution(uwsdt.rep(), reference, "P")
        operators = [record.operator for record in result.metrics.records]
        if force == "index-nested-loop":
            assert "IndexNestedLoopJoin" in operators
        else:
            assert "HashJoin" in operators

    def test_database_index_join_matches_hash_join(self):
        database = small_large_database()
        query = BaseRelation("R").select(eq("A", 1)).join(BaseRelation("S"), "B", "C")
        via_index = query.run(database, "idx", force_join="index-nested-loop")
        via_hash = query.run(database, "hash", force_join="hash")
        assert via_index.row_set() == via_hash.row_set()
        assert via_index.schema.attributes == via_hash.schema.attributes

    def test_index_pool_is_shared_across_runs(self):
        database = small_large_database()
        pool = index_pool_for(database)
        query = BaseRelation("R").select(eq("A", 1)).join(BaseRelation("S"), "B", "C")
        query.run(database, "first", force_join="index-nested-loop")
        built = len(pool)
        query.run(database, "second", force_join="index-nested-loop")
        assert len(pool) == built  # the second run probed cached indexes


class TestExecutionMetrics:
    def test_metrics_report_rows_time_and_estimates(self):
        database = small_large_database()
        query = BaseRelation("R").select(eq("A", 1)).join(BaseRelation("S"), "B", "C")
        result = query.run(database, "out", collect_metrics=True)
        assert isinstance(result, ExecutionResult)
        reference = query.run(database, "out2")
        assert result.value.row_set() == reference.row_set()

        metrics = result.metrics
        assert metrics.engine == "database"
        assert metrics.records
        final = metrics.records[-1]
        assert final.rows_out == len(result.value)
        assert final.seconds >= 0.0
        assert final.estimated_rows is not None
        assert final.cardinality_error is not None and final.cardinality_error >= 1.0
        assert "actual" in result.physical.explain()
        assert "execution metrics" in metrics.summary()

    def test_metrics_fold_into_the_statistics_catalog(self):
        database = small_large_database()
        query = BaseRelation("R").select(eq("A", 1)).join(BaseRelation("S"), "B", "C")
        result = query.run(database, "out", collect_metrics=True)
        observed = catalog_for(database).observed_cardinalities
        assert observed
        join_label = result.metrics.join_records()[0].label
        ewma, estimated, count = observed[join_label]
        assert count == 1
        assert ewma == result.metrics.join_records()[0].rows_out

    def test_uwsdt_metrics_and_result_name(self):
        uwsdt = UWSDT.from_orset_relations(ORACLE_RELATIONS)
        query = BaseRelation("R").select(eq("A0", 1))
        result = query.run(uwsdt, "P", collect_metrics=True)
        assert result.value == "P"
        assert uwsdt.schema.has_relation("P")
        assert result.metrics.engine == "uwsdt"
        assert result.metrics.records[-1].rows_out == uwsdt.template_size("P")


class TestIntersection:
    def test_intersection_matches_brute_force_on_all_engines(self):
        query = (
            BaseRelation("R")
            .select(eq("A0", 1))
            .intersection(BaseRelation("R").select(AttrAttr("A0", "<", "A1")))
        )
        base = WSD.from_orset_relations(ORACLE_RELATIONS)
        reference = naive.evaluate_query(base.rep(), query, "P")

        uwsdt = UWSDT.from_orset_relations(ORACLE_RELATIONS)
        query.run(uwsdt, "P")
        uwsdt.validate()
        assert_same_result_distribution(uwsdt.rep(), reference, "P")

        wsd = WSD.from_orset_relations(ORACLE_RELATIONS)
        query.run(wsd, "P")
        assert_same_result_distribution(wsd.rep(), reference, "P")

        certain_rows = [
            row
            for relation in ORACLE_RELATIONS
            for row in ([] if relation.schema.name != "R" else relation.rows)
            if not any(isinstance(value, OrSet) for value in row)
        ]
        database = Database(
            [
                Relation(RelationSchema("R", ("A0", "A1")), certain_rows),
                Relation(RelationSchema("S", ("B0", "B1")), []),
            ]
        )
        planned = query.run(database, "planned")
        classical = evaluate_on_database(query, database, "classical")
        assert planned.row_set() == classical.row_set()

    def test_selection_pushes_into_both_intersection_sides(self):
        query = BaseRelation("R").intersection(BaseRelation("R")).select(eq("A0", 1))
        statistics = Statistics(
            {"R": 100}, attributes={"R": ("A0", "A1")}, engine="database"
        )
        built = query.plan(statistics=statistics)
        rendered = repr(built.chosen)
        assert rendered.count("σ") == 2  # one pushed copy per side

    def test_intersection_repr_and_text(self):
        query = BaseRelation("R").intersection(BaseRelation("S"))
        assert "∩" in repr(query)
        assert "∩" in query.to_text()


class TestQueryText:
    def test_to_text_is_indented_and_symbolic(self):
        query = (
            BaseRelation("R")
            .select(eq("A0", 1))
            .join(BaseRelation("S"), "A1", "B0")
            .project(["A0", "B1"])
        )
        text = query.to_text()
        lines = text.splitlines()
        assert lines[0].startswith("π[")
        assert any(line.lstrip().startswith("σ[") for line in lines)
        assert any("⋈" in line for line in lines)
        assert any(line.startswith("      ") for line in lines)  # depth ≥ 3

    def test_plan_explain_includes_chosen_tree(self):
        query = BaseRelation("R").select(eq("A0", 1))
        statistics = Statistics({"R": 10}, attributes={"R": ("A0", "A1")})
        explained = query.plan(statistics=statistics).explain()
        assert "chosen tree:" in explained
        assert "σ[" in explained


class TestFeedback:
    def _metrics(self):
        database = small_large_database(small=8, large=800)
        query = (
            BaseRelation("R")
            .select(eq("A", 1))
            .join(BaseRelation("S"), "B", "C")
            .project(["A", "D"])
        )
        return query.run(database, "out", collect_metrics=True).metrics

    def test_one_iteration_reduces_cost_model_error(self):
        metrics = self._metrics()
        clear_cost_profile()
        before_model = Statistics(engine="database").cost_model()
        error_before = cost_model_error(metrics, before_model)
        updated = fold_metrics(metrics, before_model, alpha=1.0)
        error_after = cost_model_error(metrics, updated)
        assert error_after <= error_before
        if error_before > 0.02:
            assert error_after < error_before

    def test_apply_feedback_persists_through_load_cost_profile(self, tmp_path):
        metrics = self._metrics()
        path = tmp_path / "tuned.json"
        try:
            clear_cost_profile()
            result = apply_feedback(metrics, alpha=1.0, output_path=str(path))
            assert result.engine == "database"
            assert result.improved or result.error_before <= 0.02
            models = load_cost_profile(str(path))
            assert set(models) == {"database", "wsd", "uwsdt", "columnar", "sharded"}
            assert models["database"].constants() == result.model.constants()
            # The loaded profile is what the planner now serves.
            served = Statistics(engine="database").cost_model()
            assert served.constants() == result.model.constants()
            assert served.source == "calibrated"
        finally:
            clear_cost_profile()

    def test_feedback_is_a_noop_without_chargeable_operators(self):
        from repro.core.exec import ExecutionMetrics

        empty = ExecutionMetrics("database", [])
        model = Statistics(engine="database").cost_model()
        assert fold_metrics(empty, model, alpha=1.0) is model
        assert cost_model_error(empty, model) == 0.0
