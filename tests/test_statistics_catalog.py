"""Statistics catalog: version-keyed caching, invalidation, provenance.

Covers the PR's acceptance criteria directly:

* planning the same (or a similar) query twice against an unchanged engine
  performs **zero** re-sampling, asserted via the module-level sampling
  call counter;
* mutating a relation after planning — classical inserts, template inserts,
  component surgery, the chase — invalidates exactly the affected cached
  entries, and replanning picks up changed estimates;
* ``Plan.explain()`` reports, per relation, whether its costs came from a
  cached sample, a fresh sample, or the fixed-constant fallback.
"""

import pytest

from repro.core import UWSDT, WSD
from repro.core.algebra import BaseRelation
from repro.core.chase import FunctionalDependency, chase_uwsdt, chase_wsd
from repro.core.planner import Statistics, catalog_for, sampling_call_count
from repro.core.planner.catalog import StatisticsCatalog
from repro.relational import Database, Relation, RelationSchema, attr_eq, eq
from repro.worlds import OrSet, OrSetRelation


def _database(rows_r=40, rows_s=20):
    r = Relation(
        RelationSchema("R", ("K", "A")), [(i % 5, i) for i in range(rows_r)]
    )
    s = Relation(
        RelationSchema("S", ("K2", "B")), [(i % 5, i) for i in range(rows_s)]
    )
    return Database([r, s])


def _orsets():
    r = OrSetRelation.from_dicts(
        "R",
        ["K", "A"],
        [{"K": i % 3, "A": OrSet([i, i + 10]) if i % 4 == 0 else i} for i in range(12)],
    )
    s = OrSetRelation.from_dicts(
        "S", ["K2", "B"], [{"K2": i % 3, "B": i} for i in range(8)]
    )
    return [r, s]


def _chaseable_orsets():
    """Inputs on which ``FD R: K → A`` is satisfiable and correlating: the
    two K=1 tuples' or-sets overlap in A=2 only, so the chase must merge
    their components."""
    r = OrSetRelation.from_dicts(
        "R",
        ["K", "A"],
        [
            {"K": 1, "A": OrSet([2, 3])},
            {"K": 1, "A": OrSet([2, 4])},
            {"K": 2, "A": 5},
        ],
    )
    s = OrSetRelation.from_dicts("S", ["K2", "B"], [{"K2": 1, "B": 7}, {"K2": 2, "B": 8}])
    return [r, s]


JOIN_QUERY = BaseRelation("R").join(BaseRelation("S"), "K", "K2")


class TestZeroResamplingOnRepeat:
    def test_same_query_twice_on_database(self):
        database = _database()
        JOIN_QUERY.plan(database)
        before = sampling_call_count()
        plan2 = JOIN_QUERY.plan(database)
        assert sampling_call_count() == before
        assert plan2.statistics.provenance("R") == "cached-sample"
        assert plan2.statistics.provenance("S") == "cached-sample"

    def test_similar_query_reuses_samples(self):
        """A *different* query over the same relations also plans sample-free."""
        database = _database()
        JOIN_QUERY.plan(database)
        before = sampling_call_count()
        other = BaseRelation("R").select(eq("A", 3)).join(BaseRelation("S"), "K", "K2")
        built = other.plan(database)
        assert sampling_call_count() == before
        assert built.statistics.provenance("R") == "cached-sample"

    def test_same_query_twice_on_uwsdt_and_wsd(self):
        for engine in (UWSDT.from_orset_relations(_orsets()), WSD.from_orset_relations(_orsets())):
            JOIN_QUERY.plan(engine)
            before = sampling_call_count()
            plan2 = JOIN_QUERY.plan(engine)
            assert sampling_call_count() == before, type(engine).__name__
            assert plan2.statistics.provenance("R") == "cached-sample"

    def test_catalog_is_attached_once_per_engine(self):
        database = _database()
        catalog = catalog_for(database)
        assert catalog_for(database) is catalog
        assert catalog.kind == "database"
        # Copies get their own catalog lazily.
        assert catalog_for(database.copy()) is not catalog

    def test_statistics_views_share_sample_objects(self):
        """Warm views reuse the identical RelationSample (and its memoized
        histograms), not a re-sampled copy."""
        database = _database()
        first = Statistics.from_engine(database)
        first.sample("R").histogram("K")  # memoize a histogram
        second = Statistics.from_engine(database)
        assert second.sample("R") is first.sample("R")
        assert second.source == "catalog"


class TestMutationInvalidation:
    def test_database_insert_invalidates_only_that_relation(self):
        database = _database()
        plan1 = JOIN_QUERY.plan(database)
        # Skew R heavily towards one key: row count and the K histogram move.
        database.relation("R").insert_many((0, 1_000 + i) for i in range(200))
        before = sampling_call_count()
        plan2 = JOIN_QUERY.plan(database)
        assert sampling_call_count() == before + 1  # only R was re-sampled
        assert plan2.statistics.provenance("R") == "fresh-sample"
        assert plan2.statistics.provenance("S") == "cached-sample"
        assert plan2.statistics.row_count("R") == 240
        assert plan2.cost_before.cost != plan1.cost_before.cost

    def test_database_remove_invalidates(self):
        database = _database()
        JOIN_QUERY.plan(database)
        database.relation("S").remove((0, 0))
        plan2 = JOIN_QUERY.plan(database)
        assert plan2.statistics.provenance("S") == "fresh-sample"
        assert plan2.statistics.row_count("S") == 19

    def test_uwsdt_template_insert_invalidates(self):
        uwsdt = UWSDT.from_orset_relations(_orsets())
        plan1 = JOIN_QUERY.plan(uwsdt)
        for i in range(100, 140):
            uwsdt.add_template_tuple("R", i, (0, i))
        plan2 = JOIN_QUERY.plan(uwsdt)
        assert plan2.statistics.provenance("R") == "fresh-sample"
        assert plan2.statistics.provenance("S") == "cached-sample"
        assert plan2.statistics.row_count("R") == 52
        assert plan2.cost_before.cost != plan1.cost_before.cost

    def test_uwsdt_chase_keeps_cached_statistics_correct(self):
        """The chase merges/filters components but writes neither templates
        nor the placeholder map — so cached entries stay valid, and they
        must agree exactly with what fresh sampling would produce."""
        uwsdt = UWSDT.from_orset_relations(_chaseable_orsets())
        JOIN_QUERY.plan(uwsdt)
        chase_uwsdt(uwsdt, [FunctionalDependency("R", ["K"], "A")])
        assert any(
            component.arity > 1 for component in uwsdt.components.values()
        ), "expected the chase to correlate placeholder fields"
        plan2 = JOIN_QUERY.plan(uwsdt)
        assert plan2.statistics.provenance("R") == "cached-sample"
        fresh = Statistics.from_uwsdt(uwsdt)
        assert plan2.statistics.row_count("R") == fresh.row_count("R")
        assert plan2.statistics.placeholder_density("R") == pytest.approx(
            fresh.placeholder_density("R")
        )
        assert plan2.statistics.sample("R").rows == fresh.sample("R").rows

    def test_uwsdt_query_execution_keeps_base_entries_valid(self):
        """Q̂ extends the representation with intermediates; the *base*
        relations are untouched, so their cached statistics survive."""
        uwsdt = UWSDT.from_orset_relations(_orsets())
        JOIN_QUERY.plan(uwsdt)
        JOIN_QUERY.run(uwsdt, "P", optimize=True)
        before = sampling_call_count()
        plan2 = JOIN_QUERY.plan(uwsdt)
        assert sampling_call_count() == before
        assert plan2.statistics.provenance("R") == "cached-sample"

    def test_wsd_component_surgery_invalidates(self):
        """WSD samples resolve fields *through* components, so chase surgery
        (which can force a formerly uncertain field to one value) must
        invalidate — unlike on the UWSDT, where templates are untouched."""
        wsd = WSD.from_orset_relations(_chaseable_orsets())
        JOIN_QUERY.plan(wsd)
        chase_wsd(wsd, [FunctionalDependency("R", ["K"], "A")])
        plan2 = JOIN_QUERY.plan(wsd)
        assert plan2.statistics.provenance("R") == "fresh-sample"

    def test_explicit_invalidate(self):
        database = _database()
        catalog = catalog_for(database)
        JOIN_QUERY.plan(database)
        assert len(catalog) == 2
        catalog.invalidate("R")
        assert len(catalog) == 1
        catalog.invalidate()
        assert len(catalog) == 0

    def test_placeholder_counts_stay_in_sync_with_field_map(self):
        """The incremental per-relation placeholder counters must equal a
        recount of ``field_to_cid`` after every mutation path — ingestion,
        query execution (including the difference operator's result-tuple
        dropping) and the chase."""
        uwsdt = UWSDT.from_orset_relations(_chaseable_orsets())
        query = (
            BaseRelation("R")
            .join(BaseRelation("S"), "K", "K2")
            .difference(BaseRelation("R").select(eq("K", 1)).join(BaseRelation("S"), "K", "K2"))
        )
        query.run(uwsdt, "P", optimize=True)
        chase_uwsdt(uwsdt, [FunctionalDependency("R", ["K"], "A")])
        for relation_schema in uwsdt.schema:
            recount = sum(
                1 for f in uwsdt.field_to_cid if f.relation == relation_schema.name
            )
            assert uwsdt.relation_placeholder_count(relation_schema.name) == recount
        copied = uwsdt.copy()
        assert copied.relation_placeholder_count("R") == uwsdt.relation_placeholder_count("R")

    def test_watcher_drops_entry_eagerly(self):
        """The Relation mutation hook frees the stale entry immediately,
        before any replan polls the version key."""
        database = _database()
        catalog = catalog_for(database)
        JOIN_QUERY.plan(database)
        assert len(catalog) == 2
        database.relation("R").insert((4, 999))
        assert len(catalog) == 1  # R's entry dropped by the watcher


class TestExplainProvenance:
    def test_explain_reports_cached_fresh_and_fallback(self):
        database = _database()
        plan1 = JOIN_QUERY.plan(database)
        assert "fresh sample" in plan1.explain()
        plan2 = JOIN_QUERY.plan(database)
        explained = plan2.explain()
        assert "R: cached sample" in explained
        assert "S: cached sample" in explained
        assert "cost model: database (hand-tuned constants)" in explained

    def test_explain_reports_mixed_provenance(self):
        database = _database()
        JOIN_QUERY.plan(database)
        database.relation("R").insert((0, 12_345))
        explained = JOIN_QUERY.plan(database).explain()
        assert "R: fresh sample" in explained
        assert "S: cached sample" in explained

    def test_explain_reports_fixed_constant_fallback(self):
        stats = Statistics(
            row_counts={"R": 10, "S": 10},
            attributes={"R": ("K", "A"), "S": ("K2", "B")},
        )
        from repro.core.planner import plan as build_plan

        explained = build_plan(JOIN_QUERY, stats).explain()
        assert "R: fixed-constant fallback" in explained


class TestCatalogEdges:
    def test_unknown_engine_rejected(self):
        with pytest.raises(TypeError):
            StatisticsCatalog(object())

    def test_sample_size_change_rebuilds(self):
        database = _database()
        catalog = catalog_for(database)
        entry_small, _ = catalog.entry("R", sample_size=4)
        assert len(entry_small.sample) == 4
        entry_large, source = catalog.entry("R", sample_size=16)
        assert source == "fresh-sample"
        assert len(entry_large.sample) == 16

    def test_zero_sample_size_yields_fixed_constants(self):
        database = _database()
        stats = Statistics.from_engine(database, sample_size=0)
        assert stats.sample("R") is None
        assert stats.provenance("R") == "fixed-constants"

    def test_restricted_view_samples_only_named_relations(self):
        database = _database()
        before = sampling_call_count()
        stats = Statistics.from_engine(database, sample_relations=("R",))
        assert sampling_call_count() == before + 1
        assert stats.sample("R") is not None
        assert stats.sample("S") is None
        # The restriction limits *sampling* only: true cardinalities and
        # schemas of other relations are still reported (pre-catalog API).
        assert stats.row_count("S") == 20
        assert stats.relation_attributes("S") == ("K2", "B")
        assert stats.provenance("S") == "fixed-constants"
