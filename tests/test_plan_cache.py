"""Plan-cache correctness: fingerprints, version-key invalidation, oracles.

The service's :class:`~repro.service.plan_cache.PlanCache` memoizes the
whole planning pipeline (rewrite + join-order DP + sampling + lowering)
keyed by the query fingerprint and validated against the catalog version
keys of every touched base relation.  The contract under test:

* equal query text ⇒ equal fingerprint ⇒ cache hit with **zero** sampling
  and **zero** planner invocations,
* any mutation of a touched base relation (insert / remove / template
  insert / chase) invalidates exactly the entries that touch it,
* a cache *hit* never changes results: executing the cached physical plan
  matches a freshly planned run on all three engines — fuzzed against the
  possible-worlds oracle on the UWSDT.
"""

import asyncio
import itertools

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import UWSDT, WSD
from repro.core.algebra import BaseRelation
from repro.core.chase import chase_uwsdt
from repro.core.exec import ColumnarBackend, backend_for, lower
from repro.relational.errors import QueryError
from repro.core.planner import plan_call_count, sampling_call_count
from repro.core.planner.catalog import catalog_for
from repro.relational import Database, InconsistentWorldSetError, Relation, RelationSchema
from repro.relational.predicates import AttrAttr, AttrConst
from repro.service import plan_cache_for
from repro.worlds import OrSet, OrSetRelation

from _fixtures import assert_same_result_distribution, budgeted_orset_relations
from test_catalog_chase_fuzz import _query_pool
from test_planner_oracle import ORACLE_SCHEMAS, chase_dependencies


def small_database() -> Database:
    r = Relation(RelationSchema("R", ("A", "RV")), [(i % 5, i) for i in range(40)])
    s = Relation(RelationSchema("S", ("B", "C")), [(i % 5, i % 7) for i in range(40)])
    t = Relation(RelationSchema("T", ("D", "TV")), [(i % 7, i) for i in range(40)])
    return Database([r, s, t])


def small_orset_relations():
    relations = []
    for name, attributes in ORACLE_SCHEMAS:
        schema = RelationSchema(name, attributes)
        relation = OrSetRelation(schema)
        relation.insert((1, OrSet([1, 2]), 3) if name == "R" else (1, 2, 3))
        relation.insert((2, 0, 1))
        relations.append(relation)
    return relations


def populate(cache, query, engine):
    """Plan + lower + store, as the service's miss path does."""
    plan = query.plan(engine)
    physical = lower(plan.chosen, backend_for(engine), plan.statistics)
    return cache.store(query.fingerprint(), plan, physical)


class TestFingerprints:
    def test_equal_queries_share_fingerprint(self):
        first = BaseRelation("R").join(BaseRelation("S"), "A", "B")
        second = BaseRelation("R").join(BaseRelation("S"), "A", "B")
        assert first is not second
        assert first.fingerprint() == second.fingerprint()

    def test_different_queries_differ(self):
        base = BaseRelation("R").select(AttrConst("A", "=", 1))
        other_constant = BaseRelation("R").select(AttrConst("A", "=", 2))
        other_shape = BaseRelation("R").select(AttrAttr("A", "=", "RV"))
        prints = {q.fingerprint() for q in (base, other_constant, other_shape)}
        assert len(prints) == 3


class TestDatabaseInvalidation:
    def test_hit_skips_sampling_and_planning(self):
        database = small_database()
        cache = plan_cache_for(database)
        query = BaseRelation("R").join(BaseRelation("S"), "A", "B")
        entry = populate(cache, query, database)

        plans_before = plan_call_count()
        samples_before = sampling_call_count()
        hit = cache.lookup(query.fingerprint())
        assert hit is entry
        result = query.run(database, physical=hit.physical)
        assert plan_call_count() == plans_before
        assert sampling_call_count() == samples_before
        assert sorted(result) == sorted(query.run(database, optimize=False))
        assert cache.hits == 1 and cache.misses == 0

    def test_insert_invalidates_exactly_the_touched_entries(self):
        database = small_database()
        cache = plan_cache_for(database)
        joined = BaseRelation("R").join(BaseRelation("S"), "A", "B")
        lone = BaseRelation("T").select(AttrConst("D", "=", 3))
        populate(cache, joined, database)
        populate(cache, lone, database)

        database.relation("R").insert((4, 999))
        assert cache.lookup(joined.fingerprint()) is None
        assert cache.lookup(lone.fingerprint()) is not None
        assert cache.invalidations == 1

    def test_remove_invalidates(self):
        database = small_database()
        cache = plan_cache_for(database)
        lone = BaseRelation("T").select(AttrConst("D", "=", 3))
        populate(cache, lone, database)
        database.relation("T").remove((0, 0))
        assert cache.lookup(lone.fingerprint()) is None

    def test_refreshed_entry_serves_again(self):
        database = small_database()
        cache = plan_cache_for(database)
        query = BaseRelation("R").join(BaseRelation("S"), "A", "B")
        populate(cache, query, database)
        database.relation("R").insert((4, 998))
        assert cache.lookup(query.fingerprint()) is None
        refreshed = populate(cache, query, database)
        assert cache.lookup(query.fingerprint()) is refreshed
        result = query.run(database, physical=refreshed.physical)
        assert sorted(result) == sorted(query.run(database, optimize=False))


class TestRepresentationEngines:
    def test_uwsdt_template_insert_invalidates(self):
        uwsdt = UWSDT.from_orset_relations(small_orset_relations())
        cache = plan_cache_for(uwsdt)
        query = BaseRelation("R").join(BaseRelation("S"), "A1", "B1")
        populate(cache, query, uwsdt)
        assert cache.lookup(query.fingerprint()) is not None

        uwsdt.add_template_tuple("R", "fresh", (7, 7, 7))
        assert cache.lookup(query.fingerprint()) is None

    def test_uwsdt_cached_physical_matches_cold_plan(self):
        uwsdt = UWSDT.from_orset_relations(small_orset_relations())
        cache = plan_cache_for(uwsdt)
        query = BaseRelation("R").join(BaseRelation("S"), "A1", "B1")
        entry = populate(cache, query, uwsdt)

        warm_copy = uwsdt.copy()
        query.run(warm_copy, "P", physical=entry.physical)
        cold_copy = uwsdt.copy()
        query.run(cold_copy, "P", optimize=False)
        assert_same_result_distribution(warm_copy.rep(), cold_copy.rep(), "P")

    def test_wsd_cache_is_conservative(self):
        # Every Q̂ run extends the WSD and bumps its revision — the version
        # key the cache snapshots — so WSD entries never outlive an
        # execution.  Always-miss is the documented conservative behavior.
        wsd = WSD.from_orset_relations(small_orset_relations())
        cache = plan_cache_for(wsd)
        query = BaseRelation("R").join(BaseRelation("S"), "A1", "B1")
        entry = populate(cache, query, wsd)
        assert cache.lookup(query.fingerprint()) is entry

        query.run(wsd, "P1", physical=entry.physical)
        assert cache.lookup(query.fingerprint()) is None
        assert cache.invalidations == 1

    def test_wsd_cached_physical_matches_cold_plan(self):
        wsd = WSD.from_orset_relations(small_orset_relations())
        cache = plan_cache_for(wsd)
        query = BaseRelation("S").product(BaseRelation("T")).select(AttrAttr("B0", "=", "C0"))
        entry = populate(cache, query, wsd)

        warm_copy = wsd.copy()
        query.run(warm_copy, "P", physical=entry.physical)
        cold_copy = wsd.copy()
        query.run(cold_copy, "P", optimize=False)
        assert_same_result_distribution(warm_copy.rep(), cold_copy.rep(), "P")


class TestBackendKeying:
    """The cache key includes the executing backend: a row-backend plan
    cached for a query must never be served to a columnar request (its
    physical tree has no Materialize/Dematerialize boundaries, so the
    columnar backend would run it row-at-a-time — or worse, a columnar
    tree handed to a row backend would crash on batch handles)."""

    def test_cached_row_plan_is_not_served_to_a_columnar_request(self):
        database = small_database()
        cache = plan_cache_for(database)
        query = BaseRelation("R").join(BaseRelation("S"), "A", "B")
        row_entry = populate(cache, query, database)

        # Same fingerprint, different backend: must miss, not serve the
        # row plan.
        assert cache.lookup(query.fingerprint(), "columnar") is None

        plan = query.plan(database)
        columnar_physical = lower(plan.chosen, ColumnarBackend(database), plan.statistics)
        columnar_entry = cache.store(query.fingerprint(), plan, columnar_physical)

        # Both entries coexist under the same fingerprint, keyed by backend.
        assert columnar_entry is not row_entry
        assert cache.lookup(query.fingerprint(), "columnar") is columnar_entry
        assert cache.lookup(query.fingerprint()) is row_entry
        assert row_entry.backend == "database"
        assert columnar_entry.backend == "columnar"

        # And each executes to the same rows on its own backend.
        expected = sorted(query.run(database, optimize=False))
        assert sorted(query.run(database, physical=row_entry.physical)) == expected
        assert (
            sorted(
                query.run(
                    database,
                    physical=columnar_entry.physical,
                    backend=ColumnarBackend(database),
                )
            )
            == expected
        )

    def test_executing_a_plan_on_the_wrong_backend_raises(self):
        database = small_database()
        query = BaseRelation("R").join(BaseRelation("S"), "A", "B")
        plan = query.plan(database)
        columnar_physical = lower(plan.chosen, ColumnarBackend(database), plan.statistics)
        with pytest.raises(QueryError):
            columnar_physical.execute(backend_for(database), "mismatch")

    def test_invalidate_with_backend_pops_only_that_entry(self):
        database = small_database()
        cache = plan_cache_for(database)
        query = BaseRelation("R").join(BaseRelation("S"), "A", "B")
        row_entry = populate(cache, query, database)
        plan = query.plan(database)
        columnar_physical = lower(plan.chosen, ColumnarBackend(database), plan.statistics)
        cache.store(query.fingerprint(), plan, columnar_physical)

        cache.invalidate(query.fingerprint(), reason="replan", backend="columnar")
        assert cache.lookup(query.fingerprint(), "columnar") is None
        assert cache.lookup(query.fingerprint()) is row_entry

        # Fingerprint-only invalidation still sweeps every backend's entry.
        cache.invalidate(query.fingerprint())
        assert cache.lookup(query.fingerprint()) is None

    def test_service_keys_cache_entries_by_backend(self):
        from repro.service import QueryService

        async def scenario():
            service = QueryService()
            service.register_engine("database", small_database())
            session = service.session("database")
            query = BaseRelation("R").join(BaseRelation("S"), "A", "B")

            row_run = await session.execute(query)
            columnar_run = await session.execute(query, backend="columnar")
            # The columnar request must not hit the row entry...
            assert not row_run.cached and not columnar_run.cached
            assert row_run.backend == "database"
            assert columnar_run.backend == "columnar"
            assert sorted(row_run.value) == sorted(columnar_run.value)

            # ...but each backend's own entry serves repeats.
            assert (await session.execute(query)).cached
            assert (await session.execute(query, backend="columnar")).cached

        asyncio.run(scenario())


operations = st.lists(
    st.sampled_from(["chase", "insert", "remove", "run", "run"]),
    min_size=1,
    max_size=5,
)


class TestPlanCacheChaseFuzz:
    """The chase-fuzz machinery, retargeted at the plan cache.

    Invariant: whatever interleaving of chases and template mutations the
    engine went through, a cache *hit* executes to the same possible-worlds
    distribution as a cold fresh plan — i.e. version-key validation never
    serves a stale physical plan.
    """

    @given(
        relations=budgeted_orset_relations(ORACLE_SCHEMAS, max_rows=2, uncertain_budget=3),
        ops=operations,
        data=st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_hits_never_serve_stale_plans(self, relations, ops, data):
        warm = UWSDT.from_orset_relations(relations)
        cache = plan_cache_for(warm)
        counter = itertools.count()
        executed_any_run = False

        for op in list(ops) + ["run"]:
            if op == "chase":
                dependency = data.draw(chase_dependencies())
                try:
                    chase_uwsdt(warm, [dependency])
                except InconsistentWorldSetError:
                    assume(False)
                warm.validate()
            elif op == "insert":
                warm.add_template_tuple("R", f"fuzz{next(counter)}", (1, 2, 3))
            elif op == "remove":
                template = warm.templates["R"]
                row = next(
                    (
                        row
                        for row in template
                        if not any(
                            field.tuple_id == row[0]
                            for field in warm.field_to_cid
                            if field.relation == "R"
                        )
                    ),
                    None,
                )
                if row is not None:
                    template.remove(row)
            else:
                executed_any_run = True
                query = data.draw(st.sampled_from(_query_pool()))
                entry = cache.lookup(query.fingerprint())
                served_from_cache = entry is not None
                if entry is None:
                    entry = populate(cache, query, warm)

                warm_copy = warm.copy()
                query.run(warm_copy, "P", physical=entry.physical)
                warm_copy.validate()
                cold_copy = warm.copy()
                query.run(cold_copy, "P", optimize=False)
                assert_same_result_distribution(warm_copy.rep(), cold_copy.rep(), "P")

                if served_from_cache:
                    # A hit must have been validated against live version
                    # keys, so an immediate lookup hits again.
                    assert cache.lookup(query.fingerprint()) is entry

        assert executed_any_run
