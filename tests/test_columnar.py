"""The columnar vectorized backend: batches, kernels, boundaries, auto-pick.

Four layers of coverage:

* :class:`~repro.core.exec.columnar.ColumnBatch` round-trips exactly —
  rows → columns → rows preserves order, bag duplicates and placeholder
  *identity* (the ``?`` sentinel object itself), across the oracle schemas
  and the 50-attribute census schema (property test),
* the backend produces the same results as the row backend on Database and
  UWSDT engines, with the expected Materialize/Dematerialize boundaries
  (uncertain subtrees stay row-at-a-time),
* backend selection: the ``REPRO_BACKEND`` env var, ``"auto"`` requiring a
  calibrated columnar model, and WSD falling back to the row backend,
* the acceptance bar: smoke-calibrated columnar per-tuple select/join
  constants sit below the row (database) backend's.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.census.schema import census_schema
from repro.core import UWSDT, WSD
from repro.core.algebra import BaseRelation
from repro.core.exec import (
    BACKEND_ENV,
    ColumnarBackend,
    ColumnBatch,
    Dematerialize,
    Materialize,
    backend_for,
    resolve_backend,
)
from repro.core.planner import clear_cost_profile
from repro.core.planner.cost import CostModel
from repro.relational import Database, Relation, RelationSchema
from repro.relational.errors import QueryError
from repro.relational.predicates import AttrAttr, AttrConst
from repro.relational.values import PLACEHOLDER, is_placeholder
from repro.worlds import OrSet, OrSetRelation

from _fixtures import assert_same_result_distribution
from test_planner_oracle import ORACLE_SCHEMAS


@pytest.fixture(autouse=True)
def _no_profile_leaks():
    clear_cost_profile()
    yield
    clear_cost_profile()


# --------------------------------------------------------------------------- #
# ColumnBatch round-trip (property)
# --------------------------------------------------------------------------- #

#: Schemas the round-trip draws from: every oracle schema plus the paper's
#: 50-attribute census relation.
ROUND_TRIP_SCHEMAS = tuple(attrs for _, attrs in ORACLE_SCHEMAS) + (
    tuple(census_schema().attributes),
)

_value = st.one_of(
    st.integers(min_value=-3, max_value=3),
    st.text(alphabet="abc", max_size=2),
    st.just(None),
    st.just(PLACEHOLDER),
)


@st.composite
def _schema_and_rows(draw):
    attributes = draw(st.sampled_from(ROUND_TRIP_SCHEMAS))
    max_rows = 4 if len(attributes) > 10 else 8
    row = st.tuples(*[_value for _ in attributes])
    # Bag semantics: duplicates are deliberately allowed (unique=False).
    rows = draw(st.lists(row, min_size=0, max_size=max_rows))
    return attributes, rows


class TestColumnBatchRoundTrip:
    @given(_schema_and_rows())
    @settings(max_examples=80, deadline=None)
    def test_rows_to_columns_to_rows_is_exact(self, schema_and_rows):
        attributes, rows = schema_and_rows
        batch = ColumnBatch.from_rows(attributes, rows)

        assert batch.attributes == tuple(attributes)
        assert len(batch) == len(rows)
        restored = batch.to_rows()
        # Order and duplicates (bag semantics) are preserved exactly.
        assert restored == [tuple(row) for row in rows]
        # Placeholder *identity*: the sentinel object itself survives.
        for row, original in zip(restored, rows):
            for value, original_value in zip(row, original):
                if original_value is PLACEHOLDER:
                    assert value is PLACEHOLDER
        # The masks agree cell-by-cell with the sentinel predicate.
        for position, mask in enumerate(batch.placeholder_masks):
            assert mask == [is_placeholder(row[position]) for row in rows]
        assert batch.placeholder_count == sum(
            1 for row in rows for value in row if is_placeholder(value)
        )
        # Default row ids are the row positions, in order.
        assert batch.row_ids == list(range(len(rows)))

    @given(_schema_and_rows())
    @settings(max_examples=40, deadline=None)
    def test_gather_preserves_values_and_ids(self, schema_and_rows):
        attributes, rows = schema_and_rows
        batch = ColumnBatch.from_rows(attributes, rows)
        indices = list(range(len(rows) - 1, -1, -1))  # reversed, keeps dups
        gathered = batch.gather(indices)
        assert gathered.to_rows() == [tuple(rows[i]) for i in indices]
        assert gathered.row_ids == indices


# --------------------------------------------------------------------------- #
# Backend equivalence and boundary placement
# --------------------------------------------------------------------------- #


def small_database() -> Database:
    r = Relation(RelationSchema("R", ("A", "RV")), [(i % 5, i) for i in range(40)])
    s = Relation(RelationSchema("S", ("B", "C")), [(i % 5, i % 7) for i in range(40)])
    t = Relation(RelationSchema("T", ("D", "TV")), [(i % 7, i) for i in range(40)])
    return Database([r, s, t])


def _operator_names(root):
    names = []
    stack = [root]
    while stack:
        node = stack.pop()
        names.append(node.op_name)
        stack.extend(node.children)
    return names


QUERIES = (
    BaseRelation("R").select(AttrConst("A", "=", 1)),
    BaseRelation("R").join(BaseRelation("S"), "A", "B"),
    BaseRelation("R").join(BaseRelation("S"), "A", "B").project(("A", "C")),
    BaseRelation("R").rename("A", "A9").select(AttrAttr("A9", "<", "RV")),
    BaseRelation("R").union(BaseRelation("R")),
    BaseRelation("R")
    .difference(BaseRelation("R").select(AttrConst("RV", ">=", 20)))
    .intersection(BaseRelation("R")),
    BaseRelation("S").product(BaseRelation("T")).select(AttrAttr("B", "=", "D")),
)


class TestColumnarEquivalence:
    @pytest.mark.parametrize("query", QUERIES, ids=range(len(QUERIES)))
    def test_database_results_match_row_backend(self, query):
        database = small_database()
        row_result = sorted(query.run(database))
        columnar_result = sorted(query.run(database, backend="columnar"))
        assert columnar_result == row_result

    def test_uwsdt_certain_join_matches_row_backend(self):
        def build():
            relations = []
            for name, attributes in ORACLE_SCHEMAS:
                relation = OrSetRelation(RelationSchema(name, attributes))
                relation.insert((1, OrSet([1, 2]), 3) if name == "T" else (1, 2, 3))
                relation.insert((2, 0, 1))
                relations.append(relation)
            return UWSDT.from_orset_relations(relations)

        # R and S are certain, T carries the or-set — the R⋈S subtree can go
        # columnar while anything touching T must stay on the row path.
        query = BaseRelation("R").join(BaseRelation("S"), "A1", "B1")
        row_engine, columnar_engine = build(), build()
        query.run(row_engine, "P")
        query.run(columnar_engine, "P", backend="columnar")
        columnar_engine.validate()
        assert_same_result_distribution(row_engine.rep(), columnar_engine.rep(), "P")

    def test_plan_contains_materialize_boundaries(self):
        database = small_database()
        # An attribute-attribute filter cannot become an IndexScan and a
        # self-union has no index join — both lower to columnar kernels.
        query = (
            BaseRelation("R").select(AttrAttr("A", "<", "RV")).union(BaseRelation("R"))
        )
        physical = query.physical_plan(database, backend="columnar")
        names = _operator_names(physical.root)
        assert physical.engine == "columnar"
        assert "Materialize" in names and "Dematerialize" in names
        # The root is always handed back as rows.
        assert physical.root.op_name == "Dematerialize"

    def test_uncertain_subtrees_get_no_boundaries(self):
        relation = OrSetRelation(RelationSchema("R", ("A0", "A1", "A2")))
        relation.insert((1, OrSet([1, 2]), 3))
        uwsdt = UWSDT.from_orset_relation(relation)
        query = BaseRelation("R").select(AttrConst("A0", "=", 1))
        physical = query.physical_plan(uwsdt, backend="columnar")
        names = _operator_names(physical.root)
        assert physical.engine == "columnar"
        assert "Materialize" not in names and "Dematerialize" not in names
        # The row-at-a-time fallback still executes correctly.
        query.run(uwsdt, "P", physical=physical, backend=ColumnarBackend(uwsdt))
        uwsdt.validate()


# --------------------------------------------------------------------------- #
# Backend selection
# --------------------------------------------------------------------------- #


class TestBackendSelection:
    def test_env_var_selects_columnar(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "columnar")
        backend = resolve_backend(small_database(), None)
        assert isinstance(backend, ColumnarBackend)
        assert backend.kind == "columnar"

    def test_default_is_the_row_backend(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        backend = resolve_backend(small_database(), None)
        assert backend.kind == "database"

    def test_unknown_spec_rejected(self):
        with pytest.raises(QueryError):
            resolve_backend(small_database(), "simd")

    def test_wsd_always_runs_row(self):
        relation = OrSetRelation(RelationSchema("R", ("A0", "A1", "A2")))
        relation.insert((1, OrSet([1, 2]), 3))
        wsd = WSD.from_orset_relation(relation)
        assert resolve_backend(wsd, "columnar").kind == "wsd"
        with pytest.raises(QueryError):
            ColumnarBackend(wsd)

    def test_auto_stays_row_until_calibrated(self):
        database = small_database()
        assert CostModel.for_engine("columnar").source != "calibrated"
        assert resolve_backend(database, "auto").kind == "database"

    def test_auto_follows_the_calibrated_constants(self):
        from repro.core.planner import install_cost_profile

        database = small_database()
        row_model = CostModel.for_engine("database")

        faster = CostModel.from_constants(
            "columnar",
            {name: value / 2 for name, value in row_model.constants().items()},
            source="calibrated",
        )
        install_cost_profile({"columnar": faster})
        assert resolve_backend(database, "auto").kind == "columnar"

        slower = CostModel.from_constants(
            "columnar",
            {name: value * 2 for name, value in row_model.constants().items()},
            source="calibrated",
        )
        install_cost_profile({"columnar": slower})
        assert resolve_backend(database, "auto").kind == "database"


# --------------------------------------------------------------------------- #
# The acceptance bar: calibrated columnar constants beat the row backend's
# --------------------------------------------------------------------------- #


class TestCalibratedConstants:
    def test_smoke_profile_columnar_constants_below_database(self, tmp_path):
        """``python -m repro.core.exec --smoke`` — one calibrate-and-feedback
        round per backend — must upload a profile whose columnar per-tuple
        select and join constants sit below the row (database) backend's."""
        from repro.core.exec.feedback import main
        from repro.core.planner import parse_cost_profile

        output = tmp_path / "tuned.json"
        columnar_output = tmp_path / "COST_PROFILE_columnar.json"
        code = main(
            [
                "--smoke",
                "--output",
                str(output),
                "--columnar-output",
                str(columnar_output),
            ]
        )
        assert code == 0
        assert columnar_output.exists()

        import json

        models = parse_cost_profile(json.loads(columnar_output.read_text()))
        columnar, database = models["columnar"], models["database"]
        assert columnar.source == "calibrated"
        assert database.source == "calibrated"
        assert columnar.select_tuple < database.select_tuple
        assert columnar.join_build < database.join_build
        assert columnar.join_probe < database.join_probe
