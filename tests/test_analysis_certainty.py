"""The certainty dataflow: facts, rendering, columnar eligibility, fallback.

* Lattice and context behavior: densities → certain/maybe, probe fallback,
  unknown for unseen relations, memoized probes.
* Per-attribute propagation through σ/π/δ/⋈/∪/−.
* ``Plan.explain()`` and ``explain_analyze`` annotate nodes with their
  verdicts when placeholder densities are known.
* Columnar eligibility is the static analysis' call: certain subtrees get
  boundaries, uncertain ones stay row-at-a-time (already covered by
  test_columnar; here we pin the analysis function itself), and the runtime
  materialize fallback counts into ``repro.columnar.materialize_fallbacks``
  when a cached plan goes stale under an engine mutation.
"""

import pytest

from repro.analysis.certainty import (
    CERTAIN,
    MAYBE,
    UNKNOWN,
    CertaintyContext,
    attribute_facts,
    lub,
    node_certainty,
    physical_certainty,
    render_with_certainty,
    subtree_certain,
)
from repro.analysis.schema import SchemaContext
from repro.core import UWSDT
from repro.core.algebra import BaseRelation
from repro.core.exec import ColumnarBackend
from repro.core.planner import Statistics, plan
from repro.obs.metrics import get_registry
from repro.relational import RelationSchema
from repro.relational.predicates import AttrAttr, AttrConst
from repro.worlds import OrSet, OrSetRelation


@pytest.fixture
def context() -> CertaintyContext:
    return CertaintyContext(densities={"R": 0.0, "S": 0.25})


class TestLatticeAndContext:
    def test_lub_ordering(self):
        assert lub(CERTAIN, CERTAIN) == CERTAIN
        assert lub(CERTAIN, MAYBE) == MAYBE
        assert lub(UNKNOWN, CERTAIN) == UNKNOWN
        assert lub(UNKNOWN, MAYBE) == MAYBE

    def test_density_facts(self, context):
        assert context.relation("R") == CERTAIN
        assert context.relation("S") == MAYBE
        assert context.relation("T") == UNKNOWN

    def test_probe_fallback_memoized(self):
        calls = []

        def probe(name):
            calls.append(name)
            return name == "R"

        context = CertaintyContext(probe=probe)
        assert context.relation("R") == CERTAIN
        assert context.relation("R") == CERTAIN
        assert context.relation("S") == MAYBE
        assert calls == ["R", "S"]

    def test_relations_combined(self, context):
        assert context.relations(["R"]) == CERTAIN
        assert context.relations(["R", "S"]) == MAYBE
        assert context.relations([]) == UNKNOWN

    def test_subtree_certain(self, context):
        assert subtree_certain(("R",), context)
        assert not subtree_certain(("R", "S"), context)
        # No provenance: the analysis cannot vouch, so not eligible.
        assert not subtree_certain((), context)

    def test_physical_certainty(self, context):
        assert physical_certainty(("R",), context) == CERTAIN
        assert physical_certainty((), context) == UNKNOWN


class TestDataflow:
    def test_facts_flow_through_operators(self, context):
        schema_context = SchemaContext(
            attributes={"R": ("A", "B"), "S": ("A", "B")}
        )
        query = (
            BaseRelation("R")
            .select(AttrConst("A", "=", 1))
            .rename("B", "B2")
            .union(BaseRelation("S").rename("B", "B2"))
        )
        facts = attribute_facts(query, context, schema_context)
        # Union takes the pointwise lub: certain R ⊔ maybe S = maybe.
        assert facts == (("A", MAYBE), ("B2", MAYBE))

    def test_join_concatenates_facts(self, context):
        schema_context = SchemaContext(
            attributes={"R": ("A", "B"), "S": ("C", "D")}
        )
        query = BaseRelation("R").join(BaseRelation("S"), "A", "C")
        facts = attribute_facts(query, context, schema_context)
        assert facts == (
            ("A", CERTAIN),
            ("B", CERTAIN),
            ("C", MAYBE),
            ("D", MAYBE),
        )

    def test_difference_keeps_left_facts(self, context):
        schema_context = SchemaContext(attributes={"R": ("A",), "S": ("A",)})
        query = BaseRelation("R").difference(BaseRelation("S"))
        assert attribute_facts(query, context, schema_context) == (("A", CERTAIN),)

    def test_node_certainty_is_subtree_lub(self, context):
        query = BaseRelation("R").product(BaseRelation("S").rename("A", "X"))
        facts = node_certainty(query, context)
        assert facts[id(query)] == MAYBE
        assert facts[id(query.left)] == CERTAIN

    def test_render_marks_certain_and_maybe(self, context):
        query = BaseRelation("R").union(BaseRelation("S"))
        rendered = render_with_certainty(query, context)
        assert rendered == "∪  [maybe]\n  R  [certain]\n  S  [maybe]"

    def test_render_leaves_unknown_unannotated(self):
        rendered = render_with_certainty(
            BaseRelation("T"), CertaintyContext(densities={})
        )
        assert rendered == "T"


class TestExplainAnnotations:
    def test_plan_explain_annotates_certainty(self):
        statistics = Statistics(
            row_counts={"R": 10},
            placeholder_densities={"R": 0.0},
            attributes={"R": ("A", "B")},
        )
        result = plan(BaseRelation("R").select(AttrConst("A", "=", 1)), statistics)
        explained = result.explain()
        assert "[certain]" in explained

    def test_plan_explain_marks_uncertain_sources(self):
        statistics = Statistics(
            row_counts={"R": 10},
            placeholder_densities={"R": 0.4},
            attributes={"R": ("A", "B")},
        )
        result = plan(BaseRelation("R"), statistics)
        assert "[maybe]" in result.explain()

    def test_explain_analyze_carries_certainty(self):
        relation = OrSetRelation(RelationSchema("R", ("A0", "A1", "A2")))
        relation.insert((1, OrSet([1, 2]), 3))
        relation.insert((2, 0, 1))
        uwsdt = UWSDT.from_orset_relation(relation)
        report = BaseRelation("R").select(AttrConst("A0", "=", 1)).explain_analyze(uwsdt)
        assert "maybe" in report

    def test_explain_analyze_certain_database_unannotated_or_certain(self):
        # A Database engine reports density 0.0 everywhere: nodes tag certain.
        from repro.relational import Database, Relation

        database = Database(
            [Relation(RelationSchema("R", ("A", "B")), [(1, 2), (3, 4)])]
        )
        report = BaseRelation("R").select(AttrConst("A", "=", 1)).explain_analyze(database)
        assert "certain" in report


class TestColumnarEligibilityAndFallback:
    def _uwsdt(self):
        relation = OrSetRelation(RelationSchema("R", ("A0", "A1", "A2")))
        relation.insert((1, 2, 3))
        relation.insert((2, 0, 1))
        return UWSDT.from_orset_relation(relation)

    def test_certain_relation_gets_boundaries(self):
        # An attribute-attribute filter cannot collapse into an IndexScan,
        # so the certain subtree lowers through the columnar kernels.
        uwsdt = self._uwsdt()
        physical = (
            BaseRelation("R")
            .select(AttrAttr("A0", "<", "A2"))
            .physical_plan(uwsdt, backend="columnar")
        )
        assert physical.uses("Materialize") and physical.uses("Dematerialize")

    def test_stale_plan_fallback_is_counted(self):
        uwsdt = self._uwsdt()
        backend = ColumnarBackend(uwsdt)
        query = BaseRelation("R").select(AttrAttr("A0", "<", "A2"))
        physical = query.physical_plan(uwsdt, backend=backend)
        assert physical.uses("Materialize")
        # The engine mutates after lowering: R now carries a placeholder
        # field wired to a component, so ``relation_placeholder_count`` > 0.
        from repro.core import Component, FieldRef
        from repro.relational.values import PLACEHOLDER

        uwsdt.add_template_tuple("R", "t-new", (9, PLACEHOLDER, 9))
        uwsdt.new_component(Component((FieldRef("R", "t-new", "A1"),), [(7,), (8,)]))
        counter = get_registry().counter("repro.columnar.materialize_fallbacks")
        before = counter.value
        query.run(uwsdt, "P", physical=physical, backend=backend)
        assert counter.value == before + 1
        uwsdt.validate()
