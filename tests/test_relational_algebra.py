"""Unit and property tests for predicates, classical algebra, indexes and CSV I/O."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    BOTTOM,
    And,
    AttrAttr,
    AttrConst,
    HashIndex,
    Not,
    Or,
    PredicateError,
    Relation,
    RelationSchema,
    SchemaError,
    SortedIndex,
    TruePredicate,
    attr_eq,
    compare,
    difference,
    eq,
    equi_join,
    ge,
    group_count,
    gt,
    intersection,
    le,
    load_relation,
    lt,
    natural_join,
    ne,
    product,
    project,
    rename,
    save_relation,
    select,
    union,
)

from conftest import plain_relations


class TestPredicates:
    schema = RelationSchema("R", ("A", "B"))

    def test_attr_const_all_operators(self):
        row = (5, 10)
        assert eq("A", 5).evaluate(self.schema, row)
        assert ne("A", 6).evaluate(self.schema, row)
        assert lt("A", 6).evaluate(self.schema, row)
        assert le("A", 5).evaluate(self.schema, row)
        assert gt("B", 9).evaluate(self.schema, row)
        assert ge("B", 10).evaluate(self.schema, row)
        assert not eq("A", 6).evaluate(self.schema, row)

    def test_attr_attr(self):
        assert attr_eq("A", "B").evaluate(self.schema, (3, 3))
        assert not attr_eq("A", "B").evaluate(self.schema, (3, 4))
        assert AttrAttr("A", "<", "B").evaluate(self.schema, (3, 4))

    def test_boolean_combinators(self):
        predicate = And(eq("A", 1), Or(eq("B", 2), eq("B", 3)))
        assert predicate.evaluate(self.schema, (1, 3))
        assert not predicate.evaluate(self.schema, (1, 4))
        assert (~eq("A", 1)).evaluate(self.schema, (2, 2))
        assert (eq("A", 1) & eq("B", 2)).evaluate(self.schema, (1, 2))
        assert (eq("A", 9) | eq("B", 2)).evaluate(self.schema, (1, 2))

    def test_not_excludes_bottom_rows(self):
        predicate = Not(eq("A", 1))
        assert not predicate.evaluate(self.schema, (BOTTOM, 2))

    def test_bottom_never_matches(self):
        assert not eq("A", 1).evaluate(self.schema, (BOTTOM, 2))
        assert not compare(BOTTOM, "=", BOTTOM)
        assert not compare(1, "<", BOTTOM)

    def test_mixed_type_comparisons_do_not_raise(self):
        assert not compare("abc", "<", 5)
        assert compare("abc", "!=", 5)
        assert not compare("abc", "=", 5)

    def test_unknown_operator_rejected(self):
        with pytest.raises(PredicateError):
            AttrConst("A", "~~", 1)

    def test_attributes_deduplicated(self):
        predicate = And(eq("A", 1), eq("A", 2), eq("B", 3))
        assert predicate.attributes() == ("A", "B")

    def test_compile_matches_evaluate(self):
        predicate = And(gt("A", 1), Or(eq("B", 2), eq("B", 5)))
        compiled = predicate.compile(self.schema)
        for row in [(0, 2), (2, 2), (2, 5), (2, 7)]:
            assert compiled(row) == predicate.evaluate(self.schema, row)

    def test_true_predicate(self):
        assert TruePredicate().evaluate(self.schema, (1, 2))
        assert TruePredicate().attributes() == ()

    def test_empty_combinators_rejected(self):
        with pytest.raises(PredicateError):
            And()
        with pytest.raises(PredicateError):
            Or()


class TestClassicalAlgebra:
    def test_select(self, small_relation):
        result = select(small_relation, eq("DEPT", "eng"))
        assert result.row_set() == {("ann", "eng", 100), ("bob", "eng", 90)}

    def test_project_removes_duplicates(self, small_relation):
        result = project(small_relation, ["DEPT"])
        assert result.row_set() == {("eng",), ("hr",), ("ops",)}
        assert result.schema.attributes == ("DEPT",)

    def test_product(self, small_relation, departments):
        result = product(small_relation, departments)
        assert len(result) == len(small_relation) * len(departments)
        assert result.schema.attributes == ("NAME", "DEPT", "SALARY", "DNAME", "FLOOR")

    def test_product_requires_disjoint_attributes(self, small_relation):
        with pytest.raises(SchemaError):
            product(small_relation, small_relation)

    def test_union_difference_intersection(self):
        schema = RelationSchema("R", ("A",))
        left = Relation(schema, [(1,), (2,), (3,)])
        right = Relation(schema, [(3,), (4,)])
        assert union(left, right).row_set() == {(1,), (2,), (3,), (4,)}
        assert difference(left, right).row_set() == {(1,), (2,)}
        assert intersection(left, right).row_set() == {(3,)}

    def test_union_requires_compatibility(self, small_relation, departments):
        with pytest.raises(SchemaError):
            union(small_relation, departments)

    def test_rename(self, small_relation):
        result = rename(small_relation, "DEPT", "DEPARTMENT")
        assert "DEPARTMENT" in result.schema.attributes
        assert result.row_set() == small_relation.row_set()

    def test_equi_join_matches_product_select(self, small_relation, departments):
        joined = equi_join(small_relation, departments, "DEPT", "DNAME")
        manual = select(product(small_relation, departments), attr_eq("DEPT", "DNAME"))
        assert joined.row_set() == manual.row_set()

    def test_natural_join(self, small_relation):
        other = Relation(RelationSchema("Bonus", ("DEPT", "BONUS")), [("eng", 10), ("hr", 5)])
        joined = natural_join(small_relation, other)
        assert ("ann", "eng", 100, 10) in joined
        assert all(row[1] != "ops" for row in joined)

    def test_natural_join_without_shared_attributes_is_product(self, departments):
        other = Relation(RelationSchema("X", ("V",)), [(1,), (2,)])
        assert len(natural_join(departments, other)) == len(departments) * 2

    def test_group_count(self, small_relation):
        counts = dict((row[0], row[1]) for row in group_count(small_relation, ["DEPT"]))
        assert counts == {"eng": 2, "hr": 2, "ops": 1}
        with pytest.raises(SchemaError):
            group_count(small_relation, ["DEPT"], count_as="DEPT")

    @given(plain_relations(max_rows=8), st.integers(min_value=0, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_union_commutes_and_difference_disjoint(self, relation, split):
        rows = list(relation.rows)
        split = min(split, len(rows))
        left = Relation(relation.schema, rows[:split])
        right = Relation(relation.schema, rows[split:])
        assert union(left, right).row_set() == relation.row_set()
        assert union(left, right).row_set() == union(right, left).row_set()
        assert difference(left, right).row_set() & right.row_set() == set()
        assert intersection(left, right).row_set() == (left.row_set() & right.row_set())

    @given(plain_relations())
    @settings(max_examples=30, deadline=None)
    def test_select_then_project_subset_of_project(self, relation):
        attribute = relation.schema.attributes[0]
        selected = project(select(relation, ge(attribute, 2)), [attribute])
        everything = project(relation, [attribute])
        assert selected.row_set() <= everything.row_set()


class TestIndexes:
    def test_hash_index_lookup(self, small_relation):
        index = HashIndex(small_relation, ["DEPT"])
        assert len(index.lookup("eng")) == 2
        assert index.lookup("none") == []
        assert index.contains("hr")
        assert set(index.group_sizes().values()) == {2, 2, 1}

    def test_hash_index_composite_key(self, small_relation):
        index = HashIndex(small_relation, ["DEPT", "SALARY"])
        assert len(index.lookup("eng", 100)) == 1

    def test_hash_index_add(self, small_relation):
        index = HashIndex(small_relation, ["DEPT"])
        small_relation.insert(("fred", "eng", 50))
        index.add(("fred", "eng", 50))
        assert len(index.lookup("eng")) == 3

    def test_sorted_index_ranges(self, small_relation):
        index = SortedIndex(small_relation, "SALARY")
        assert [row[0] for row in index.range(90, 100)] == ["bob", "dan", "ann"]
        assert [row[0] for row in index.range(None, 79)] == ["eve"]
        assert index.min_key() == 70 and index.max_key() == 100
        assert index.equal(95)[0][0] == "dan"
        assert index.range(90, 100, include_low=False, include_high=False) == index.equal(95)

    def test_sorted_index_empty(self):
        relation = Relation(RelationSchema("R", ("A",)))
        index = SortedIndex(relation, "A")
        assert index.min_key() is None and index.max_key() is None and len(index) == 0


class TestCsvIO:
    def test_roundtrip_with_types_and_sentinels(self, tmp_path):
        from repro.relational import PLACEHOLDER

        relation = Relation(
            RelationSchema("R", ("A", "B")),
            [(1, "x"), (2, BOTTOM), (3, PLACEHOLDER)],
        )
        path = tmp_path / "r.csv"
        save_relation(relation, path)
        loaded = load_relation(path, types={"A": int})
        assert loaded.schema.name == "r"
        assert loaded.row_set() == relation.row_set()

    def test_load_missing_header(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            load_relation(path)

    def test_load_bad_arity(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("A,B\n1\n")
        with pytest.raises(SchemaError):
            load_relation(path)
