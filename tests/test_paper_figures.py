"""Worked examples from the paper's Section 4 figures, plus small API units."""

import pytest

from repro.baselines import naive
from repro.core import WSD, Component, FieldRef
from repro.core.algebra import BaseRelation, evaluate_on_wsd
from repro.core.fields import fields_of_tuple, format_tuple_id, product_tuple_id, union_tuple_id
from repro.relational import DatabaseSchema, RelationSchema, attr_eq, eq
from repro.relational.values import BOTTOM


@pytest.fixture
def figure10_wsd():
    """The 7-WSD of Figure 10 (b), representing the eight worlds of Figure 10 (a)."""
    schema = DatabaseSchema([RelationSchema("R", ("A", "B", "C"))])
    components = [
        Component((FieldRef("R", 1, "A"),), [(1,), (2,)], [0.5, 0.5]),
        Component(
            (FieldRef("R", 1, "B"), FieldRef("R", 1, "C"), FieldRef("R", 2, "B")),
            [(1, 0, 3), (2, 7, 4)],
            [0.5, 0.5],
        ),
        Component((FieldRef("R", 2, "A"),), [(4,), (5,)], [0.5, 0.5]),
        Component((FieldRef("R", 2, "C"),), [(0,)], [1.0]),
        Component((FieldRef("R", 3, "A"),), [(6,)], [1.0]),
        Component((FieldRef("R", 3, "B"),), [(6,)], [1.0]),
        Component((FieldRef("R", 3, "C"),), [(7,)], [1.0]),
    ]
    return WSD(schema, {"R": [1, 2, 3]}, components)


class TestFigure10Examples:
    def test_figure10_represents_eight_worlds(self, figure10_wsd):
        worlds = figure10_wsd.rep()
        assert len(worlds) == 8
        # Spot-check two of the eight worlds listed in Figure 10 (a).
        rows_sets = [frozenset(w.database.relation("R").rows) for w in worlds]
        assert frozenset({(1, 1, 0), (4, 3, 0), (6, 6, 7)}) in rows_sets
        assert frozenset({(2, 2, 7), (5, 4, 0), (6, 6, 7)}) in rows_sets

    def test_figure11a_selection_constant(self, figure10_wsd):
        """Figure 11 (a): P := σ_{C=7}(R) — worlds from the first joint local world lose t1."""
        reference = naive.evaluate_query(figure10_wsd.rep(), BaseRelation("R").select(eq("C", 7)), "P")
        evaluate_on_wsd(BaseRelation("R").select(eq("C", 7)), figure10_wsd, "P")
        got = figure10_wsd.rep()
        for world, expected in zip(sorted(got, key=lambda w: repr(w.database.canonical_form())),
                                   sorted(reference, key=lambda w: repr(w.database.canonical_form()))):
            assert world.database.relation("P").row_set() == expected.database.relation("P").row_set()
        # t2 is absent from P in every world (its C is always 0), t3 always present.
        possible_p = got.possible_tuples("P")
        assert (6, 6, 7) in possible_p
        assert all(row[2] == 7 for row in possible_p)

    def test_figure13_selection_attribute(self, figure10_wsd):
        """Figure 13: P := σ_{A=B}(R) represents five distinct result relations."""
        query = BaseRelation("R").select(attr_eq("A", "B"))
        reference = naive.query_answer_worlds(figure10_wsd.rep(), query, "P")
        evaluate_on_wsd(query, figure10_wsd, "P")
        result_only = figure10_wsd.restrict_to_relations(["P"])
        distinct_results = {
            frozenset(world.database.relation("P").rows) for world in result_only.rep()
        }
        expected_results = {
            frozenset(world.database.relation("P").rows) for world in reference
        }
        assert distinct_results == expected_results
        assert len(distinct_results) == 5
        sizes = sorted(len(rows) for rows in distinct_results)
        assert sizes == [1, 2, 2, 2, 3]

    def test_figure15_projection_presence(self):
        """Figure 15: π_A over a WSD where exactly one of two tuples exists per world."""
        schema = DatabaseSchema([RelationSchema("R", ("A", "B"))])
        components = [
            Component((FieldRef("R", 1, "A"),), [("a",)], [1.0]),
            Component((FieldRef("R", 2, "A"),), [("b",)], [1.0]),
            Component(
                (FieldRef("R", 1, "B"), FieldRef("R", 2, "B")),
                [("c", BOTTOM), (BOTTOM, "d")],
                [0.5, 0.5],
            ),
        ]
        wsd = WSD(schema, {"R": [1, 2]}, components)
        reference = naive.query_answer_worlds(wsd.rep(), BaseRelation("R").project(["A"]), "P")
        evaluate_on_wsd(BaseRelation("R").project(["A"]), wsd, "P")
        result_only = wsd.restrict_to_relations(["P"])
        got = {frozenset(w.database.relation("P").rows) for w in result_only.rep()}
        expected = {frozenset(w.database.relation("P").rows) for w in reference}
        assert got == expected == {frozenset({("a",)}), frozenset({("b",)})}

    def test_figure14_product(self, figure10_wsd):
        """Product of two uncertain relations: world counts multiply, pairs preserved."""
        schema = DatabaseSchema([RelationSchema("R", ("A",)), RelationSchema("S", ("B",))])
        components = [
            Component((FieldRef("R", 1, "A"),), [(1,), (2,)], [0.5, 0.5]),
            Component((FieldRef("S", 1, "B"),), [("x",), ("y",)], [0.5, 0.5]),
        ]
        wsd = WSD(schema, {"R": [1], "S": [1]}, components)
        query = BaseRelation("R").product(BaseRelation("S"))
        reference = naive.query_answer_worlds(wsd.rep(), query, "T")
        evaluate_on_wsd(query, wsd, "T")
        result_only = wsd.restrict_to_relations(["T"])
        got = {frozenset(w.database.relation("T").rows) for w in result_only.rep()}
        expected = {frozenset(w.database.relation("T").rows) for w in reference}
        assert got == expected
        assert len(got) == 4


class TestFieldHelpers:
    def test_field_labels_and_transforms(self):
        field = FieldRef("R", 3, "A")
        assert field.label() == "R.t3.A"
        assert field.with_relation("P") == FieldRef("P", 3, "A")
        assert field.with_tuple(5) == FieldRef("R", 5, "A")
        assert field.with_attribute("B") == FieldRef("R", 3, "B")
        assert field.same_tuple(FieldRef("R", 3, "Z"))
        assert not field.same_tuple(FieldRef("R", 4, "A"))

    def test_structured_tuple_ids(self):
        assert product_tuple_id(1, 2) == (1, 2)
        assert union_tuple_id("R", 7) == ("R", 7)
        assert format_tuple_id((1, (2, 3))) == "1_2_3"
        assert FieldRef("T", product_tuple_id(1, 2), "A").label() == "T.t1_2.A"

    def test_fields_of_tuple(self):
        fields = fields_of_tuple("R", 1, ("A", "B"))
        assert fields == (FieldRef("R", 1, "A"), FieldRef("R", 1, "B"))
