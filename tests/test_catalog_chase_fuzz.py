"""Catalog invalidation interleaved with chases and mutations (fuzz).

The ROADMAP's oracle follow-up: a warm statistics catalog must never change
query *results*.  The fuzz drives one long-lived UWSDT through a random
interleaving of

* ``chase`` steps (random FDs/EGDs — component merges and template drops),
* template ``insert``/``remove`` mutations (certain tuples, so the
  representation stays valid without component surgery),
* planned ``run`` steps.

After every mutation prefix, planning against the *warm* engine (whose
catalog has survived every previous step, relying on version keys and
mutation hooks for invalidation) must produce the same possible-worlds
result distribution as planning against a *cold* copy of the same engine
(``UWSDT.copy()`` deliberately carries no catalog) — and an immediate
replan against the unchanged warm engine must be served entirely from the
cache.
"""

import itertools

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import UWSDT
from repro.core.algebra import BaseRelation
from repro.core.chase import chase_uwsdt
from repro.core.component import Component
from repro.core.fields import FieldRef
from repro.core.planner import sampling_call_count
from repro.core.planner.catalog import catalog_for
from repro.core.exec import backend_for, lower
from repro.core.uwsdt import TID
from repro.relational import InconsistentWorldSetError
from repro.relational.predicates import AttrAttr, AttrConst
from repro.relational.values import PLACEHOLDER
from repro.service import plan_cache_for

from _fixtures import assert_same_result_distribution, budgeted_orset_relations
from test_planner_oracle import ORACLE_SCHEMAS, chase_dependencies

#: Query shapes the runs draw from: selection, join, set algebra — enough to
#: touch every base relation's cached statistics.
def _query_pool():
    return (
        BaseRelation("R").select(AttrConst("A0", "=", 1)),
        BaseRelation("R").join(BaseRelation("S"), "A1", "B1"),
        BaseRelation("R")
        .select(AttrAttr("A0", "<", "A1"))
        .union(BaseRelation("R"))
        .difference(BaseRelation("R").select(AttrConst("A2", ">=", 2))),
        BaseRelation("R").intersection(BaseRelation("R").select(AttrConst("A1", "=", 2))),
        BaseRelation("S")
        .product(BaseRelation("T"))
        .select(AttrAttr("B0", "=", "C0")),
    )


operations = st.lists(
    st.sampled_from(
        ["chase", "insert", "remove", "insert?", "remove?", "run", "run"]
    ),
    min_size=1,
    max_size=5,
)


def remove_placeholder_row(uwsdt, relation_name):
    """Drop one placeholder-bearing template row (with its components).

    Only rows whose components are wholly confined to the row can go —
    removing a shared component would orphan another row's placeholder.
    Returns True if a row was removed.
    """
    template = uwsdt.templates[relation_name]
    attributes = uwsdt.schema.relation(relation_name).attributes
    tid_position = template.schema.position(TID)
    for row in template:
        tuple_id = row[tid_position]
        cids = {
            uwsdt.field_to_cid[field]
            for field in (FieldRef(relation_name, tuple_id, a) for a in attributes)
            if field in uwsdt.field_to_cid
        }
        if not cids:
            continue
        confined = all(
            all(
                f.relation == relation_name and f.tuple_id == tuple_id
                for f in uwsdt.components[cid].fields
            )
            for cid in cids
        )
        if not confined:
            continue
        for cid in cids:
            uwsdt.remove_component(cid)
        template.remove(row)
        return True
    return False


class TestCatalogChaseFuzz:
    @given(
        relations=budgeted_orset_relations(ORACLE_SCHEMAS, max_rows=2, uncertain_budget=3),
        ops=operations,
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_warm_catalog_plans_match_cold_catalog_results(self, relations, ops, data):
        warm = UWSDT.from_orset_relations(relations)
        counter = itertools.count()
        catalog_for(warm)  # attach the catalog up front; it must survive everything
        executed_any_run = False

        for op in list(ops) + ["run"]:
            if op == "chase":
                dependency = data.draw(chase_dependencies())
                try:
                    chase_uwsdt(warm, [dependency])
                except InconsistentWorldSetError:
                    assume(False)
                warm.validate()
            elif op == "insert":
                warm.add_template_tuple("R", f"fuzz{next(counter)}", (1, 2, 3))
            elif op == "insert?":
                # A placeholder-bearing insert: the relation's placeholder
                # count changes, so the catalog's composite version key
                # (template version, placeholder count) must move.
                tuple_id = f"fuzz?{next(counter)}"
                certain = data.draw(st.integers(min_value=0, max_value=2))
                warm.add_template_tuple("R", tuple_id, (certain, PLACEHOLDER, 3))
                warm.new_component(
                    Component.uniform(FieldRef("R", tuple_id, "A1"), (1, 2))
                )
                warm.validate()
            elif op == "remove?":
                if remove_placeholder_row(warm, "R"):
                    warm.validate()
            elif op == "remove":
                # Only rows with no placeholder fields can be dropped without
                # component surgery; skip the step if none exists.
                template = warm.templates["R"]
                row = next(
                    (
                        row
                        for row in template
                        if not any(
                            field.tuple_id == row[0]
                            for field in warm.field_to_cid
                            if field.relation == "R"
                        )
                    ),
                    None,
                )
                if row is not None:
                    template.remove(row)
            else:
                executed_any_run = True
                query = data.draw(st.sampled_from(_query_pool()))

                cold_engine = warm.copy()
                assert getattr(cold_engine, "_statistics_catalog", None) is None

                warm_plan = query.plan(warm)
                cold_plan = query.plan(cold_engine)

                warm_copy = warm.copy()
                query.run(warm_copy, "P", plan=warm_plan)
                warm_copy.validate()
                cold_copy = warm.copy()
                query.run(cold_copy, "P", plan=cold_plan)

                assert_same_result_distribution(warm_copy.rep(), cold_copy.rep(), "P")

                # An immediate replan of the unchanged warm engine must be
                # served entirely from the catalog (and pick the same tree).
                calls_before = sampling_call_count()
                replanned = query.plan(warm)
                assert sampling_call_count() == calls_before
                assert repr(replanned.chosen) == repr(warm_plan.chosen)

        assert executed_any_run


class TestPlaceholderCountInvalidation:
    """Deterministic regressions for the composite version key.

    Component surgery (``new_component`` / ``remove_component``) changes a
    relation's placeholder count without writing the template relation —
    ``template.version`` alone would validate stale entries.  The catalog's
    key pairs the template version with the placeholder count, so pure
    component surgery must still move the key and invalidate both cached
    statistics and cached plans.
    """

    @staticmethod
    def _uncertain_uwsdt():
        uwsdt = UWSDT.from_orset_relations(
            [
                _orset("R", ("A0", "A1", "A2"), [(1, (1, 2), 3), (2, 0, 1)]),
                _orset("S", ("B0", "B1", "B2"), [(1, 2, 3)]),
                _orset("T", ("C0", "C1", "C2"), [(1, 2, 3)]),
            ]
        )
        uwsdt.validate()
        return uwsdt

    def test_component_surgery_moves_the_version_key(self):
        uwsdt = self._uncertain_uwsdt()
        catalog = catalog_for(uwsdt)
        before = catalog.version_key("R")

        (cid,) = {
            cid for field, cid in uwsdt.field_to_cid.items() if field.relation == "R"
        }
        uwsdt.remove_component(cid)  # template untouched, count drops
        after_removal = catalog.version_key("R")
        assert after_removal != before

        # Re-registering the component changes the count back, but the key
        # must not revert silently to a value equal to a *template* write —
        # it does revert to `before`, which is correct: the relation is in
        # the same statistical state again.
        field = FieldRef("R", 1, "A1")
        uwsdt.new_component(Component.uniform(field, (1, 2)))
        uwsdt.validate()
        assert catalog.version_key("R") == before

    def test_component_surgery_invalidates_catalog_entries_and_plans(self):
        uwsdt = self._uncertain_uwsdt()
        catalog = catalog_for(uwsdt)
        cache = plan_cache_for(uwsdt)
        query = BaseRelation("R").join(BaseRelation("S"), "A1", "B1")

        plan = query.plan(uwsdt)
        physical = lower(plan.chosen, backend_for(uwsdt), plan.statistics)
        cache.store(query.fingerprint(), plan, physical)
        assert cache.lookup(query.fingerprint()) is not None
        _, provenance = catalog.entry("R")
        assert provenance == "cached-sample"

        (cid,) = {
            cid for field, cid in uwsdt.field_to_cid.items() if field.relation == "R"
        }
        uwsdt.remove_component(cid)

        # Stale on both layers, despite zero template writes.
        assert cache.lookup(query.fingerprint()) is None
        _, provenance = catalog.entry("R")
        assert provenance == "fresh-sample"


def _orset(name, attributes, rows):
    from repro.relational import RelationSchema
    from repro.worlds import OrSet, OrSetRelation

    relation = OrSetRelation(RelationSchema(name, attributes))
    for row in rows:
        relation.insert(
            tuple(OrSet(list(v)) if isinstance(v, tuple) else v for v in row)
        )
    return relation
