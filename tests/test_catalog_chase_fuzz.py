"""Catalog invalidation interleaved with chases and mutations (fuzz).

The ROADMAP's oracle follow-up: a warm statistics catalog must never change
query *results*.  The fuzz drives one long-lived UWSDT through a random
interleaving of

* ``chase`` steps (random FDs/EGDs — component merges and template drops),
* template ``insert``/``remove`` mutations (certain tuples, so the
  representation stays valid without component surgery),
* planned ``run`` steps.

After every mutation prefix, planning against the *warm* engine (whose
catalog has survived every previous step, relying on version keys and
mutation hooks for invalidation) must produce the same possible-worlds
result distribution as planning against a *cold* copy of the same engine
(``UWSDT.copy()`` deliberately carries no catalog) — and an immediate
replan against the unchanged warm engine must be served entirely from the
cache.
"""

import itertools

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import UWSDT
from repro.core.algebra import BaseRelation
from repro.core.chase import chase_uwsdt
from repro.core.planner import sampling_call_count
from repro.core.planner.catalog import catalog_for
from repro.relational import InconsistentWorldSetError
from repro.relational.predicates import AttrAttr, AttrConst

from _fixtures import assert_same_result_distribution, budgeted_orset_relations
from test_planner_oracle import ORACLE_SCHEMAS, chase_dependencies

#: Query shapes the runs draw from: selection, join, set algebra — enough to
#: touch every base relation's cached statistics.
def _query_pool():
    return (
        BaseRelation("R").select(AttrConst("A0", "=", 1)),
        BaseRelation("R").join(BaseRelation("S"), "A1", "B1"),
        BaseRelation("R")
        .select(AttrAttr("A0", "<", "A1"))
        .union(BaseRelation("R"))
        .difference(BaseRelation("R").select(AttrConst("A2", ">=", 2))),
        BaseRelation("R").intersection(BaseRelation("R").select(AttrConst("A1", "=", 2))),
        BaseRelation("S")
        .product(BaseRelation("T"))
        .select(AttrAttr("B0", "=", "C0")),
    )


operations = st.lists(
    st.sampled_from(["chase", "insert", "remove", "run", "run"]),
    min_size=1,
    max_size=5,
)


class TestCatalogChaseFuzz:
    @given(
        relations=budgeted_orset_relations(ORACLE_SCHEMAS, max_rows=2, uncertain_budget=3),
        ops=operations,
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_warm_catalog_plans_match_cold_catalog_results(self, relations, ops, data):
        warm = UWSDT.from_orset_relations(relations)
        counter = itertools.count()
        catalog_for(warm)  # attach the catalog up front; it must survive everything
        executed_any_run = False

        for op in list(ops) + ["run"]:
            if op == "chase":
                dependency = data.draw(chase_dependencies())
                try:
                    chase_uwsdt(warm, [dependency])
                except InconsistentWorldSetError:
                    assume(False)
                warm.validate()
            elif op == "insert":
                warm.add_template_tuple("R", f"fuzz{next(counter)}", (1, 2, 3))
            elif op == "remove":
                # Only rows with no placeholder fields can be dropped without
                # component surgery; skip the step if none exists.
                template = warm.templates["R"]
                row = next(
                    (
                        row
                        for row in template
                        if not any(
                            field.tuple_id == row[0]
                            for field in warm.field_to_cid
                            if field.relation == "R"
                        )
                    ),
                    None,
                )
                if row is not None:
                    template.remove(row)
            else:
                executed_any_run = True
                query = data.draw(st.sampled_from(_query_pool()))

                cold_engine = warm.copy()
                assert getattr(cold_engine, "_statistics_catalog", None) is None

                warm_plan = query.plan(warm)
                cold_plan = query.plan(cold_engine)

                warm_copy = warm.copy()
                query.run(warm_copy, "P", plan=warm_plan)
                warm_copy.validate()
                cold_copy = warm.copy()
                query.run(cold_copy, "P", plan=cold_plan)

                assert_same_result_distribution(warm_copy.rep(), cold_copy.rep(), "P")

                # An immediate replan of the unchanged warm engine must be
                # served entirely from the catalog (and pick the same tree).
                calls_before = sampling_call_count()
                replanned = query.plan(warm)
                assert sampling_call_count() == calls_before
                assert repr(replanned.chosen) == repr(warm_plan.chosen)

        assert executed_any_run
