"""Shared hypothesis strategies and world-set comparison helpers.

This module is imported by test modules as ``from _fixtures import ...``.
It deliberately has a non-``conftest`` name: the benchmark suite has its own
``benchmarks/conftest.py``, and importing fixtures *by module name* from a
file called ``conftest`` resolves to whichever conftest pytest put on
``sys.path`` first — a collection-order lottery.  Pytest fixtures proper
live in ``tests/conftest.py`` (which re-exports from here).
"""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.relational import Relation, RelationSchema
from repro.worlds import OrSet, OrSetRelation

#: Small domain values for generated relations/or-sets.
values_strategy = st.integers(min_value=0, max_value=4)


@st.composite
def orset_relations(draw, max_rows: int = 3, max_attrs: int = 3, max_alternatives: int = 3):
    """Random small or-set relations (bounded world count)."""
    attrs = draw(st.integers(min_value=1, max_value=max_attrs))
    rows = draw(st.integers(min_value=1, max_value=max_rows))
    schema = RelationSchema("R", tuple(f"A{i}" for i in range(attrs)))
    relation = OrSetRelation(schema)
    for _ in range(rows):
        row = []
        for _ in range(attrs):
            uncertain = draw(st.booleans())
            if uncertain:
                size = draw(st.integers(min_value=2, max_value=max_alternatives))
                candidates = draw(
                    st.lists(values_strategy, min_size=size, max_size=size, unique=True)
                )
                row.append(OrSet(candidates))
            else:
                row.append(draw(values_strategy))
        relation.insert(tuple(row))
    return relation


@st.composite
def budgeted_orset_relations(
    draw,
    schemas,
    max_rows: int = 2,
    max_alternatives: int = 2,
    uncertain_budget: int = 4,
):
    """One or-set relation per ``(name, attributes)`` schema, sharing a bound
    on the *total* number of uncertain fields.

    The budget caps the represented world count at
    ``max_alternatives ** uncertain_budget`` regardless of how many
    relations or attributes the oracle query ranges over — that is what
    keeps deep multi-relation oracle runs enumerable.
    """
    budget = uncertain_budget
    relations = []
    for name, attributes in schemas:
        schema = RelationSchema(name, tuple(attributes))
        relation = OrSetRelation(schema)
        rows = draw(st.integers(min_value=1, max_value=max_rows))
        for _ in range(rows):
            row = []
            for _ in attributes:
                if budget > 0 and draw(st.booleans()):
                    budget -= 1
                    size = draw(st.integers(min_value=2, max_value=max_alternatives))
                    candidates = draw(
                        st.lists(values_strategy, min_size=size, max_size=size, unique=True)
                    )
                    row.append(OrSet(candidates))
                else:
                    row.append(draw(values_strategy))
            relation.insert(tuple(row))
        relations.append(relation)
    return relations


@st.composite
def plain_relations(draw, name: str = "R", max_rows: int = 5, max_attrs: int = 3):
    """Random small plain relations."""
    attrs = draw(st.integers(min_value=1, max_value=max_attrs))
    rows = draw(st.integers(min_value=0, max_value=max_rows))
    schema = RelationSchema(name, tuple(f"A{i}" for i in range(attrs)))
    relation = Relation(schema)
    for _ in range(rows):
        relation.insert(tuple(draw(values_strategy) for _ in range(attrs)))
    return relation


# --------------------------------------------------------------------------- #
# World-set comparison helpers (shared by the query and planner oracle tests)
# --------------------------------------------------------------------------- #


def result_distribution(worldset, relation_name="P"):
    """Map each world to (frozenset of result rows) -> total probability."""
    distribution = {}
    for world in worldset:
        key = frozenset(world.database.relation(relation_name).rows)
        probability = world.probability if world.probability is not None else 1.0
        distribution[key] = distribution.get(key, 0.0) + probability
    return distribution


def assert_same_result_distribution(left, right, relation_name="P"):
    first = result_distribution(left, relation_name)
    second = result_distribution(right, relation_name)
    assert set(first) == set(second)
    for key in first:
        assert first[key] == pytest.approx(second[key], abs=1e-9)
