"""Query evaluation on WSDs and UWSDTs, checked against per-world evaluation.

The central correctness statement is Theorem 1: for every relational algebra
query ``Q`` and WSD ``W``, evaluating the rewritten query ``Q̂`` on ``W`` and
keeping only the result relation represents ``{Q(A) | A ∈ rep(W)}``.  These
tests verify it, operator by operator and for composed queries, against the
naive engine that evaluates ``Q`` in every world — on both the WSD and the
UWSDT engines.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import naive
from repro.core import UWSDT, WSD
from repro.core.algebra import (
    BaseRelation,
    evaluate_on_database,
    evaluate_on_uwsdt,
    evaluate_on_wsd,
)
from repro.relational import And, Database, Or, QueryError, attr_eq, eq, gt, ne
from repro.worlds import OrSet, OrSetRelation

from _fixtures import (
    assert_same_result_distribution,
    orset_relations,
    result_distribution,
)


def check_query_on_both_engines(orset_relation, query, relation_name="P"):
    """Evaluate the query on the WSD and UWSDT engines and compare with the naive engine."""
    wsd = WSD.from_orset_relation(orset_relation)
    reference = naive.evaluate_query(wsd.rep(), query, relation_name)

    wsd_copy = WSD.from_orset_relation(orset_relation)
    evaluate_on_wsd(query, wsd_copy, relation_name)
    assert_same_result_distribution(wsd_copy.rep(), reference, relation_name)

    uwsdt = UWSDT.from_orset_relation(orset_relation)
    evaluate_on_uwsdt(query, uwsdt, relation_name)
    uwsdt.validate()
    assert_same_result_distribution(uwsdt.rep(), reference, relation_name)


@pytest.fixture
def abc_orset():
    """Three tuples over (A, B, C) with a few uncertain fields."""
    return OrSetRelation.from_dicts(
        "R",
        ["A", "B", "C"],
        [
            {"A": 1, "B": OrSet([1, 2]), "C": 7},
            {"A": OrSet([4, 5]), "B": 3, "C": 0},
            {"A": 6, "B": 6, "C": OrSet([7, 0])},
        ],
    )


class TestOperatorsAgainstNaive:
    def test_selection_constant(self, abc_orset):
        check_query_on_both_engines(abc_orset, BaseRelation("R").select(eq("C", 7)))

    def test_selection_constant_no_match(self, abc_orset):
        check_query_on_both_engines(abc_orset, BaseRelation("R").select(eq("A", 99)))

    def test_selection_conjunction_and_disjunction(self, abc_orset):
        query = BaseRelation("R").select(And(gt("A", 1), Or(eq("C", 7), eq("B", 3))))
        check_query_on_both_engines(abc_orset, query)

    def test_selection_attribute_comparison(self, abc_orset):
        check_query_on_both_engines(abc_orset, BaseRelation("R").select(attr_eq("A", "B")))

    def test_selection_on_two_uncertain_fields_of_one_tuple(self):
        relation = OrSetRelation.from_dicts(
            "R",
            ["A", "B"],
            [{"A": OrSet([1, 2]), "B": OrSet([1, 2])}, {"A": 3, "B": 3}],
        )
        check_query_on_both_engines(relation, BaseRelation("R").select(attr_eq("A", "B")))

    def test_projection(self, abc_orset):
        check_query_on_both_engines(abc_orset, BaseRelation("R").project(["A", "B"]))

    def test_projection_after_selection_keeps_presence(self, abc_orset):
        query = BaseRelation("R").select(eq("C", 7)).project(["A"])
        check_query_on_both_engines(abc_orset, query)

    def test_projection_dropping_the_uncertain_attribute(self, abc_orset):
        query = BaseRelation("R").select(eq("B", 1)).project(["C"])
        check_query_on_both_engines(abc_orset, query)

    def test_rename(self, abc_orset):
        check_query_on_both_engines(abc_orset, BaseRelation("R").rename("A", "X"))

    def test_union(self, abc_orset):
        query = (
            BaseRelation("R").select(eq("C", 7)).union(BaseRelation("R").select(eq("B", 3)))
        )
        check_query_on_both_engines(abc_orset, query)

    def test_difference(self):
        relation = OrSetRelation.from_dicts(
            "R",
            ["A", "B"],
            [{"A": 1, "B": OrSet([1, 2])}, {"A": OrSet([1, 3]), "B": 2}],
        )
        query = BaseRelation("R").difference(BaseRelation("R").select(eq("B", 2)))
        check_query_on_both_engines(relation, query)

    def test_difference_certain_left_uncertain_right(self):
        relation = OrSetRelation.from_dicts(
            "R",
            ["A", "B"],
            [{"A": 1, "B": 2}, {"A": OrSet([1, 9]), "B": 2}],
        )
        query = BaseRelation("R").select(eq("A", 1)).difference(
            BaseRelation("R").select(gt("A", 5))
        )
        check_query_on_both_engines(relation, query)

    def test_product(self):
        left = OrSetRelation.from_dicts("R", ["A"], [{"A": OrSet([1, 2])}, {"A": 3}])
        wsd = WSD.from_orset_relation(left)
        # Add a second relation S by unioning another or-set relation into the same WSD.
        right = OrSetRelation.from_dicts("S", ["B"], [{"B": OrSet([7, 8])}])
        right_wsd = WSD.from_orset_relation(right)
        # Merge the two WSDs manually (disjoint relations are independent).
        combined = WSD(
            __import__("repro.relational.schema", fromlist=["DatabaseSchema"]).DatabaseSchema(
                list(wsd.schema) + list(right_wsd.schema)
            ),
            {**wsd.tuple_ids, **right_wsd.tuple_ids},
            wsd.components + right_wsd.components,
        )
        query = BaseRelation("R").product(BaseRelation("S"))
        reference = naive.evaluate_query(combined.rep(), query, "P")
        working = combined.copy()
        evaluate_on_wsd(query, working, "P")
        assert_same_result_distribution(working.rep(), reference, "P")

    def test_join(self):
        relation = OrSetRelation.from_dicts(
            "R",
            ["A", "B"],
            [{"A": 1, "B": OrSet([1, 2])}, {"A": 2, "B": 1}],
        )
        query = (
            BaseRelation("R")
            .rename("A", "A1")
            .rename("B", "B1")
            .join(BaseRelation("R").rename("A", "A2").rename("B", "B2"), "B1", "A2")
        )
        check_query_on_both_engines(relation, query)

    def test_composed_census_like_query(self, abc_orset):
        query = (
            BaseRelation("R")
            .select(Or(eq("C", 7), eq("C", 0)))
            .select(gt("A", 0))
            .project(["A", "C"])
        )
        check_query_on_both_engines(abc_orset, query)

    def test_unknown_node_raises(self):
        class Bogus(BaseRelation):
            pass

        bogus = Bogus("R")
        bogus.__class__ = type("Strange", (), {"children": lambda self: ()})
        with pytest.raises(Exception):
            evaluate_on_database(object(), Database([]))  # type: ignore[arg-type]


class TestQueryAst:
    def test_base_relations_collected(self):
        query = (
            BaseRelation("R").select(eq("A", 1)).join(BaseRelation("S"), "A", "B").union(
                BaseRelation("R").project(["A"]).product(BaseRelation("T"))
            )
        )
        assert query.base_relations() == ["R", "S", "T"]

    def test_repr_is_readable(self):
        query = BaseRelation("R").select(eq("A", 1)).project(["A"])
        text = repr(query)
        assert "σ" in text and "π" in text and "R" in text

    def test_database_evaluation_matches_manual(self, small_relation):
        database = Database([small_relation])
        query = BaseRelation("Emp").select(eq("DEPT", "eng")).project(["NAME"])
        result = evaluate_on_database(query, database, "names")
        assert result.row_set() == {("ann",), ("bob",)}
        assert result.schema.name == "names"


class TestPropertyBasedQueries:
    @given(orset_relations(max_rows=2, max_attrs=2), st.integers(min_value=0, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_random_selection_matches_naive(self, relation, constant):
        attribute = relation.schema.attributes[0]
        query = BaseRelation("R").select(eq(attribute, constant))
        check_query_on_both_engines(relation, query)

    @given(orset_relations(max_rows=2, max_attrs=3))
    @settings(max_examples=20, deadline=None)
    def test_random_projection_matches_naive(self, relation):
        attributes = list(relation.schema.attributes[:1])
        query = BaseRelation("R").project(attributes)
        check_query_on_both_engines(relation, query)

    @given(orset_relations(max_rows=2, max_attrs=2))
    @settings(max_examples=15, deadline=None)
    def test_random_select_project_pipeline(self, relation):
        first_attribute = relation.schema.attributes[0]
        last_attribute = relation.schema.attributes[-1]
        query = (
            BaseRelation("R").select(gt(first_attribute, 0)).project([last_attribute])
        )
        check_query_on_both_engines(relation, query)
