"""Product decomposition of components (relational prime factorization).

A product ``m``-decomposition of a relation ``R`` is a set of relations
``{C1, ..., Cm}`` with ``C1 × ... × Cm = R``; it is *maximal* if no finer
decomposition exists (Section 2).  The paper relies on a companion result
([9], ICDT 2007) showing the maximal decomposition is unique and computable
in polynomial time.  Here we provide a correct (exact) decomposition for the
component sizes that occur in practice, based on two facts:

* For a set ``S`` of columns of ``R``, ``R = π_S(R) × π_{U∖S}(R)`` holds iff
  ``|R| = |π_S(R)| · |π_{U∖S}(R)|`` (because ``R`` is always contained in the
  product of its projections).
* Factors are closed under complement, so the maximal decomposition can be
  found by recursively splitting the column set in two.

For components of small arity (the overwhelmingly common case — see the
component-size distribution of Figure 28) the exact recursive search is
cheap.  For very wide components we fall back to singleton splitting, which
still returns a *valid* (if possibly non-maximal) decomposition; this is
explicitly allowed by the paper, which treats maximality as an optimization.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .component import Component
from .fields import FieldRef

#: Above this arity the exact (exponential-in-arity) split search is skipped.
EXACT_ARITY_LIMIT = 16


def _project_rows(
    rows: Sequence[Tuple[Any, ...]],
    probabilities: Optional[Sequence[float]],
    positions: Sequence[int],
) -> Tuple[List[Tuple[Any, ...]], Optional[List[float]]]:
    """Project rows onto ``positions``, merging duplicates and summing probabilities."""
    merged: Dict[Tuple[Any, ...], float] = {}
    order: List[Tuple[Any, ...]] = []
    for index, row in enumerate(rows):
        key = tuple(row[p] for p in positions)
        if key not in merged:
            merged[key] = 0.0
            order.append(key)
        merged[key] += probabilities[index] if probabilities is not None else 1.0
    if probabilities is None:
        return order, None
    return order, [merged[key] for key in order]


def _splits(positions: Sequence[int]):
    """Candidate binary splits of ``positions`` (first element pinned to the left side)."""
    rest = positions[1:]
    for size in range(0, len(rest)):
        for combo in itertools.combinations(rest, size):
            left = (positions[0],) + combo
            right = tuple(p for p in positions if p not in left)
            if right:
                yield left, right


def _is_factor_split(
    rows: Sequence[Tuple[Any, ...]],
    left: Sequence[int],
    right: Sequence[int],
) -> bool:
    """Check whether the rows decompose as the product of the two projections."""
    left_proj = {tuple(row[p] for p in left) for row in rows}
    right_proj = {tuple(row[p] for p in right) for row in rows}
    if len(left_proj) * len(right_proj) != len(set(rows)):
        return False
    return True


def decompose_component(component: Component) -> List[Component]:
    """Maximally decompose ``component`` into independent factors.

    Probabilities are recomputed as marginals of each factor, which is the
    probabilistic analogue of relational factorization: for independent
    factors, the joint probability is the product of the marginals.  If the
    component's distribution does not factorize exactly (the relation does
    but the probabilities do not), the component is kept whole to preserve
    the represented distribution.
    """
    if component.arity == 1 or component.size == 1:
        return [component]
    distinct_rows = list(dict.fromkeys(component.rows))
    positions = tuple(range(component.arity))
    if component.arity > EXACT_ARITY_LIMIT:
        return [component]

    split = _find_split(distinct_rows, positions)
    if split is None:
        return [component]
    left, right = split
    left_factor = _build_factor(component, left)
    right_factor = _build_factor(component, right)
    if component.is_probabilistic and not _distribution_factorizes(
        component, left_factor, right_factor
    ):
        return [component]
    return decompose_component(left_factor) + decompose_component(right_factor)


def _find_split(
    rows: Sequence[Tuple[Any, ...]], positions: Sequence[int]
) -> Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    for left, right in _splits(tuple(positions)):
        if _is_factor_split(rows, left, right):
            return left, right
    return None


def _build_factor(component: Component, positions: Sequence[int]) -> Component:
    fields = tuple(component.fields[p] for p in positions)
    rows, probabilities = _project_rows(component.rows, component.probabilities, positions)
    return Component(fields, rows, probabilities)


def _distribution_factorizes(
    component: Component, left: Component, right: Component, tolerance: float = 1e-9
) -> bool:
    """Check that the joint distribution equals the product of the marginals."""
    left_positions = [component.position(f) for f in left.fields]
    right_positions = [component.position(f) for f in right.fields]
    left_prob = {row: left.probability(i) for i, row in enumerate(left.rows)}
    right_prob = {row: right.probability(i) for i, row in enumerate(right.rows)}

    joint: Dict[Tuple[Tuple[Any, ...], Tuple[Any, ...]], float] = {}
    for index, row in enumerate(component.rows):
        key = (
            tuple(row[p] for p in left_positions),
            tuple(row[p] for p in right_positions),
        )
        joint[key] = joint.get(key, 0.0) + component.probability(index)

    for left_row, lp in left_prob.items():
        for right_row, rp in right_prob.items():
            expected = lp * rp
            actual = joint.get((left_row, right_row), 0.0)
            if abs(expected - actual) > tolerance:
                return False
    return True


def decompose_wsd(wsd) -> None:
    """Replace every component of ``wsd`` by its maximal decomposition (in place).

    This is the ``decompose`` normalization of Figure 20.
    """
    new_components: List[Component] = []
    for component in wsd.components:
        new_components.extend(decompose_component(component))
    wsd.components = new_components
    wsd._rebuild_field_index()


def maximal_decomposition_size(component: Component) -> int:
    """Number of factors in the maximal decomposition (used by tests/benchmarks)."""
    return len(decompose_component(component))
