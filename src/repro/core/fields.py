"""Field identifiers: the ``R.t.A`` triples used throughout the WSD machinery.

A field identifier names the ``A``-field of tuple (position) ``t`` in
database relation ``R`` — exactly the ``FID`` triples of the UWSDT schema
``C[FID, LWID, VAL]`` (Section 3).  Tuple identifiers are opaque hashable
values: plain integers for base relations, pairs for tuples produced by
product (``t_ij``) or union (``(R, t_i)``), mirroring the construction in
Figure 9.
"""

from __future__ import annotations

from typing import Any, Iterable, NamedTuple, Tuple


class FieldRef(NamedTuple):
    """Identifier of one tuple field: ``(relation, tuple_id, attribute)``."""

    relation: str
    tuple_id: Any
    attribute: str

    def with_relation(self, relation: str) -> "FieldRef":
        """Return the same field under another relation name (used by ``copy``)."""
        return FieldRef(relation, self.tuple_id, self.attribute)

    def with_tuple(self, tuple_id: Any) -> "FieldRef":
        """Return the same field for another tuple identifier."""
        return FieldRef(self.relation, tuple_id, self.attribute)

    def with_attribute(self, attribute: str) -> "FieldRef":
        """Return the same field for another attribute (used by renaming δ)."""
        return FieldRef(self.relation, self.tuple_id, attribute)

    def same_tuple(self, other: "FieldRef") -> bool:
        """True iff both fields belong to the same tuple of the same relation."""
        return self.relation == other.relation and self.tuple_id == other.tuple_id

    def label(self) -> str:
        """Human-readable ``R.t.A`` label used in tables and error messages."""
        return f"{self.relation}.t{format_tuple_id(self.tuple_id)}.{self.attribute}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label()


def format_tuple_id(tuple_id: Any) -> str:
    """Render structured tuple identifiers compactly (``(1, 2)`` -> ``"1_2"``)."""
    if isinstance(tuple_id, tuple):
        return "_".join(format_tuple_id(part) for part in tuple_id)
    return str(tuple_id)


def product_tuple_id(left_id: Any, right_id: Any) -> Tuple[Any, Any]:
    """Tuple identifier ``t_ij`` of the product of tuples ``t_i`` and ``t_j`` (Fig. 9)."""
    return (left_id, right_id)


def union_tuple_id(source_relation: str, tuple_id: Any) -> Tuple[str, Any]:
    """Tuple identifier ``(R, t_i)`` used by the union operator (Fig. 9)."""
    return (source_relation, tuple_id)


def fields_of_tuple(relation: str, tuple_id: Any, attributes: Iterable[str]) -> Tuple[FieldRef, ...]:
    """All field identifiers of one tuple."""
    return tuple(FieldRef(relation, tuple_id, attribute) for attribute in attributes)
