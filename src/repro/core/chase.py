"""Chasing dependencies on WSDs and UWSDTs — data cleaning (Section 8, Figure 24).

Two classes of dependencies are supported, as in the paper:

* functional dependencies  ``A1, ..., Am -> A0``,
* single-tuple equality-generating dependencies
  ``A1 θ1 c1 ∧ ... ∧ Am θm cm  ⇒  A0 θ0 c0``.

Enforcing a dependency removes the worlds violating it: the components
holding the involved fields are composed and the violating local worlds are
deleted, with the probabilities of the surviving local worlds renormalized
(``y' = y / (1 − x)`` accumulated over all removed mass).  If a component
loses all its local worlds the world-set is inconsistent and
:class:`~repro.relational.errors.InconsistentWorldSetError` is raised —
the ``error("World-set is inconsistent")`` exit of Figure 24.

The chase needs a single pass over dependencies and tuples (no fixpoint),
because removing worlds can never introduce new violations.

The UWSDT variant applies the refinement discussed in the paper: fields
whose template value already decides a premise or conclusion never force a
component composition, so with realistic placeholder densities almost all
work happens on the template relations.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..relational.errors import InconsistentWorldSetError, RepresentationError
from ..relational.predicates import compare
from ..relational.values import BOTTOM, is_placeholder
from .component import Component
from .fields import FieldRef
from .uwsdt import UWSDT
from .wsd import WSD


class FunctionalDependency:
    """A functional dependency ``A1, ..., Am -> A0`` over one relation."""

    def __init__(self, relation: str, determinants: Sequence[str], dependent: str) -> None:
        if not determinants:
            raise RepresentationError("a functional dependency needs at least one determinant")
        self.relation = relation
        self.determinants = tuple(determinants)
        self.dependent = dependent

    def attributes(self) -> Tuple[str, ...]:
        return self.determinants + (self.dependent,)

    def holds_for(self, left: Dict[str, Any], right: Dict[str, Any]) -> bool:
        """Check the FD for one pair of tuples (given full value assignments)."""
        if all(left[a] == right[a] for a in self.determinants):
            return left[self.dependent] == right[self.dependent]
        return True

    def __repr__(self) -> str:
        return f"FD({self.relation}: {', '.join(self.determinants)} -> {self.dependent})"


class Comparison:
    """An atom ``A θ c`` used in equality-generating dependencies."""

    def __init__(self, attribute: str, op: str, constant: Any) -> None:
        self.attribute = attribute
        self.op = op
        self.constant = constant

    def evaluate(self, value: Any) -> bool:
        return compare(value, self.op, self.constant)

    def __repr__(self) -> str:
        return f"{self.attribute} {self.op} {self.constant!r}"


class EqualityGeneratingDependency:
    """A single-tuple EGD ``φ1 ∧ ... ∧ φm ⇒ φ0`` over one relation."""

    def __init__(self, relation: str, premises: Sequence[Comparison], conclusion: Comparison) -> None:
        self.relation = relation
        self.premises = tuple(premises)
        self.conclusion = conclusion

    def attributes(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for atom in list(self.premises) + [self.conclusion]:
            if atom.attribute not in seen:
                seen.append(atom.attribute)
        return tuple(seen)

    def holds_for(self, values: Dict[str, Any]) -> bool:
        """Check the EGD for one tuple (given a full value assignment)."""
        if all(premise.evaluate(values[premise.attribute]) for premise in self.premises):
            return self.conclusion.evaluate(values[self.conclusion.attribute])
        return True

    def __repr__(self) -> str:
        premises = " AND ".join(repr(p) for p in self.premises)
        return f"EGD({self.relation}: {premises} => {self.conclusion!r})"


Dependency = Any  # FunctionalDependency | EqualityGeneratingDependency


# --------------------------------------------------------------------------- #
# Chase on WSDs (Figure 24)
# --------------------------------------------------------------------------- #


def chase_wsd(wsd: WSD, dependencies: Iterable[Dependency]) -> WSD:
    """Chase all ``dependencies`` on ``wsd`` in place (Figure 24); returns ``wsd``."""
    for dependency in dependencies:
        if isinstance(dependency, FunctionalDependency):
            _chase_fd_wsd(wsd, dependency)
        elif isinstance(dependency, EqualityGeneratingDependency):
            _chase_egd_wsd(wsd, dependency)
        else:
            raise RepresentationError(f"unsupported dependency {dependency!r}")
    return wsd


def _filter_component(
    wsd_or_none, component: Component, keep: Callable[[Tuple[Any, ...]], bool]
) -> Component:
    filtered = component.filter_rows(keep, renormalize=True)
    if filtered is None:
        raise InconsistentWorldSetError("World-set is inconsistent.")
    return filtered


def _chase_egd_wsd(wsd: WSD, dependency: EqualityGeneratingDependency) -> None:
    relation = dependency.relation
    attributes = dependency.attributes()
    for tuple_id in wsd.tuple_ids.get(relation, ()):
        fields = [FieldRef(relation, tuple_id, attribute) for attribute in attributes]
        if not _egd_may_be_violated_wsd(wsd, dependency, tuple_id):
            continue
        component_index = wsd.merge_components_of(fields)
        component = wsd.components[component_index]
        positions = {attribute: component.position(field) for attribute, field in zip(attributes, fields)}

        def keep(row: Tuple[Any, ...]) -> bool:
            values = {attribute: row[positions[attribute]] for attribute in attributes}
            if any(value is BOTTOM for value in values.values()):
                return True
            return dependency.holds_for(values)

        wsd.replace_component(component_index, _filter_component(wsd, component, keep))


def _egd_may_be_violated_wsd(
    wsd: WSD, dependency: EqualityGeneratingDependency, tuple_id: Any
) -> bool:
    """Refinement: skip tuples whose components admit no jointly violating world.

    Atoms are grouped by the component holding their field and each group is
    checked against the component's actual local worlds.  The joint check
    matters when an earlier dependency already composed two of the fields:
    premises that are satisfiable attribute-by-attribute but not in any
    surviving combination must not force another composition.
    """
    relation = dependency.relation
    groups: Dict[int, List[Comparison]] = {}
    for premise in dependency.premises:
        cid = wsd.component_of(FieldRef(relation, tuple_id, premise.attribute))
        groups.setdefault(cid, []).append(premise)
    conclusion = dependency.conclusion
    conclusion_cid = wsd.component_of(FieldRef(relation, tuple_id, conclusion.attribute))
    groups.setdefault(conclusion_cid, [])
    for cid, atoms in groups.items():
        component = wsd.components[cid]
        positions = [
            (atom, component.position(FieldRef(relation, tuple_id, atom.attribute)))
            for atom in atoms
        ]
        conclusion_position = (
            component.position(FieldRef(relation, tuple_id, conclusion.attribute))
            if cid == conclusion_cid
            else None
        )
        if not _egd_component_witness(component, positions, conclusion, conclusion_position):
            return False
    return True


def _egd_component_witness(
    component: Component,
    premise_positions: Sequence[Tuple[Comparison, int]],
    conclusion: Comparison,
    conclusion_position: Optional[int],
) -> bool:
    """True iff some local world satisfies the premises and can falsify the conclusion.

    ``BOTTOM`` values are treated conservatively (the atom may still go either
    way), matching the ``keep`` closures of the chase proper.
    """
    for row in component.rows:
        satisfied = True
        for atom, position in premise_positions:
            value = row[position]
            if value is not BOTTOM and not atom.evaluate(value):
                satisfied = False
                break
        if not satisfied:
            continue
        if conclusion_position is not None:
            value = row[conclusion_position]
            if value is not BOTTOM and conclusion.evaluate(value):
                continue
        return True
    return False


def _chase_fd_wsd(wsd: WSD, dependency: FunctionalDependency) -> None:
    relation = dependency.relation
    attributes = dependency.attributes()
    tuple_ids = wsd.tuple_ids.get(relation, [])
    for index, first in enumerate(tuple_ids):
        for second in tuple_ids[index + 1 :]:
            if not _fd_may_be_violated_wsd(wsd, dependency, first, second):
                continue
            # Refinement (Section 8): when the dependent values certainly differ,
            # the dependency reduces to "the determinants must differ", so the
            # dependent components stay unmerged (exactly Figure 3 / Figure 4).
            dependents_differ = _values_certainly_differ_wsd(
                wsd, relation, first, second, dependency.dependent
            )
            involved_attributes = (
                dependency.determinants if dependents_differ else attributes
            )
            fields = [
                FieldRef(relation, first, attribute) for attribute in involved_attributes
            ] + [FieldRef(relation, second, attribute) for attribute in involved_attributes]
            component_index = wsd.merge_components_of(fields)
            component = wsd.components[component_index]
            first_positions = {
                attribute: component.position(FieldRef(relation, first, attribute))
                for attribute in involved_attributes
            }
            second_positions = {
                attribute: component.position(FieldRef(relation, second, attribute))
                for attribute in involved_attributes
            }

            def keep(row: Tuple[Any, ...]) -> bool:
                left = {a: row[first_positions[a]] for a in involved_attributes}
                right = {a: row[second_positions[a]] for a in involved_attributes}
                if any(value is BOTTOM for value in left.values()) or any(
                    value is BOTTOM for value in right.values()
                ):
                    return True
                if dependents_differ:
                    # The dependents differ in every world, so worlds where the
                    # determinants agree are inconsistent.
                    return not all(
                        left[a] == right[a] for a in dependency.determinants
                    )
                return dependency.holds_for(left, right)

            wsd.replace_component(component_index, _filter_component(wsd, component, keep))


def _values_certainly_differ_wsd(
    wsd: WSD, relation: str, first: Any, second: Any, attribute: str
) -> bool:
    """True iff the two fields take different values in every world."""
    first_field = FieldRef(relation, first, attribute)
    second_field = FieldRef(relation, second, attribute)
    first_index = wsd.component_of(first_field)
    second_index = wsd.component_of(second_field)
    if first_index == second_index:
        component = wsd.components[first_index]
        first_position = component.position(first_field)
        second_position = component.position(second_field)
        return all(
            row[first_position] is BOTTOM
            or row[second_position] is BOTTOM
            or row[first_position] != row[second_position]
            for row in component.rows
        )
    first_values = _possible_values_wsd(wsd, relation, first, attribute)
    second_values = _possible_values_wsd(wsd, relation, second, attribute)
    return bool(first_values) and bool(second_values) and not (first_values & second_values)


def _fd_may_be_violated_wsd(
    wsd: WSD, dependency: FunctionalDependency, first: Any, second: Any
) -> bool:
    """Refinement: skip pairs that certainly agree on the dependent or certainly disagree on a determinant."""
    relation = dependency.relation
    for attribute in dependency.determinants:
        if _values_certainly_differ_wsd(wsd, relation, first, second, attribute):
            return False
    first_dependent = _possible_values_wsd(wsd, relation, first, dependency.dependent)
    second_dependent = _possible_values_wsd(wsd, relation, second, dependency.dependent)
    if (
        len(first_dependent) == 1
        and first_dependent == second_dependent
    ):
        return False
    return True


def _possible_values_wsd(wsd: WSD, relation: str, tuple_id: Any, attribute: str) -> set:
    field = FieldRef(relation, tuple_id, attribute)
    component = wsd.component_for(field)
    return {value for value in component.column(field) if value is not BOTTOM}


# --------------------------------------------------------------------------- #
# Chase on UWSDTs (the engine used for the Figure 26 experiments)
# --------------------------------------------------------------------------- #


def chase_uwsdt(uwsdt: UWSDT, dependencies: Iterable[Dependency]) -> UWSDT:
    """Chase all ``dependencies`` on ``uwsdt`` in place; returns ``uwsdt``."""
    for dependency in dependencies:
        if isinstance(dependency, EqualityGeneratingDependency):
            _chase_egd_uwsdt(uwsdt, dependency)
        elif isinstance(dependency, FunctionalDependency):
            _chase_fd_uwsdt(uwsdt, dependency)
        else:
            raise RepresentationError(f"unsupported dependency {dependency!r}")
    return uwsdt


def _chase_egd_uwsdt(uwsdt: UWSDT, dependency: EqualityGeneratingDependency) -> None:
    relation = dependency.relation
    relation_schema = uwsdt.schema.relation(relation)
    attributes = dependency.attributes()
    for attribute in attributes:
        relation_schema.position(attribute)

    for tuple_id, values in uwsdt.template_rows(relation):
        value_map = dict(zip(relation_schema.attributes, values))
        uncertain = [a for a in attributes if is_placeholder(value_map[a])]
        if not uncertain:
            if not dependency.holds_for({a: value_map[a] for a in attributes}):
                raise InconsistentWorldSetError(
                    f"certain tuple {tuple_id!r} of {relation!r} violates {dependency!r} "
                    "in every world"
                )
            continue

        # Refinement: skip when no world can jointly satisfy the premises and
        # falsify the conclusion.  The check is per component, not per
        # attribute — two premises whose fields an earlier dependency already
        # composed are judged against the surviving local worlds, so a
        # conjunction that can no longer hold does not merge more components.
        if not _egd_violation_possible_uwsdt(uwsdt, dependency, relation, tuple_id, value_map):
            continue

        fields = [FieldRef(relation, tuple_id, a) for a in uncertain]
        cid = uwsdt.merge_components([uwsdt.component_of(field) for field in fields])
        component = uwsdt.components[cid]
        positions = {a: component.position(FieldRef(relation, tuple_id, a)) for a in uncertain}

        def keep(row: Tuple[Any, ...]) -> bool:
            assignment = {a: value_map[a] for a in attributes if not is_placeholder(value_map[a])}
            for a in uncertain:
                value = row[positions[a]]
                if value is BOTTOM:
                    return True
                assignment[a] = value
            return dependency.holds_for(assignment)

        filtered = component.filter_rows(keep, renormalize=True)
        if filtered is None:
            raise InconsistentWorldSetError("World-set is inconsistent.")
        uwsdt.replace_component(cid, filtered)


def _egd_violation_possible_uwsdt(
    uwsdt: UWSDT,
    dependency: EqualityGeneratingDependency,
    relation: str,
    tuple_id: Any,
    value_map: Dict[str, Any],
) -> bool:
    """Joint refinement: can some world satisfy every premise and falsify the conclusion?

    Atoms over certain template values are decided directly.  Atoms over
    placeholders are grouped by the component holding their field and each
    group is checked against the component's local worlds.  Components are
    independent, so a violating world exists iff every group has a witness.
    """
    open_premises: List[Comparison] = []
    for premise in dependency.premises:
        value = value_map[premise.attribute]
        if is_placeholder(value):
            open_premises.append(premise)
        elif not premise.evaluate(value):
            return False
    conclusion = dependency.conclusion
    conclusion_value = value_map[conclusion.attribute]
    conclusion_cid: Optional[int] = None
    if is_placeholder(conclusion_value):
        conclusion_cid = uwsdt.component_of(FieldRef(relation, tuple_id, conclusion.attribute))
    elif conclusion.evaluate(conclusion_value):
        return False

    groups: Dict[int, List[Comparison]] = {}
    for premise in open_premises:
        cid = uwsdt.component_of(FieldRef(relation, tuple_id, premise.attribute))
        groups.setdefault(cid, []).append(premise)
    if conclusion_cid is not None:
        groups.setdefault(conclusion_cid, [])
    for cid, atoms in groups.items():
        component = uwsdt.components[cid]
        positions = [
            (atom, component.position(FieldRef(relation, tuple_id, atom.attribute)))
            for atom in atoms
        ]
        conclusion_position = (
            component.position(FieldRef(relation, tuple_id, conclusion.attribute))
            if cid == conclusion_cid
            else None
        )
        if not _egd_component_witness(component, positions, conclusion, conclusion_position):
            return False
    return True


def _chase_fd_uwsdt(uwsdt: UWSDT, dependency: FunctionalDependency) -> None:
    """FD chase on a UWSDT.

    Tuples are grouped by the possible values of the determinant attributes
    so that only pairs that may agree on the left-hand side are examined —
    the practical observation of Section 9 that key constraints rarely force
    large compositions.
    """
    relation = dependency.relation
    relation_schema = uwsdt.schema.relation(relation)
    attributes = dependency.attributes()
    for attribute in attributes:
        relation_schema.position(attribute)

    rows = list(uwsdt.template_rows(relation))
    buckets: Dict[Any, List[int]] = {}
    entries: List[Tuple[Any, Dict[str, Any]]] = []
    for index, (tuple_id, values) in enumerate(rows):
        value_map = dict(zip(relation_schema.attributes, values))
        entries.append((tuple_id, value_map))
        for key in _determinant_keys(uwsdt, dependency, relation, tuple_id, value_map):
            buckets.setdefault(key, []).append(index)

    examined = set()
    for indices in buckets.values():
        for position, first_index in enumerate(indices):
            for second_index in indices[position + 1 :]:
                pair = (min(first_index, second_index), max(first_index, second_index))
                if pair in examined:
                    continue
                examined.add(pair)
                _chase_fd_pair_uwsdt(
                    uwsdt, dependency, entries[pair[0]], entries[pair[1]]
                )


def _determinant_keys(
    uwsdt: UWSDT,
    dependency: FunctionalDependency,
    relation: str,
    tuple_id: Any,
    value_map: Dict[str, Any],
):
    """All possible determinant value combinations of one tuple (for bucketing)."""
    import itertools

    per_attribute: List[List[Any]] = []
    for attribute in dependency.determinants:
        value = value_map[attribute]
        if is_placeholder(value):
            per_attribute.append(
                sorted(
                    _possible_values_uwsdt(uwsdt, relation, tuple_id, attribute),
                    key=repr,
                )
            )
        else:
            per_attribute.append([value])
    return [tuple(combo) for combo in itertools.product(*per_attribute)]


def _chase_fd_pair_uwsdt(
    uwsdt: UWSDT,
    dependency: FunctionalDependency,
    first_entry: Tuple[Any, Dict[str, Any]],
    second_entry: Tuple[Any, Dict[str, Any]],
) -> None:
    relation = dependency.relation
    attributes = dependency.attributes()
    first_id, first_values = first_entry
    second_id, second_values = second_entry

    first_uncertain = [a for a in attributes if is_placeholder(first_values[a])]
    second_uncertain = [a for a in attributes if is_placeholder(second_values[a])]
    if not first_uncertain and not second_uncertain:
        if not dependency.holds_for(
            {a: first_values[a] for a in attributes}, {a: second_values[a] for a in attributes}
        ):
            raise InconsistentWorldSetError(
                f"certain tuples {first_id!r} and {second_id!r} of {relation!r} "
                f"violate {dependency!r} in every world"
            )
        return

    # Refinement: certainly equal dependents cannot cause a violation.
    if (
        not is_placeholder(first_values[dependency.dependent])
        and not is_placeholder(second_values[dependency.dependent])
        and first_values[dependency.dependent] == second_values[dependency.dependent]
    ):
        return

    fields = [FieldRef(relation, first_id, a) for a in first_uncertain] + [
        FieldRef(relation, second_id, a) for a in second_uncertain
    ]
    cid = uwsdt.merge_components([uwsdt.component_of(field) for field in fields])
    component = uwsdt.components[cid]
    first_positions = {
        a: component.position(FieldRef(relation, first_id, a)) for a in first_uncertain
    }
    second_positions = {
        a: component.position(FieldRef(relation, second_id, a)) for a in second_uncertain
    }

    def keep(row: Tuple[Any, ...]) -> bool:
        left = {a: first_values[a] for a in attributes if not is_placeholder(first_values[a])}
        right = {a: second_values[a] for a in attributes if not is_placeholder(second_values[a])}
        for a, position in first_positions.items():
            value = row[position]
            if value is BOTTOM:
                return True
            left[a] = value
        for a, position in second_positions.items():
            value = row[position]
            if value is BOTTOM:
                return True
            right[a] = value
        return dependency.holds_for(left, right)

    filtered = component.filter_rows(keep, renormalize=True)
    if filtered is None:
        raise InconsistentWorldSetError("World-set is inconsistent.")
    uwsdt.replace_component(cid, filtered)


def _possible_values_uwsdt(uwsdt: UWSDT, relation: str, tuple_id: Any, attribute: str) -> set:
    field = FieldRef(relation, tuple_id, attribute)
    cid = uwsdt.component_of(field)
    if cid is None:
        return set()
    return {value for value in uwsdt.components[cid].column(field) if value is not BOTTOM}
