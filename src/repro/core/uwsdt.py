"""Uniform WSDs with template relations (UWSDTs) — the engine-grade representation.

Section 3 of the paper introduces UWSDTs to avoid relations of arbitrary
arity: all uncertain values are stored in a fixed-schema triple of relations

* ``C[FID, LWID, VAL]``  — component values per field and local world,
* ``F[FID, CID]``        — which component defines which field,
* ``W[CID, LWID, PR]``   — local worlds of each component and their probability,

plus one *template relation* ``R⁰`` per database relation, holding certain
values and the ``?`` placeholder for uncertain fields.

This class keeps the same information in an equivalent, faster-to-access
layout: template relations are substrate :class:`~repro.relational.relation.Relation`
objects keyed by a tuple-id column, and the C/F/W content is held as a
dictionary of :class:`~repro.core.component.Component` objects indexed by
component id.  :meth:`to_uniform_relations` materializes the exact
fixed-schema relations of the paper (and :meth:`from_uniform_relations`
reads them back), so the uniform encoding itself is also implemented and
tested; the dictionary layout is an optimization the paper performs inside
PostgreSQL with indexes on ``FID`` and ``CID``.

Tuple presence semantics follow the WSD convention: a template tuple is
present in a chosen world unless one of its placeholder fields takes the
``⊥`` value in that world.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..relational.database import Database
from ..relational.errors import RepresentationError
from ..relational.indexes import HashIndex, IndexPool
from ..relational.relation import Relation
from ..relational.schema import DatabaseSchema, RelationSchema
from ..relational.values import BOTTOM, PLACEHOLDER, is_placeholder
from ..worlds.orset import OrSetRelation, is_or_set
from ..worlds.worldset import WorldSet
from .component import Component
from .fields import FieldRef
from .wsd import WSD
from .wsdt import WSDT

#: Name of the tuple-id column added to template relations.
TID = "__tid__"


class UWSDT:
    """A uniform world-set decomposition with template relations."""

    def __init__(self, schema: Optional[DatabaseSchema] = None) -> None:
        self.schema = schema or DatabaseSchema()
        #: Template relations, one per represented relation, keyed by name.
        self.templates: Dict[str, Relation] = {}
        #: Components keyed by component id.
        self.components: Dict[int, Component] = {}
        #: Which component defines which placeholder field (the ``F`` relation).
        self.field_to_cid: Dict[FieldRef, int] = {}
        #: Incrementally maintained ``relation -> placeholder field count``
        #: (the per-relation cardinality of ``F``); kept in sync by the
        #: component mutators below, read by :meth:`relation_placeholder_count`.
        self._placeholder_counts: Dict[str, int] = {}
        self._next_cid = 1
        #: Version-validated cache of template hash indexes (Section 5's
        #: "employing indices" on the fixed UWSDT schema).
        self._index_pool = IndexPool()
        for relation_schema in self.schema:
            self._init_template(relation_schema)

    # ------------------------------------------------------------------ #
    # Template and component plumbing
    # ------------------------------------------------------------------ #

    def _init_template(self, relation_schema: RelationSchema) -> None:
        template_schema = RelationSchema(
            relation_schema.name, (TID,) + relation_schema.attributes
        )
        self.templates[relation_schema.name] = Relation(template_schema)

    def add_relation(self, relation_schema: RelationSchema) -> None:
        """Declare a new (initially empty) represented relation."""
        if self.schema.has_relation(relation_schema.name):
            raise RepresentationError(f"relation {relation_schema.name!r} already present")
        self.schema.add(relation_schema)
        self._init_template(relation_schema)

    def add_template_tuple(self, relation_name: str, tuple_id: Any, values: Sequence[Any]) -> None:
        """Add one template tuple (values may include ``PLACEHOLDER``)."""
        relation_schema = self.schema.relation(relation_name)
        if len(values) != relation_schema.arity:
            raise RepresentationError(
                f"template tuple for {relation_name!r} has arity {len(values)}, "
                f"expected {relation_schema.arity}"
            )
        self.templates[relation_name].insert((tuple_id,) + tuple(values))

    def relation_placeholder_count(self, relation_name: str) -> int:
        """Number of ``?`` fields of one relation (its slice of ``F``).

        Together with the template relation's version this fully determines
        the relation's planner statistics — samples read only the template,
        densities only this count — so the statistics catalog uses the pair
        as its invalidation key: component surgery that merely rewires or
        extends components (the chase, ``Q̂`` intermediates) leaves cached
        entries valid, while anything adding or dropping a placeholder of
        the relation invalidates them.  Maintained incrementally — O(1).
        """
        return self._placeholder_counts.get(relation_name, 0)

    def _map_field(self, field: FieldRef, cid: int) -> None:
        self.field_to_cid[field] = cid
        self._placeholder_counts[field.relation] = (
            self._placeholder_counts.get(field.relation, 0) + 1
        )

    def _unmap_field(self, field: FieldRef) -> None:
        if self.field_to_cid.pop(field, None) is not None:
            self._placeholder_counts[field.relation] -= 1

    def new_component(self, component: Component) -> int:
        """Register a component and return its component id."""
        cid = self._next_cid
        self._next_cid += 1
        self.components[cid] = component
        for field in component.fields:
            if field in self.field_to_cid:
                raise RepresentationError(
                    f"field {field.label()} already assigned to component {self.field_to_cid[field]}"
                )
            self._map_field(field, cid)
        return cid

    def replace_component(self, cid: int, component: Component) -> None:
        """Replace the component stored under ``cid`` (fields must be unchanged or extended)."""
        old = self.components[cid]
        for field in old.fields:
            self._unmap_field(field)
        self.components[cid] = component
        for field in component.fields:
            existing = self.field_to_cid.get(field)
            if existing is not None and existing != cid:
                raise RepresentationError(
                    f"field {field.label()} already assigned to component {existing}"
                )
            self._map_field(field, cid)

    def remove_component(self, cid: int) -> None:
        component = self.components.pop(cid)
        for field in component.fields:
            self._unmap_field(field)

    def component_of(self, field: FieldRef) -> Optional[int]:
        """Component id defining ``field`` (None for certain template fields)."""
        return self.field_to_cid.get(field)

    def merge_components(self, cids: Sequence[int]) -> int:
        """Compose several components into one; return the surviving cid."""
        unique = sorted(set(cids))
        if len(unique) == 1:
            return unique[0]
        merged = self.components[unique[0]]
        for cid in unique[1:]:
            merged = merged.compose(self.components[cid])
        for cid in unique[1:]:
            self.remove_component(cid)
        self.replace_component(unique[0], merged)
        return unique[0]

    def field_value(self, relation_name: str, tuple_id: Any, attribute: str) -> Any:
        """Template value of a field (may be ``PLACEHOLDER``)."""
        template = self.templates[relation_name]
        position = template.schema.position(attribute)
        tid_position = template.schema.position(TID)
        for row in template:
            if row[tid_position] == tuple_id:
                return row[position]
        raise RepresentationError(
            f"tuple {tuple_id!r} not found in template of {relation_name!r}"
        )

    def template_index(self, relation_name: str, attribute: str) -> HashIndex:
        """A (cached) hash index over one attribute of a template relation.

        The index maps template values — including the ``?`` placeholder
        sentinel — to full template rows.  Pushed-down equality selections
        probe it with the constant plus ``?`` instead of scanning the whole
        template; the cache is invalidated automatically when the template
        relation changes (see :class:`~repro.relational.indexes.IndexPool`).
        """
        return self._index_pool.hash_index(self.templates[relation_name], (attribute,))

    def template_rows(self, relation_name: str) -> Iterator[Tuple[Any, Tuple[Any, ...]]]:
        """Yield ``(tuple_id, values)`` pairs of one template (values without the tid column)."""
        template = self.templates[relation_name]
        tid_position = template.schema.position(TID)
        if tid_position == 0:
            # The tid column is always stored first; slicing is much cheaper
            # than filtering per field on wide (50-attribute) templates.
            for row in template:
                yield row[0], row[1:]
            return
        for row in template:
            values = tuple(v for i, v in enumerate(row) if i != tid_position)
            yield row[tid_position], values

    # ------------------------------------------------------------------ #
    # Statistics (the columns of Figure 27 / Figure 28)
    # ------------------------------------------------------------------ #

    def component_count(self) -> int:
        """``#comp`` of Figure 27: number of components."""
        return len(self.components)

    def multi_placeholder_component_count(self) -> int:
        """``#comp>1`` of Figure 27: components spanning more than one placeholder."""
        return sum(1 for component in self.components.values() if component.arity > 1)

    def component_relation_size(self) -> int:
        """``|C|`` of Figure 27: rows of the uniform component relation ``C``."""
        return sum(
            component.arity * component.size for component in self.components.values()
        )

    def template_size(self, relation_name: Optional[str] = None) -> int:
        """``|R|`` of Figure 27: number of template tuples."""
        if relation_name is not None:
            return len(self.templates[relation_name])
        return sum(len(template) for template in self.templates.values())

    def placeholder_count(self) -> int:
        """Number of ``?`` fields across all templates."""
        return len(self.field_to_cid)

    def component_size_distribution(self) -> Dict[int, int]:
        """Histogram ``placeholders-per-component -> count`` (Figure 28)."""
        histogram: Dict[int, int] = {}
        for component in self.components.values():
            histogram[component.arity] = histogram.get(component.arity, 0) + 1
        return histogram

    def statistics(self) -> Dict[str, int]:
        """All Figure 27 statistics in one dictionary."""
        return {
            "components": self.component_count(),
            "components_gt1": self.multi_placeholder_component_count(),
            "component_relation_size": self.component_relation_size(),
            "template_size": self.template_size(),
            "placeholders": self.placeholder_count(),
        }

    def validate(self) -> None:
        """Check structural invariants (placeholder coverage, probability mass)."""
        for relation_schema in self.schema:
            template = self.templates[relation_schema.name]
            tid_position = template.schema.position(TID)
            for row in template:
                tuple_id = row[tid_position]
                for attribute in relation_schema.attributes:
                    value = row[template.schema.position(attribute)]
                    field = FieldRef(relation_schema.name, tuple_id, attribute)
                    if is_placeholder(value):
                        if field not in self.field_to_cid:
                            raise RepresentationError(
                                f"placeholder field {field.label()} has no component"
                            )
                    elif field in self.field_to_cid:
                        raise RepresentationError(
                            f"certain field {field.label()} should not be in a component"
                        )
        for cid, component in self.components.items():
            component.validate()
            for field in component.fields:
                if self.field_to_cid.get(field) != cid:
                    raise RepresentationError(
                        f"field map out of sync for {field.label()} (component {cid})"
                    )

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #

    @classmethod
    def from_wsdt(cls, wsdt: WSDT) -> "UWSDT":
        """Build a UWSDT from a WSDT (same templates, components get ids)."""
        result = cls(DatabaseSchema(list(wsdt.schema)))
        for relation_schema in wsdt.schema:
            for tuple_id, fields in wsdt.templates[relation_schema.name].items():
                values = tuple(fields[a] for a in relation_schema.attributes)
                result.add_template_tuple(relation_schema.name, tuple_id, values)
        for component in wsdt.components:
            result.new_component(component)
        return result

    @classmethod
    def from_wsd(cls, wsd: WSD) -> "UWSDT":
        """Build a UWSDT from a WSD by first extracting templates."""
        return cls.from_wsdt(WSDT.from_wsd(wsd))

    @classmethod
    def from_relation(cls, relation: Relation, probabilistic: bool = True) -> "UWSDT":
        """A UWSDT of a fully certain relation (no placeholders at all)."""
        result = cls(DatabaseSchema([relation.schema]))
        for index, row in enumerate(relation, start=1):
            result.add_template_tuple(relation.schema.name, index, row)
        return result

    @classmethod
    def from_orset_relation(cls, orset: OrSetRelation, probabilistic: bool = True) -> "UWSDT":
        """Direct linear encoding of an or-set relation (the census ingestion path).

        Certain fields go straight to the template; each or-set field becomes
        a one-placeholder component.  This avoids materializing the
        field-per-component WSD for large relations.
        """
        return cls.from_orset_relations([orset], probabilistic)

    @classmethod
    def from_orset_relations(
        cls, orsets: Sequence[OrSetRelation], probabilistic: bool = True
    ) -> "UWSDT":
        """Linear encoding of several or-set relations into one UWSDT.

        The relations' or-sets are independent of each other, exactly as if
        each had been encoded separately — the multi-relation input the join
        queries (and the possible-worlds oracle) work on.
        """
        result = cls(DatabaseSchema([orset.schema for orset in orsets]))
        for orset in orsets:
            for index, row in enumerate(orset.rows, start=1):
                template_values: List[Any] = []
                for attribute, value in zip(orset.schema.attributes, row):
                    if is_or_set(value):
                        template_values.append(PLACEHOLDER)
                    else:
                        template_values.append(value)
                result.add_template_tuple(orset.schema.name, index, template_values)
                for attribute, value in zip(orset.schema.attributes, row):
                    if is_or_set(value):
                        field = FieldRef(orset.schema.name, index, attribute)
                        if value.probabilities is not None:
                            component = Component(
                                (field,), [(v,) for v in value.values], list(value.probabilities)
                            )
                        elif probabilistic:
                            component = Component.uniform(field, value.values)
                        else:
                            component = Component((field,), [(v,) for v in value.values], None)
                        result.new_component(component)
        return result

    def to_wsdt(self) -> WSDT:
        """Convert back to the (non-uniform) WSDT representation."""
        templates: Dict[str, Dict[Any, Dict[str, Any]]] = {}
        for relation_schema in self.schema:
            template: Dict[Any, Dict[str, Any]] = {}
            for tuple_id, values in self.template_rows(relation_schema.name):
                template[tuple_id] = dict(zip(relation_schema.attributes, values))
            templates[relation_schema.name] = template
        return WSDT(
            DatabaseSchema(list(self.schema)), templates, list(self.components.values())
        )

    def to_wsd(self) -> WSD:
        """Convert to a plain WSD (singleton components for certain fields)."""
        return self.to_wsdt().to_wsd()

    def to_worldset(self, max_worlds: Optional[int] = 1_000_000) -> WorldSet:
        """The represented set of possible worlds (``rep``)."""
        return self.to_wsdt().to_worldset(max_worlds)

    rep = to_worldset

    @property
    def is_probabilistic(self) -> bool:
        return all(component.is_probabilistic for component in self.components.values())

    def copy(self) -> "UWSDT":
        """Structural copy."""
        result = UWSDT(DatabaseSchema(list(self.schema)))
        for name, template in self.templates.items():
            result.templates[name] = template.copy()
        for cid, component in self.components.items():
            result.components[cid] = Component(
                component.fields, component.rows, component.probabilities
            )
        result.field_to_cid = dict(self.field_to_cid)
        result._placeholder_counts = dict(self._placeholder_counts)
        result._next_cid = self._next_cid
        return result

    # ------------------------------------------------------------------ #
    # The paper's fixed-schema uniform relations
    # ------------------------------------------------------------------ #

    def to_uniform_relations(self) -> Dict[str, Relation]:
        """Materialize the paper's fixed-schema relations ``C``, ``F`` and ``W``.

        ``FID`` is flattened into three columns (``REL``, ``TID``, ``ATTR``) as
        the paper's footnote 3 describes.
        """
        component_relation = Relation(
            RelationSchema("C", ("REL", "TID", "ATTR", "LWID", "VAL"))
        )
        mapping_relation = Relation(RelationSchema("F", ("REL", "TID", "ATTR", "CID")))
        world_relation = Relation(RelationSchema("W", ("CID", "LWID", "PR")))
        for cid in sorted(self.components):
            component = self.components[cid]
            for field in component.fields:
                mapping_relation.insert(
                    (field.relation, field.tuple_id, field.attribute, cid)
                )
            for lwid in range(1, component.size + 1):
                world_relation.insert((cid, lwid, component.probability(lwid - 1)))
                row = component.rows[lwid - 1]
                for field, value in zip(component.fields, row):
                    component_relation.insert(
                        (field.relation, field.tuple_id, field.attribute, lwid, value)
                    )
        return {"C": component_relation, "F": mapping_relation, "W": world_relation}

    @classmethod
    def from_uniform_relations(
        cls,
        schema: DatabaseSchema,
        templates: Dict[str, Relation],
        uniform: Dict[str, Relation],
        probabilistic: bool = True,
    ) -> "UWSDT":
        """Rebuild a UWSDT from template relations plus the C/F/W relations."""
        result = cls(DatabaseSchema(list(schema)))
        for relation_schema in schema:
            template = templates[relation_schema.name]
            tid_position = template.schema.position(TID)
            for row in template:
                values = tuple(v for i, v in enumerate(row) if i != tid_position)
                result.add_template_tuple(relation_schema.name, row[tid_position], values)

        mapping = uniform["F"]
        component_values = uniform["C"]
        worlds = uniform["W"]

        fields_per_cid: Dict[Any, List[FieldRef]] = {}
        for rel, tid, attr, cid in mapping.rows:
            fields_per_cid.setdefault(cid, []).append(FieldRef(rel, tid, attr))

        probabilities_per_cid: Dict[Any, Dict[Any, float]] = {}
        for cid, lwid, probability in worlds.rows:
            probabilities_per_cid.setdefault(cid, {})[lwid] = probability

        values_per_cid: Dict[Any, Dict[Any, Dict[FieldRef, Any]]] = {}
        for rel, tid, attr, lwid, value in component_values.rows:
            field = FieldRef(rel, tid, attr)
            cid = None
            for candidate, fields in fields_per_cid.items():
                if field in fields:
                    cid = candidate
                    break
            if cid is None:
                raise RepresentationError(f"value for unmapped field {field.label()}")
            values_per_cid.setdefault(cid, {}).setdefault(lwid, {})[field] = value

        for cid, fields in fields_per_cid.items():
            local_worlds = values_per_cid.get(cid, {})
            lwids = sorted(local_worlds)
            rows = []
            probabilities = [] if probabilistic else None
            for lwid in lwids:
                assignment = local_worlds[lwid]
                rows.append(tuple(assignment.get(field, BOTTOM) for field in fields))
                if probabilities is not None:
                    probabilities.append(probabilities_per_cid.get(cid, {}).get(lwid, 0.0))
            result.new_component(Component(tuple(fields), rows, probabilities))
        return result

    # ------------------------------------------------------------------ #
    # Decoding helpers shared by rep(), possible() and the benchmarks
    # ------------------------------------------------------------------ #

    def certain_world(self) -> Database:
        """The single world obtained by ignoring uncertainty (placeholders dropped).

        Used as the "one world, 0 % density" baseline of Figure 30: when the
        representation has no placeholders this *is* the represented world.
        """
        database = Database()
        for relation_schema in self.schema:
            relation = Relation(relation_schema)
            for tuple_id, values in self.template_rows(relation_schema.name):
                if any(is_placeholder(v) for v in values):
                    continue
                relation.insert(values)
            database.add(relation)
        return database

    def __repr__(self) -> str:
        return (
            f"UWSDT(relations {list(self.schema.relation_names)!r}, "
            f"{self.template_size()} template tuples, {self.component_count()} components)"
        )
