"""WSDs with template relations (WSDTs) — Section 3, "Adding Template Relations".

A WSDT stores the information that is identical in all worlds once and for
all in *template relations*, using the ``?`` placeholder for fields on which
worlds disagree.  Formally, a WSDT of a world-set ``A`` is
``(R⁰₁, ..., R⁰ₖ, {C1, ..., Cm})`` such that adding one singleton component
per certain template field yields a WSD of ``A``.

This class is the "visual" middle layer between WSDs and the engine-grade
UWSDTs; conversions in both directions are lossless (``rep`` preserved),
which the property-based tests check.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..relational.database import Database
from ..relational.errors import RepresentationError
from ..relational.relation import Relation
from ..relational.schema import DatabaseSchema, RelationSchema
from ..relational.values import BOTTOM, PLACEHOLDER, format_value
from ..worlds.worldset import WorldSet
from .component import Component
from .fields import FieldRef
from .wsd import WSD

#: A template is a mapping ``tuple_id -> {attribute: value-or-PLACEHOLDER}``.
Template = Dict[Any, Dict[str, Any]]


class WSDT:
    """A world-set decomposition with template relations."""

    def __init__(
        self,
        schema: DatabaseSchema,
        templates: Dict[str, Template],
        components: Iterable[Component],
    ) -> None:
        self.schema = schema
        self.templates: Dict[str, Template] = {
            name: {tid: dict(fields) for tid, fields in template.items()}
            for name, template in templates.items()
        }
        self.components: List[Component] = list(components)
        self._validate()

    def _validate(self) -> None:
        placeholder_fields = set()
        for relation_schema in self.schema:
            template = self.templates.get(relation_schema.name)
            if template is None:
                raise RepresentationError(
                    f"missing template relation for {relation_schema.name!r}"
                )
            for tuple_id, fields in template.items():
                for attribute in relation_schema.attributes:
                    if attribute not in fields:
                        raise RepresentationError(
                            f"template tuple {tuple_id!r} of {relation_schema.name!r} "
                            f"misses attribute {attribute!r}"
                        )
                    if fields[attribute] is PLACEHOLDER:
                        placeholder_fields.add(
                            FieldRef(relation_schema.name, tuple_id, attribute)
                        )
        covered = set()
        for component in self.components:
            for field in component.fields:
                if field in covered:
                    raise RepresentationError(
                        f"field {field.label()} defined by more than one component"
                    )
                covered.add(field)
        missing = placeholder_fields - covered
        if missing:
            raise RepresentationError(
                f"placeholder fields without a component: {[f.label() for f in sorted(missing)]}"
            )
        extra = covered - placeholder_fields
        if extra:
            raise RepresentationError(
                f"components define non-placeholder fields: {[f.label() for f in sorted(extra)]}"
            )

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    @property
    def is_probabilistic(self) -> bool:
        return all(component.is_probabilistic for component in self.components)

    def placeholder_count(self) -> int:
        """Total number of ``?`` fields across all templates."""
        return sum(
            1
            for template in self.templates.values()
            for fields in template.values()
            for value in fields.values()
            if value is PLACEHOLDER
        )

    def component_count(self) -> int:
        return len(self.components)

    def template_size(self) -> int:
        """Total number of template tuples (the ``|R|`` statistic of Figure 27)."""
        return sum(len(template) for template in self.templates.values())

    def component_relation_size(self) -> int:
        """Total number of (field, local world) values — the ``|C|`` statistic of Figure 27."""
        return sum(component.arity * component.size for component in self.components)

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #

    @classmethod
    def from_wsd(cls, wsd: WSD) -> "WSDT":
        """Move every certain (single-local-world) component into the templates."""
        templates: Dict[str, Template] = {
            relation_schema.name: {
                tuple_id: {} for tuple_id in wsd.tuple_ids.get(relation_schema.name, ())
            }
            for relation_schema in wsd.schema
        }
        uncertain: List[Component] = []
        for component in wsd.components:
            if component.is_certain():
                row = component.rows[0]
                for field, value in zip(component.fields, row):
                    templates[field.relation][field.tuple_id][field.attribute] = value
            else:
                uncertain.append(component)
                for field in component.fields:
                    templates[field.relation][field.tuple_id][field.attribute] = PLACEHOLDER
        return cls(DatabaseSchema(list(wsd.schema)), templates, uncertain)

    def to_wsd(self) -> WSD:
        """Expand the templates back into singleton components."""
        components: List[Component] = list(self.components)
        probabilistic = self.is_probabilistic
        for relation_schema in self.schema:
            template = self.templates[relation_schema.name]
            for tuple_id, fields in template.items():
                for attribute in relation_schema.attributes:
                    value = fields[attribute]
                    if value is PLACEHOLDER:
                        continue
                    field = FieldRef(relation_schema.name, tuple_id, attribute)
                    components.append(
                        Component((field,), [(value,)], [1.0] if probabilistic else None)
                    )
        tuple_ids = {
            relation_schema.name: list(self.templates[relation_schema.name].keys())
            for relation_schema in self.schema
        }
        return WSD(DatabaseSchema(list(self.schema)), tuple_ids, components)

    def to_worldset(self, max_worlds: Optional[int] = 1_000_000) -> WorldSet:
        """The represented set of possible worlds."""
        return self.to_wsd().to_worldset(max_worlds)

    rep = to_worldset

    def template_relation(self, relation_name: str, tid_column: str = "TID") -> Relation:
        """Materialize one template as an ordinary relation with a tuple-id column."""
        relation_schema = self.schema.relation(relation_name)
        attributes = (tid_column,) + relation_schema.attributes
        relation = Relation(RelationSchema(relation_name, attributes))
        for tuple_id, fields in self.templates[relation_name].items():
            relation.insert(
                (tuple_id,) + tuple(fields[a] for a in relation_schema.attributes)
            )
        return relation

    # ------------------------------------------------------------------ #
    # Display
    # ------------------------------------------------------------------ #

    def to_text(self) -> str:
        """Render templates and components in the style of Figure 5."""
        blocks: List[str] = []
        for relation_schema in self.schema:
            header = ["tid"] + list(relation_schema.attributes)
            rows = [
                [str(tuple_id)] + [
                    format_value(fields[a]) for a in relation_schema.attributes
                ]
                for tuple_id, fields in self.templates[relation_schema.name].items()
            ]
            widths = [
                max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
                for i in range(len(header))
            ]
            lines = [
                f"Template {relation_schema.name}",
                " | ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
                "-+-".join("-" * w for w in widths),
            ]
            lines.extend(
                " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows
            )
            blocks.append("\n".join(lines))
        for component in self.components:
            blocks.append(component.to_text())
        return "\n  ×\n".join(blocks)

    def __repr__(self) -> str:
        return (
            f"WSDT({self.template_size()} template tuples, "
            f"{self.component_count()} components, {self.placeholder_count()} placeholders)"
        )
