"""Persistent per-engine statistics catalog with version-based invalidation.

Before this module, every ``Query.run(optimize=True)`` re-ran reservoir
sampling over the query's base relations: planning the *same* query twice
against an unchanged engine paid the full sampling cost twice.  The
:class:`StatisticsCatalog` fixes that by caching, per relation,

* the bounded reservoir :class:`~repro.core.planner.sampling.RelationSample`
  (whose per-attribute value histograms are memoized on the sample object,
  so histograms persist too),
* the row count and the placeholder density,
* the attribute list,

keyed by a *version key* that moves exactly when the underlying relation
could have changed:

========  ==================================================================
engine    version key of relation ``R``
========  ==================================================================
Database  identity + ``Relation.version`` of ``R`` (bumped per mutation)
UWSDT     identity + version of the ``R`` template relation, plus
          ``UWSDT.relation_placeholder_count(R)`` — together they fully
          determine ``R``'s statistics (samples read only the template,
          densities only the count), so query intermediates added by
          ``Q̂`` and chase component merges leave base entries valid
WSD       ``WSD.revision`` (bumped by every component surgery and relation
          add/drop — WSD samples resolve each field *through* its
          component, so any surgery may change any relation's sample)
========  ==================================================================

Entries are checked lazily on every access (polling the version key is a
couple of integer comparisons), and additionally dropped *eagerly* through
:meth:`~repro.relational.relation.Relation.watch` hooks on the sampled
relation objects — both layers together make "mutate, then replan" pick up
fresh statistics through every mutation path.

One catalog is attached per engine object (:func:`catalog_for` stores it on
the engine; engine ``copy()`` methods deliberately do not carry it over).
``Statistics.from_engine`` — and therefore ``Query.plan``/``Query.run`` —
is a thin view over the catalog: planning a repeated or similar query
performs zero sampling work, which
:func:`~repro.core.planner.sampling.sampling_call_count` lets tests and
benchmarks assert directly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ...relational.database import Database
from ...relational.relation import Relation
from ..uwsdt import UWSDT
from ..wsd import WSD
from .cost import Statistics, uwsdt_relation_statistics, wsd_relation_statistics
from .observed import OBSERVED_ALPHA, OBSERVED_MIN_COUNT, ObservedCardinality
from .sampling import (
    DEFAULT_SAMPLE_SIZE,
    RelationSample,
    sample_database,
    sample_uwsdt,
    sample_wsd,
)

#: Attribute under which :func:`catalog_for` stores the catalog on an engine.
CATALOG_ATTRIBUTE = "_statistics_catalog"


@dataclass
class CatalogEntry:
    """Cached statistics of one relation, valid while ``key`` matches."""

    key: Tuple[Any, ...]
    sample_size: int
    row_count: int
    density: float
    attributes: Tuple[str, ...]
    sample: Optional[RelationSample]
    #: The versioned object the key's identity component refers to (the
    #: relation / template Relation, or the WSD itself).  Holding it keeps
    #: the identity check sound (no id reuse while the entry lives).
    anchor: Any


class StatisticsCatalog:
    """Version-validated cache of per-relation planner statistics."""

    def __init__(self, engine: Any, sample_size: int = DEFAULT_SAMPLE_SIZE) -> None:
        if not isinstance(engine, (Database, WSD, UWSDT)):
            raise TypeError(f"cannot derive statistics from {type(engine).__name__}")
        self.engine = engine
        self.sample_size = sample_size
        #: Reentrant so watcher callbacks that fire while the lock is held
        #: (a mutation inside a locked catalog method) cannot deadlock, and
        #: so public methods can compose without lock juggling.  Concurrent
        #: sessions share one catalog per engine; every read of a shared
        #: dict below happens under this lock.
        self._lock = threading.RLock()
        self._entries: Dict[str, CatalogEntry] = {}
        #: Eager invalidation hooks: relation name -> (watched Relation, callback).
        #: Invariant: a watcher is registered exactly while the relation has
        #: (or had) an entry, and is released by :meth:`invalidate` — a
        #: long-lived relation must not accumulate dead closures.
        self._watchers: Dict[str, Tuple[Relation, Callable]] = {}
        #: Cache telemetry (reads that reused / rebuilt an entry).
        self.hits = 0
        self.misses = 0
        #: Actual-cardinality feedback from the executor
        #: (:func:`repro.core.exec.feedback.record_into_catalog`):
        #: operator label -> (EWMA of observed output rows, EWMA of the
        #: estimate, observation count).  Kept label-keyed for telemetry and
        #: back-compat; the planner consumes the *semantically keyed* store
        #: below.
        self.observed_cardinalities: Dict[str, Tuple[float, float, int]] = {}
        #: Planner-consumable feedback, keyed by
        #: :func:`~repro.core.planner.observed.cardinality_key` so a future
        #: planning pass can look an observation up whatever join order
        #: produced it.  Entries carry base-relation version snapshots;
        #: :meth:`observed_view` drops stale ones.
        self._observed: Dict[str, ObservedCardinality] = {}
        if isinstance(engine, Database):
            self.kind = "database"
        elif isinstance(engine, UWSDT):
            self.kind = "uwsdt"
        else:
            self.kind = "wsd"

    def _registry_counter(self, event: str):
        from ...obs.metrics import get_registry

        return get_registry().counter("repro.catalog." + event, engine=self.kind)

    # ------------------------------------------------------------------ #
    # Engine adapters
    # ------------------------------------------------------------------ #

    def relation_names(self) -> List[str]:
        if self.kind == "database":
            return list(self.engine.relation_names)
        return [rs.name for rs in self.engine.schema]

    def _version_key(self, name: str) -> Tuple[Tuple[Any, ...], Any]:
        """``(key, anchor)`` of one relation's current state."""
        if self.kind == "database":
            relation = self.engine.relation(name)
            return (relation.version,), relation
        if self.kind == "uwsdt":
            template = self.engine.templates[name]
            return (template.version, self.engine.relation_placeholder_count(name)), template
        return (self.engine.revision,), self.engine

    def _row_count_and_density(self, name: str) -> Tuple[int, float]:
        if self.kind == "database":
            return len(self.engine.relation(name)), 0.0
        if self.kind == "uwsdt":
            return uwsdt_relation_statistics(self.engine, name)
        return wsd_relation_statistics(self.engine, name)

    def _sample_one(self, name: str, sample_size: int) -> Optional[RelationSample]:
        if not sample_size:
            return None
        from ...obs.trace import get_tracer

        with get_tracer().span("sampling", relation=name, engine=self.kind):
            if self.kind == "database":
                samples = sample_database(self.engine, sample_size, only=(name,))
            elif self.kind == "uwsdt":
                samples = sample_uwsdt(self.engine, sample_size, only=(name,))
            else:
                samples = sample_wsd(self.engine, sample_size, only=(name,))
            return samples.get(name)

    # ------------------------------------------------------------------ #
    # Entries
    # ------------------------------------------------------------------ #

    def entry(self, name: str, sample_size: Optional[int] = None) -> Tuple[CatalogEntry, str]:
        """The (validated) entry for one relation, plus its provenance:
        ``"cached-sample"`` when reused, ``"fresh-sample"`` when rebuilt."""
        with self._lock:
            size = self.sample_size if sample_size is None else sample_size
            key, anchor = self._version_key(name)
            cached = self._entries.get(name)
            if (
                cached is not None
                and cached.anchor is anchor
                and cached.key == key
                and cached.sample_size == size
            ):
                self.hits += 1
                self._registry_counter("hits").inc()
                return cached, "cached-sample"
            self.misses += 1
            self._registry_counter("misses").inc()
            row_count, density = self._row_count_and_density(name)
            attributes = self._relation_attributes(name)
            built = CatalogEntry(
                key=key,
                sample_size=size,
                row_count=row_count,
                density=density,
                attributes=attributes,
                sample=self._sample_one(name, size),
                anchor=anchor,
            )
            self._entries[name] = built
            self._watch(name, anchor)
            return built, "fresh-sample"

    def version_key(self, name: str) -> Tuple[Any, ...]:
        """The current version key of one relation — the token plan caches
        snapshot per base relation and poll to validate cached plans."""
        with self._lock:
            key, _anchor = self._version_key(name)
            return key

    def _relation_attributes(self, name: str) -> Tuple[str, ...]:
        if self.kind == "database":
            return self.engine.relation(name).schema.attributes
        return self.engine.schema.relation(name).attributes

    def _watch(self, name: str, anchor: Any) -> None:
        """Eagerly drop the entry when the anchored Relation mutates.

        Redundant with key polling for correctness, but it frees stale
        samples immediately and exercises the mutation hooks end to end.
        """
        if not isinstance(anchor, Relation):
            return  # WSD entries anchor the engine; revision polling covers them
        watched = self._watchers.get(name)
        if watched is not None and watched[0] is anchor:
            return
        if watched is not None:
            watched[0].unwatch(watched[1])

        def invalidate(_relation: Relation, name: str = name) -> None:
            with self._lock:
                self._entries.pop(name, None)

        anchor.watch(invalidate)
        self._watchers[name] = (anchor, invalidate)

    def _unwatch(self, name: str) -> None:
        watched = self._watchers.pop(name, None)
        if watched is not None:
            watched[0].unwatch(watched[1])

    def record_actual(
        self,
        label: str,
        estimated_rows: float,
        actual_rows: int,
        alpha: float = OBSERVED_ALPHA,
        key: Optional[str] = None,
        relations: Sequence[str] = (),
    ) -> None:
        """Record one executed operator's estimated-vs-actual cardinality.

        The label-keyed telemetry store blends *both* sides through the same
        EWMA — estimate and actual must age identically, or error metrics
        compare a fresh estimate against a stale actual average.  When the
        caller supplies the operator's semantic ``key`` (and the base
        ``relations`` the subtree reads), the observation additionally lands
        in the planner-consumable store with a version snapshot of those
        relations, so staleness is detectable at lookup time.
        """
        with self._lock:
            previous = self.observed_cardinalities.get(label)
            if previous is None:
                ewma = float(actual_rows)
                estimate_ewma = float(estimated_rows)
                count = 1
            else:
                ewma = (1.0 - alpha) * previous[0] + alpha * float(actual_rows)
                estimate_ewma = (1.0 - alpha) * previous[1] + alpha * float(estimated_rows)
                count = previous[2] + 1
            self.observed_cardinalities[label] = (ewma, estimate_ewma, count)
            if key is None:
                return
            known = set(self.relation_names())
            names = tuple(sorted(r for r in relations if r in known))
            try:
                versions = tuple(self._version_key(r)[0] for r in names)
            except KeyError:
                return  # a base relation vanished mid-record: skip the keyed store
            record = self._observed.get(key)
            if record is None or record.relations != names:
                self._observed[key] = ObservedCardinality(
                    float(actual_rows), float(estimated_rows), 1, names, versions
                )
            else:
                self._observed[key] = record.blend(
                    float(estimated_rows), float(actual_rows), alpha, versions
                )

    def observed_view(self, min_count: int = OBSERVED_MIN_COUNT) -> Dict[str, ObservedCardinality]:
        """Semantically keyed observations that are still trustworthy.

        Filters out entries observed fewer than ``min_count`` times and
        entries whose base relations have mutated since recording (dropping
        the stale ones from the store as a side effect).  The result is what
        :class:`~repro.core.planner.cost.Statistics` carries into planning.
        """
        with self._lock:
            live: Dict[str, ObservedCardinality] = {}
            stale: List[str] = []
            for key, record in self._observed.items():
                try:
                    current = tuple(self._version_key(r)[0] for r in record.relations)
                except KeyError:
                    stale.append(key)
                    continue
                if current != record.versions:
                    stale.append(key)
                    continue
                if record.count >= min_count:
                    live[key] = record
            for key in stale:
                del self._observed[key]
            return live

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop one relation's entry (or all of them when ``name`` is None),
        releasing its mutation watcher — an always-on process must not leave
        dead closures on long-lived relations."""
        with self._lock:
            if name is None:
                for watched_name in list(self._watchers):
                    self._unwatch(watched_name)
                self._entries.clear()
            else:
                self._unwatch(name)
                self._entries.pop(name, None)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ #
    # The Statistics view
    # ------------------------------------------------------------------ #

    def statistics(
        self,
        relations: Optional[Sequence[str]] = None,
        sample_size: Optional[int] = None,
    ) -> Statistics:
        """A :class:`Statistics` view over the catalog.

        ``relations`` restricts *sampling* (planning passes the query's
        base relations so unrelated, possibly huge relations are never
        scanned); row counts, densities and attribute lists still cover
        every relation of the engine, exactly as the pre-catalog
        ``Statistics.from_*`` constructors did.  Warm entries are served
        without any sampling work.
        """
        with self._lock:
            size = self.sample_size if sample_size is None else sample_size
            known = self.relation_names()
            if relations is None:
                wanted: Iterable[str] = known
            else:
                present = set(known)
                wanted = set(name for name in relations if name in present)
            row_counts: Dict[str, int] = {}
            densities: Dict[str, float] = {}
            attributes: Dict[str, Tuple[str, ...]] = {}
            samples: Dict[str, RelationSample] = {}
            provenance: Dict[str, str] = {}
            for name in known:
                if name in wanted:
                    entry, source = self.entry(name, size)
                    row_counts[name] = entry.row_count
                    densities[name] = entry.density
                    attributes[name] = entry.attributes
                    if entry.sample is not None:
                        samples[name] = entry.sample
                        provenance[name] = source
                    else:
                        provenance[name] = "fixed-constants"
                else:
                    # Outside the sampling restriction: cheap metadata only.
                    row_counts[name], densities[name] = self._row_count_and_density(name)
                    attributes[name] = self._relation_attributes(name)
                    provenance[name] = "fixed-constants"
            return Statistics(
                row_counts,
                densities,
                attributes,
                samples,
                engine=self.kind,
                sample_provenance=provenance,
                source="catalog",
                observed=self.observed_view(),
            )

    def __repr__(self) -> str:
        with self._lock:
            count = len(self._entries)
        return (
            f"StatisticsCatalog({self.kind}, {count} entries, "
            f"{self.hits} hits / {self.misses} misses)"
        )


def catalog_for(engine: Any, sample_size: int = DEFAULT_SAMPLE_SIZE) -> StatisticsCatalog:
    """The catalog attached to ``engine``, creating (and attaching) it on
    first use.  Engine copies start with no catalog of their own."""
    catalog = getattr(engine, CATALOG_ATTRIBUTE, None)
    if catalog is None:
        catalog = StatisticsCatalog(engine, sample_size)
        try:
            setattr(engine, CATALOG_ATTRIBUTE, catalog)
        except AttributeError:
            pass  # engine type without the slot: still usable, just unattached
    return catalog
