"""Rewrite rules over :class:`~repro.core.algebra.query.Query` ASTs.

Every rule is a semantics-preserving logical rewrite: it holds world-by-world
in classical relational algebra, and therefore — by the compositionality of
the paper's ``Q̂`` rewriting (Theorem 1) — also on the represented world-set
when the plan is evaluated on a WSD or UWSDT.  The rules implemented here
are the classical ones that matter most for the representation engines:

* **selection pushdown** — σ moves below ×, ⋈, ∪, −, π and δ so that the
  per-tuple component machinery of Figures 9/16 runs on as few tuples as
  possible;
* **join fusion** — ``σ_{A=B}(L × R)`` becomes the native ``equi_join``
  operator, avoiding materializing the quadratic product template that
  Section 5 is designed to avoid;
* **projection pushdown** — π moves below ×, ⋈ and ∪ to shrink the width of
  intermediate templates;
* **rename elimination** — identity and mutually-cancelling δ chains are
  removed (each δ on a WSD copies every component column it touches).

Rules are pure functions ``apply(query, context) -> Optional[Query]``
returning the rewritten node, or ``None`` when the rule does not apply.
The :mod:`~repro.core.planner.planner` module drives them to a fixpoint.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ...relational.predicates import (
    And,
    AttrAttr,
    AttrConst,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from ..algebra.query import (
    BaseRelation,
    Difference,
    Intersection,
    Join,
    Product,
    Project,
    Query,
    Rename,
    Select,
    Union,
)
from .cost import Statistics, output_attributes


class RewriteContext:
    """Everything a rule may consult: the statistics catalog (for schemas)."""

    def __init__(self, statistics: Optional[Statistics] = None) -> None:
        self.statistics = statistics or Statistics()
        self._schema_context = None

    def attributes_of(self, query: Query) -> Optional[Tuple[str, ...]]:
        """Output attributes of a subquery, or None if a base schema is unknown."""
        return output_attributes(query, self.statistics)

    @property
    def schema_context(self):
        """Lazily built :class:`~repro.analysis.schema.SchemaContext`.

        Shared by the plan-time analyzer and the rewrite verifier so base
        relation types are derived from the reservoir samples exactly once
        per planning run.
        """
        if self._schema_context is None:
            from ...analysis.schema import SchemaContext

            self._schema_context = SchemaContext.from_statistics(self.statistics)
        return self._schema_context


# --------------------------------------------------------------------------- #
# Predicate helpers
# --------------------------------------------------------------------------- #


def substitute_attributes(predicate: Predicate, mapping: Dict[str, str]) -> Predicate:
    """Rebuild ``predicate`` with attribute names substituted via ``mapping``."""
    if isinstance(predicate, AttrConst):
        return AttrConst(mapping.get(predicate.attribute, predicate.attribute),
                         predicate.op, predicate.constant)
    if isinstance(predicate, AttrAttr):
        return AttrAttr(mapping.get(predicate.left, predicate.left), predicate.op,
                        mapping.get(predicate.right, predicate.right))
    if isinstance(predicate, And):
        return And(*(substitute_attributes(p, mapping) for p in predicate.parts))
    if isinstance(predicate, Or):
        return Or(*(substitute_attributes(p, mapping) for p in predicate.parts))
    if isinstance(predicate, Not):
        return Not(substitute_attributes(predicate.inner, mapping))
    if isinstance(predicate, TruePredicate):
        return predicate
    raise TypeError(f"cannot substitute attributes in {predicate!r}")


def conjuncts(predicate: Predicate) -> Tuple[Predicate, ...]:
    """The top-level conjuncts of a predicate (itself, if not a conjunction)."""
    if isinstance(predicate, And):
        return predicate.parts
    return (predicate,)


def conjunction(parts: Sequence[Predicate]) -> Predicate:
    """Re-assemble conjuncts into a predicate."""
    if not parts:
        return TruePredicate()
    if len(parts) == 1:
        return parts[0]
    return And(*parts)


def _references_only(predicate: Predicate, attributes: Sequence[str]) -> bool:
    allowed = set(attributes)
    referenced = predicate.attributes()
    return bool(referenced) and all(a in allowed for a in referenced)


# --------------------------------------------------------------------------- #
# Rules
# --------------------------------------------------------------------------- #


class RewriteRule:
    """Base class: a named, single-node rewrite.

    Rules with ``whole_tree = True`` are applied once to the entire query
    tree by the planner (not driven bottom-up to a fixpoint) — used for
    global transformations such as join-order search.
    """

    name = "rewrite"
    whole_tree = False

    def apply(self, query: Query, context: RewriteContext) -> Optional[Query]:
        raise NotImplementedError


class EliminateTrueSelect(RewriteRule):
    """``σ_TRUE(x) → x``."""

    name = "eliminate-true-select"

    def apply(self, query: Query, context: RewriteContext) -> Optional[Query]:
        if isinstance(query, Select) and isinstance(query.predicate, TruePredicate):
            return query.child
        return None


class MergeSelects(RewriteRule):
    """``σ_p(σ_q(x)) → σ_{q ∧ p}(x)`` — canonical form before pushdown."""

    name = "merge-selects"

    def apply(self, query: Query, context: RewriteContext) -> Optional[Query]:
        if isinstance(query, Select) and isinstance(query.child, Select):
            inner = query.child
            return Select(inner.child, And(inner.predicate, query.predicate))
        return None


class PushSelectDown(RewriteRule):
    """Push a selection below the operator it sits on, conjunct by conjunct.

    * ``σ_p(L × R)`` / ``σ_p(L ⋈ R)`` — conjuncts referencing only one side
      move onto that side;
    * ``σ_p(L ∪ R) → σ_p(L) ∪ σ_p(R)``;
    * ``σ_p(L ∩ R) → σ_p(L) ∩ σ_p(R)``;
    * ``σ_p(L − R) → σ_p(L) − R``  (a row survives − iff it is in L and not
      in R; the filter only constrains the left side);
    * ``σ_p(π_U(x)) → π_U(σ_p(x))``  (p references attributes of U only);
    * ``σ_p(δ_{a→b}(x)) → δ_{a→b}(σ_{p[b→a]}(x))``.
    """

    name = "push-select-down"

    def apply(self, query: Query, context: RewriteContext) -> Optional[Query]:
        if not isinstance(query, Select):
            return None
        child = query.child
        predicate = query.predicate
        if isinstance(child, Project):
            return Project(Select(child.child, predicate), child.attributes)
        if isinstance(child, Rename):
            pushed = substitute_attributes(predicate, {child.new: child.old})
            return Rename(Select(child.child, pushed), child.old, child.new)
        if isinstance(child, Union):
            return Union(Select(child.left, predicate), Select(child.right, predicate))
        if isinstance(child, Intersection):
            return Intersection(Select(child.left, predicate), Select(child.right, predicate))
        if isinstance(child, Difference):
            return Difference(Select(child.left, predicate), child.right)
        if isinstance(child, (Product, Join)):
            left_attrs = context.attributes_of(child.left)
            right_attrs = context.attributes_of(child.right)
            if left_attrs is None or right_attrs is None:
                return None
            left_parts: List[Predicate] = []
            right_parts: List[Predicate] = []
            residual: List[Predicate] = []
            for part in conjuncts(predicate):
                if _references_only(part, left_attrs):
                    left_parts.append(part)
                elif _references_only(part, right_attrs):
                    right_parts.append(part)
                else:
                    residual.append(part)
            if not left_parts and not right_parts:
                return None
            left = Select(child.left, conjunction(left_parts)) if left_parts else child.left
            right = Select(child.right, conjunction(right_parts)) if right_parts else child.right
            if isinstance(child, Join):
                core: Query = Join(left, right, child.left_attr, child.right_attr)
            else:
                core = Product(left, right)
            if residual:
                return Select(core, conjunction(residual))
            return core
        return None


class FuseSelectIntoJoin(RewriteRule):
    """``σ_{A=B}(L × R) → L ⋈_{A=B} R`` — the Section 5 native join.

    Also handles a conjunction above the product: the first equality atom
    spanning both sides becomes the join condition, the remaining conjuncts
    stay as a selection above the join (where pushdown picks them up again).
    """

    name = "fuse-select-into-join"

    def apply(self, query: Query, context: RewriteContext) -> Optional[Query]:
        if not isinstance(query, Select) or not isinstance(query.child, Product):
            return None
        product = query.child
        left_attrs = context.attributes_of(product.left)
        right_attrs = context.attributes_of(product.right)
        if left_attrs is None or right_attrs is None:
            return None
        parts = list(conjuncts(query.predicate))
        for index, part in enumerate(parts):
            if not isinstance(part, AttrAttr) or part.op not in ("=", "=="):
                continue
            if part.left in left_attrs and part.right in right_attrs:
                join = Join(product.left, product.right, part.left, part.right)
            elif part.right in left_attrs and part.left in right_attrs:
                join = Join(product.left, product.right, part.right, part.left)
            else:
                continue
            rest = parts[:index] + parts[index + 1:]
            if rest:
                return Select(join, conjunction(rest))
            return join
        return None


class EliminateRename(RewriteRule):
    """Remove and collapse renames.

    * ``δ_{a→a}(x) → x``;
    * ``δ_{b→a}(δ_{a→b}(x)) → x``;
    * ``δ_{b→c}(δ_{a→b}(x)) → δ_{a→c}(x)``  when ``b`` is not an attribute
      of ``x`` (the intermediate name is invisible).
    """

    name = "eliminate-rename"

    def apply(self, query: Query, context: RewriteContext) -> Optional[Query]:
        if not isinstance(query, Rename):
            return None
        if query.old == query.new:
            return query.child
        inner = query.child
        if isinstance(inner, Rename) and inner.new == query.old:
            if query.new == inner.old:
                return inner.child
            attrs = context.attributes_of(inner.child)
            if attrs is not None and query.old not in attrs:
                return Rename(inner.child, inner.old, query.new)
        return None


class PushProjectDown(RewriteRule):
    """Push projections below ×, ⋈, ∪ and δ; collapse stacked projections.

    Valid under set semantics: ``π_U(L × R) = π_U(π_Ul(L) × π_Ur(R))`` where
    ``Ul``/``Ur`` are the kept attributes of each side (join attributes are
    retained on their side and projected away above if not requested).
    """

    name = "push-project-down"

    def apply(self, query: Query, context: RewriteContext) -> Optional[Query]:
        if not isinstance(query, Project):
            return None
        child = query.child
        kept = query.attributes
        child_attrs = context.attributes_of(child)
        if child_attrs is not None and kept == child_attrs:
            return child
        if isinstance(child, Project):
            return Project(child.child, kept)
        if isinstance(child, Union):
            return Union(Project(child.left, kept), Project(child.right, kept))
        if isinstance(child, Rename):
            if child.new in kept:
                inner_kept = tuple(child.old if a == child.new else a for a in kept)
                return Rename(Project(child.child, inner_kept), child.old, child.new)
            return Project(child.child, kept)
        if isinstance(child, (Product, Join)):
            left_attrs = context.attributes_of(child.left)
            right_attrs = context.attributes_of(child.right)
            if left_attrs is None or right_attrs is None:
                return None
            left_kept = [a for a in left_attrs if a in kept]
            right_kept = [a for a in right_attrs if a in kept]
            if isinstance(child, Join):
                if child.left_attr not in left_kept:
                    left_kept.append(child.left_attr)
                if child.right_attr not in right_kept:
                    right_kept.append(child.right_attr)
            if not left_kept or not right_kept:
                return None
            if len(left_kept) + len(right_kept) >= len(left_attrs) + len(right_attrs):
                return None
            left = Project(child.left, left_kept)
            right = Project(child.right, right_kept)
            if isinstance(child, Join):
                core: Query = Join(left, right, child.left_attr, child.right_attr)
            else:
                core = Product(left, right)
            if tuple(left_kept) + tuple(right_kept) == tuple(kept):
                return core
            return Project(core, kept)
        return None


class ReorderJoins(RewriteRule):
    """Join-order search over σ/×/⋈ clusters (a whole-tree rule).

    Flattens every maximal cluster of selections, products and joins with at
    least three leaf relations into a join graph and re-assembles it in the
    cheapest order found by dynamic programming over leaf subsets (greedy
    above ~8 leaves), using sampled selectivities — see
    :mod:`~repro.core.planner.joins`.
    """

    name = "reorder-joins"
    whole_tree = True

    def apply(self, query: Query, context: RewriteContext) -> Optional[Query]:
        from ...obs.trace import get_tracer
        from .joins import reorder_tree

        with get_tracer().span("join-dp"):
            return reorder_tree(query, context)


#: The default rule pipeline: each phase is run to a fixpoint in order
#: (whole-tree rules such as join reordering are applied once per phase).
DEFAULT_PHASES: Tuple[Tuple[str, Tuple[RewriteRule, ...]], ...] = (
    ("normalize", (EliminateTrueSelect(), MergeSelects(), EliminateRename())),
    ("fuse-joins", (FuseSelectIntoJoin(),)),
    ("push-selections", (MergeSelects(), PushSelectDown(), FuseSelectIntoJoin(), EliminateTrueSelect())),
    ("reorder-joins", (ReorderJoins(),)),
    ("push-projections", (PushProjectDown(),)),
    ("cleanup", (EliminateRename(), EliminateTrueSelect())),
)
