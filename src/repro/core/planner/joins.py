"""Join-order search: Selinger-style dynamic programming over σ/×/⋈ clusters.

PR 1's rewrite rules fuse a single ``σ_{A=B} ∘ ×`` pair into an equi-join,
but a ≥3-way join still executes in written order — and on a UWSDT a badly
ordered join materializes a quadratic intermediate *template*, copying
every placeholder component column once per partner tuple.  This module
picks the order instead:

1. :func:`extract_join_graph` flattens a maximal cluster of ``Select`` /
   ``Product`` / ``Join`` nodes into *leaves* (the non-cluster subtrees,
   e.g. renamed base relations or whole sub-queries) and *predicates*.
   Each predicate is assigned the bitmask of leaves it references:
   single-leaf conjuncts become leaf filters, equality atoms spanning two
   leaves become join graph edges, anything else is applied as soon as its
   leaves are joined.
2. :func:`enumerate_plan` runs bottom-up dynamic programming over subsets
   of leaves (``DPsub``), producing *bushy* plans; splits connected by a
   join edge are preferred, cartesian splits are considered only when a
   subset has no connected split.  Costing uses the shared per-operator
   steps of :mod:`~repro.core.planner.cost`; each predicate's selectivity
   is estimated *once* from the (filtered) leaf samples, so a subset's
   cardinality estimate is independent of the join order that produced it
   — the classical Selinger discipline that makes "keep one best plan per
   subset" exact for the enumerator's own cost metric (and the reason the
   ``DP ≤ every left-deep order`` property test is a theorem, not a
   hope).  Above :data:`GREEDY_THRESHOLD` leaves the ``3^n`` subset
   enumeration is replaced by a greedy cheapest-pair heuristic.
3. The winning tree is wrapped in a projection restoring the cluster's
   original output attribute order (a pure column permutation), so the
   reorder is invisible to everything downstream.

:func:`reorder_tree` walks a whole query top-down, reordering every
maximal cluster with at least :data:`MIN_REORDER_RELATIONS` leaves and
recursing into the leaves themselves — it is exposed to the planner as the
``ReorderJoins`` whole-tree rule of :mod:`~repro.core.planner.rules`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...relational.predicates import AttrAttr, Predicate, TruePredicate
from ..algebra.query import BaseRelation, Join, Product, Project, Query, Select
from .cost import (
    INDEX_JOIN_ENGINES,
    CostModel,
    Statistics,
    equality_join_selectivity,
    estimate_node,
    floored_predicate_selectivity,
    index_join_step,
    join_step,
    observed_override,
    product_step,
    select_step,
)
from .rules import RewriteContext, conjunction, conjuncts
from .sampling import RelationSample

#: Reordering only pays off for ≥3 relations (2-way joins are already fused).
MIN_REORDER_RELATIONS = 3

#: Above this leaf count the exact ``3^n`` subset DP gives way to the greedy
#: cheapest-pair heuristic.
GREEDY_THRESHOLD = 8


@dataclass(frozen=True)
class PredicateEntry:
    """One cross-leaf conjunct of the cluster.

    ``mask`` is the bitmask of leaves the predicate references.  ``join``
    is set for equality atoms spanning exactly two leaves and records
    ``(left_leaf, left_attr, right_leaf, right_attr)``.
    """

    index: int
    mask: int
    predicate: Predicate
    join: Optional[Tuple[int, str, int, str]]


@dataclass
class JoinGraph:
    """A flattened σ/×/⋈ cluster: leaves, per-leaf filters, cross predicates."""

    leaves: List[Query]
    leaf_attributes: List[Tuple[str, ...]]
    filters: List[List[Predicate]]
    predicates: List[PredicateEntry]
    output_attributes: Tuple[str, ...]

    def replace_leaves(self, leaves: Sequence[Query]) -> "JoinGraph":
        """Same graph over rewritten leaves (attribute sets must be unchanged)."""
        return JoinGraph(
            list(leaves), self.leaf_attributes, self.filters, self.predicates,
            self.output_attributes,
        )


def _flatten(query: Query, leaves: List[Query], predicates: List[Predicate]) -> None:
    if isinstance(query, Product):
        _flatten(query.left, leaves, predicates)
        _flatten(query.right, leaves, predicates)
    elif isinstance(query, Join):
        _flatten(query.left, leaves, predicates)
        _flatten(query.right, leaves, predicates)
        predicates.append(AttrAttr(query.left_attr, "=", query.right_attr))
    elif isinstance(query, Select):
        predicates.extend(conjuncts(query.predicate))
        _flatten(query.child, leaves, predicates)
    else:
        leaves.append(query)


def extract_join_graph(query: Query, context: RewriteContext) -> Optional[JoinGraph]:
    """Flatten the cluster rooted at ``query``, or None when it cannot be
    reordered safely (unknown or overlapping leaf schemas, unplaceable
    predicates)."""
    if not isinstance(query, (Select, Product, Join)):
        return None
    leaves: List[Query] = []
    raw_predicates: List[Predicate] = []
    _flatten(query, leaves, raw_predicates)
    if len(leaves) < 2:
        return None

    leaf_attributes: List[Tuple[str, ...]] = []
    attribute_owner: Dict[str, int] = {}
    for index, leaf in enumerate(leaves):
        attributes = context.attributes_of(leaf)
        if attributes is None:
            return None
        for attribute in attributes:
            if attribute in attribute_owner:
                return None  # ambiguous columns: reordering could change semantics
            attribute_owner[attribute] = index
        leaf_attributes.append(attributes)

    filters: List[List[Predicate]] = [[] for _ in leaves]
    predicates: List[PredicateEntry] = []
    for predicate in raw_predicates:
        if isinstance(predicate, TruePredicate):
            continue
        referenced = predicate.attributes()
        if not referenced or any(a not in attribute_owner for a in referenced):
            return None
        mask = 0
        for attribute in referenced:
            mask |= 1 << attribute_owner[attribute]
        if _popcount(mask) == 1:
            filters[attribute_owner[referenced[0]]].append(predicate)
            continue
        join_spec: Optional[Tuple[int, str, int, str]] = None
        if (
            isinstance(predicate, AttrAttr)
            and predicate.op in ("=", "==")
            and attribute_owner[predicate.left] != attribute_owner[predicate.right]
        ):
            join_spec = (
                attribute_owner[predicate.left],
                predicate.left,
                attribute_owner[predicate.right],
                predicate.right,
            )
        predicates.append(PredicateEntry(len(predicates), mask, predicate, join_spec))

    output_attributes = tuple(a for attrs in leaf_attributes for a in attrs)
    return JoinGraph(leaves, leaf_attributes, filters, predicates, output_attributes)


# --------------------------------------------------------------------------- #
# Plan states and their combination
# --------------------------------------------------------------------------- #


@dataclass
class PlanState:
    """A candidate plan covering the leaves in ``mask``."""

    mask: int
    query: Query
    attributes: Tuple[str, ...]
    rows: float
    cost: float
    joined: bool = False  # the last combine applied at least one join edge


class _Costing:
    """Per-graph costing context: leaf states + fixed per-predicate selectivities.

    Selectivities are estimated once, from the *filtered* leaf samples, and
    never from intermediate plans — so a subset's estimated cardinality is
    the same whichever order built it (Bellman optimality for the DP).
    For the same reason the enumerator's metric applies cross-leaf
    predicates purely multiplicatively, *without* the placeholder-density
    bump ``estimate()`` uses for selections: the bump is not multiplicative
    across predicates, so which predicate becomes "the join" versus a
    residual select would otherwise make a subset's cardinality depend on
    the order that built it.
    """

    def __init__(self, graph: JoinGraph, statistics: Statistics) -> None:
        self.graph = graph
        self.statistics = statistics
        self.model: CostModel = statistics.cost_model()
        # Physical property of a leaf: a bare, unfiltered base relation on an
        # index-capable engine can serve as the *inner* of an index
        # nested-loop join (probing the engine's cached hash index), so the
        # DP costs joins against such leaves as min(hash, index-nested-loop).
        self.index_leaf_masks: set = set()
        if statistics.engine in INDEX_JOIN_ENGINES:
            for index, leaf in enumerate(graph.leaves):
                if isinstance(leaf, BaseRelation) and not graph.filters[index]:
                    self.index_leaf_masks.add(1 << index)
        self.leaf_states: List[PlanState] = []
        leaf_samples: List[Optional[RelationSample]] = []
        for index, leaf in enumerate(graph.leaves):
            if graph.filters[index]:
                leaf = Select(leaf, conjunction(graph.filters[index]))
            node = estimate_node(leaf, statistics, self.model)
            leaf_samples.append(node.sample)
            self.leaf_states.append(
                PlanState(
                    mask=1 << index,
                    query=leaf,
                    attributes=graph.leaf_attributes[index],
                    rows=node.rows,
                    cost=node.cost,
                )
            )
        self.selectivities: Dict[int, float] = {}
        for entry in graph.predicates:
            if entry.join is not None:
                leaf_l, attr_l, leaf_r, attr_r = entry.join
                self.selectivities[entry.index] = equality_join_selectivity(
                    leaf_samples[leaf_l], attr_l, leaf_samples[leaf_r], attr_r
                )
            else:
                self.selectivities[entry.index] = floored_predicate_selectivity(entry.predicate)

    def combine(self, left: PlanState, right: PlanState) -> PlanState:
        """Join (or cross) two disjoint plan states, applying every predicate
        that becomes available, with the shared cost steps of ``cost.py``."""
        mask = left.mask | right.mask
        applicable = [
            entry
            for entry in self.graph.predicates
            if entry.mask & left.mask and entry.mask & right.mask and not entry.mask & ~mask
        ]
        attributes = left.attributes + right.attributes
        cost = left.cost + right.cost

        join_edges = [entry for entry in applicable if entry.join is not None]
        if join_edges:
            # The most selective edge becomes the join condition (fewest
            # emits); ties break on predicate index for determinism.
            chosen = min(join_edges, key=lambda e: (self.selectivities[e.index], e.index))
            leaf_l, attr_l, leaf_r, attr_r = chosen.join
            if (1 << leaf_l) & left.mask:
                left_attr, right_attr = attr_l, attr_r
            else:
                left_attr, right_attr = attr_r, attr_l
            selectivity = self.selectivities[chosen.index]
            out_arity = len(attributes)
            rows, added = join_step(left.rows, right.rows, selectivity, out_arity, self.model)
            query: Query = Join(left.query, right.query, left_attr, right_attr)
            # Physical alternatives: an index nested-loop join with the bare
            # base-relation side as the inner (either orientation — output
            # cardinality is identical, so subset estimates stay
            # order-independent; a swap only reorders columns, which the
            # final projection restores).
            if right.mask in self.index_leaf_masks:
                _, inlj_cost = index_join_step(
                    left.rows, right.rows, selectivity, out_arity, self.model
                )
                if inlj_cost < added:
                    added = inlj_cost
            if left.mask in self.index_leaf_masks:
                _, inlj_cost = index_join_step(
                    right.rows, left.rows, selectivity, out_arity, self.model
                )
                if inlj_cost < added:
                    added = inlj_cost
                    query = Join(right.query, left.query, right_attr, left_attr)
                    attributes = right.attributes + left.attributes
            remaining = [entry for entry in applicable if entry is not chosen]
            joined = True
        else:
            out_arity = len(attributes)
            rows, added = product_step(left.rows, right.rows, out_arity, self.model)
            query = Product(left.query, right.query)
            remaining = applicable
            joined = False

        if self.statistics.has_observed:
            # Executed-cardinality feedback: the subtree's semantic key is
            # order-independent, so the override keeps the Selinger "one
            # cardinality per subset" discipline intact while replacing the
            # sampled guess with runtime truth.
            rows, added = observed_override(
                query, self.statistics, rows, added, out_arity, self.model
            )
        cost += added
        if remaining:
            selectivity = 1.0
            for entry in remaining:
                selectivity *= self.selectivities[entry.index]
            # Density bump deliberately omitted (see class docstring): the
            # metric must stay multiplicative for order-independence.
            rows, select_cost = select_step(rows, selectivity, 0.0, self.model)
            cost += select_cost
            query = Select(query, conjunction([entry.predicate for entry in remaining]))
            if self.statistics.has_observed:
                rows, _ = observed_override(query, self.statistics, rows, 0.0, None, self.model)

        return PlanState(mask, query, attributes, rows, cost, joined)


# --------------------------------------------------------------------------- #
# Enumeration: exact subset DP, greedy fallback
# --------------------------------------------------------------------------- #


def _popcount(mask: int) -> int:
    return bin(mask).count("1")


def _dp_enumerate(costing: _Costing) -> PlanState:
    best: Dict[int, PlanState] = {state.mask: state for state in costing.leaf_states}
    full = (1 << len(costing.leaf_states)) - 1
    masks = sorted(
        (m for m in range(3, full + 1) if _popcount(m) >= 2), key=_popcount
    )
    for mask in masks:
        lowest = mask & -mask
        # Every split is considered, cartesian ones included: a plan ending in
        # a pure product above two well-filtered sides can be the optimum, and
        # with order-independent costing each combine is cheap enough that the
        # classical "connected splits only" pruning buys nothing.
        sub = (mask - 1) & mask
        while sub:
            if sub & lowest:
                other = mask ^ sub
                candidate = costing.combine(best[sub], best[other])
                current = best.get(mask)
                if current is None or candidate.cost < current.cost:
                    best[mask] = candidate
            sub = (sub - 1) & mask
    return best[full]


def _greedy_enumerate(costing: _Costing) -> PlanState:
    current = list(costing.leaf_states)
    while len(current) > 1:
        best_pair: Optional[Tuple[int, int]] = None
        best_state: Optional[PlanState] = None
        for i in range(len(current)):
            for j in range(i + 1, len(current)):
                candidate = costing.combine(current[i], current[j])
                # Never pick a cartesian pair while a joinable pair exists.
                if best_state is not None and best_state.joined and not candidate.joined:
                    continue
                if (
                    best_state is None
                    or (candidate.joined and not best_state.joined)
                    or candidate.cost < best_state.cost
                ):
                    best_pair = (i, j)
                    best_state = candidate
        i, j = best_pair
        current = [s for k, s in enumerate(current) if k not in (i, j)]
        current.append(best_state)
    return current[0]


def enumerate_plan(graph: JoinGraph, statistics: Statistics) -> Query:
    """The cheapest join order for ``graph`` (output columns order-preserved)."""
    best = enumerate_plan_state(graph, statistics)
    query = best.query
    if best.attributes != graph.output_attributes:
        query = Project(query, graph.output_attributes)
    return query


def enumerate_plan_state(graph: JoinGraph, statistics: Statistics) -> PlanState:
    """The winning :class:`PlanState` (exposed for the property tests)."""
    costing = _Costing(graph, statistics)
    if len(costing.leaf_states) > GREEDY_THRESHOLD:
        return _greedy_enumerate(costing)
    return _dp_enumerate(costing)


def forced_order_state(
    graph: JoinGraph, statistics: Statistics, order: Sequence[int]
) -> PlanState:
    """The left-deep plan joining the leaves in exactly ``order``.

    Costed with the same per-subset discipline as the enumerator — the
    property tests compare the DP winner against every such forced order.
    """
    costing = _Costing(graph, statistics)
    state = costing.leaf_states[order[0]]
    for index in order[1:]:
        state = costing.combine(state, costing.leaf_states[index])
    return state


# --------------------------------------------------------------------------- #
# Whole-tree driver (the ReorderJoins rule)
# --------------------------------------------------------------------------- #


def reorder_tree(query: Query, context: RewriteContext) -> Optional[Query]:
    """Reorder every maximal ≥3-leaf cluster of ``query``; None if unchanged."""
    if isinstance(query, (Select, Product, Join)):
        graph = extract_join_graph(query, context)
        if graph is not None and len(graph.leaves) >= MIN_REORDER_RELATIONS:
            rewritten_leaves: List[Query] = []
            leaves_changed = False
            for leaf in graph.leaves:
                rewritten = reorder_tree(leaf, context)
                rewritten_leaves.append(rewritten if rewritten is not None else leaf)
                leaves_changed = leaves_changed or rewritten is not None
            if leaves_changed:
                graph = graph.replace_leaves(rewritten_leaves)
            best = enumerate_plan(graph, context.statistics)
            if repr(best) != repr(query):
                return best
            return None
    children = query.children()
    if not children:
        return None
    rewritten_children = tuple(reorder_tree(child, context) for child in children)
    if all(child is None for child in rewritten_children):
        return None
    return query.with_children(
        tuple(
            rewritten if rewritten is not None else original
            for rewritten, original in zip(rewritten_children, children)
        )
    )
