"""Observed-cardinality feedback: semantic keys and EWMA records.

PR 5 installed the runtime→planner feedback channel
(:meth:`~repro.core.planner.catalog.StatisticsCatalog.record_actual`) but
keyed observations by the *physical operator label* — a rendering no
planner code path could ever look up again, because the next planning pass
works on logical trees whose shapes (and labels) depend on the very join
order the feedback is supposed to correct.  This module fixes the keying:

* :func:`cardinality_key` canonicalizes a σ/×/⋈ subtree into an
  order-independent string — the sorted leaf identities plus the sorted
  canonical predicates applied in the subtree.  Two subtrees that join the
  same relations under the same predicates get the same key *whatever
  order* built them, which is exactly the Selinger discipline the
  join-order DP already relies on for its own cardinality estimates.  An
  executed ``HashJoin(R⋈S)`` therefore records its actual output rows
  under the same key the DP computes for the ``{R, S}`` subset next time —
  the lookup that closes the loop.
* :class:`ObservedCardinality` is the per-key record: EWMAs of the actual
  *and* the estimated output rows (both blended with the same weight, so
  error metrics compare like with like), the observation count, and a
  snapshot of the version keys of every base relation the subtree touches
  (observations go stale the moment any of those relations mutates).

Consumption lives in :mod:`~repro.core.planner.cost` (``Statistics``
prefers a sufficiently observed EWMA over the sampled estimate) and in
:mod:`~repro.core.planner.joins` (the DP overrides subset cardinalities).
Projections deliberately bound the keyed region: π can shrink a set-
semantics result, so a subtree containing a projection is keyed as an
opaque leaf rather than folded into the surrounding join cluster —
feedback through a projection is merely *missed*, never misattributed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

from ...relational.predicates import And, AttrAttr, Predicate, TruePredicate
from ..algebra.query import Join, Product, Query, Select

#: Observations below this count are ignored by the planner: one noisy
#: execution must not override a sampled estimate.
OBSERVED_MIN_COUNT = 2

#: Default EWMA weight of one observation (matches the exec feedback loop).
OBSERVED_ALPHA = 0.5


@dataclass(frozen=True)
class ObservedCardinality:
    """EWMA-blended estimated-vs-actual output rows of one keyed subtree."""

    #: EWMA of the observed output cardinality.
    actual_rows: float
    #: EWMA of the planner's estimate — blended with the same ``alpha`` as
    #: the actuals, so the pair stays comparable (a fresh estimate compared
    #: against a stale actual EWMA systematically misreports the error).
    estimated_rows: float
    #: Number of observations folded in so far.
    count: int
    #: Base relations the subtree reads (sorted), and their version keys at
    #: recording time — the staleness check.
    relations: Tuple[str, ...]
    versions: Tuple[Any, ...]

    def blend(self, estimated: float, actual: float, alpha: float, versions: Tuple[Any, ...]) -> "ObservedCardinality":
        """Fold one more observation in (restarting if the data moved)."""
        if versions != self.versions:
            # The base relations changed since the last observation: the old
            # EWMA describes different data, so restart rather than blend.
            return ObservedCardinality(actual, estimated, 1, self.relations, versions)
        return ObservedCardinality(
            (1.0 - alpha) * self.actual_rows + alpha * actual,
            (1.0 - alpha) * self.estimated_rows + alpha * estimated,
            self.count + 1,
            self.relations,
            versions,
        )

    @property
    def q_error(self) -> float:
        """``max(est, actual) / min(est, actual)`` of the EWMAs (≥ 1)."""
        estimated = max(1.0, self.estimated_rows)
        actual = max(1.0, self.actual_rows)
        return max(estimated, actual) / min(estimated, actual)


def predicate_key(predicate: Predicate) -> str:
    """Canonical rendering of one conjunct (``A = B`` equals ``B = A``)."""
    if isinstance(predicate, AttrAttr) and predicate.op in ("=", "=="):
        left, right = sorted((predicate.left, predicate.right))
        return f"{left}={right}"
    return repr(predicate)


def _conjuncts(predicate: Predicate) -> List[Predicate]:
    if isinstance(predicate, And):
        parts: List[Predicate] = []
        for part in predicate.parts:
            parts.extend(_conjuncts(part))
        return parts
    return [predicate]


def _flatten(query: Query, leaves: List[Query], predicates: List[Predicate]) -> None:
    """Flatten a σ/×/⋈ cluster, mirroring the join-order enumerator's walk.

    Anything else — including π, whose duplicate elimination changes
    cardinality — becomes an opaque leaf.
    """
    if isinstance(query, Product):
        _flatten(query.left, leaves, predicates)
        _flatten(query.right, leaves, predicates)
    elif isinstance(query, Join):
        _flatten(query.left, leaves, predicates)
        _flatten(query.right, leaves, predicates)
        predicates.append(AttrAttr(query.left_attr, "=", query.right_attr))
    elif isinstance(query, Select):
        predicates.extend(_conjuncts(query.predicate))
        _flatten(query.child, leaves, predicates)
    else:
        leaves.append(query)


def cardinality_key(query: Query) -> str:
    """Order-independent cardinality identity of a query subtree.

    Every join order the enumerator could produce for the same cluster maps
    to the same key; non-cluster leaves contribute their (deterministic)
    ``repr``.  The key is what executed-operator observations are recorded
    under, and what the estimator and the join-order DP look up.
    """
    leaves: List[Query] = []
    predicates: List[Predicate] = []
    _flatten(query, leaves, predicates)
    leaf_keys = sorted(repr(leaf) for leaf in leaves)
    predicate_keys = sorted(
        predicate_key(p) for p in predicates if not isinstance(p, TruePredicate)
    )
    return "&".join(leaf_keys) + "|" + "&".join(predicate_keys)
