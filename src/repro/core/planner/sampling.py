"""Sampled statistics for the planner: reservoir samples of template rows.

The cost model of PR 1 priced every equality atom at a fixed 10 % and every
range atom at 1/3 — good enough to prefer a join over a product, but blind
to the difference between joining census copies on ``POWSTATE`` (60 states,
selectivity ≈ 1/60) and on ``CITIZEN`` (85 % of the population shares one
value, selectivity ≈ 0.73).  Join-order search lives or dies on exactly
that distinction, so this module estimates selectivities and distinct
counts from a *bounded reservoir sample* of template rows instead.

Design:

* :func:`reservoir` draws a fixed-size uniform sample from a row iterator
  of unknown length in one pass (Vitter's algorithm R) with a fixed seed,
  so plans are deterministic for a given engine state.
* :class:`RelationSample` holds the sampled rows plus the estimated
  population size and supports the operations the cost model needs:
  predicate selectivity (a row whose referenced field is a ``?``
  placeholder counts as satisfied — on the representation such tuples
  survive every selection, lines 2–6 of Figure 16), per-attribute value
  histograms, distinct counts, and *derived* samples: ``filter`` /
  ``project`` / ``restrict`` / ``rename`` / ``cross`` / ``equijoin``
  propagate a sample through the operators of a candidate plan, so the
  selectivity of a predicate *above* a join is estimated against a sample
  that already reflects the join.
* :func:`join_selectivity` estimates the selectivity of ``A = B`` across
  two samples from the value histograms, ``Σ_v f_L(v) · f_R(v)`` — the
  frequency-weighted generalization of Selinger's ``1/max(d_A, d_B)`` that
  stays accurate under the census generator's skew.

Estimated selectivities are floored (:func:`floor_selectivity`) so an
empty sample intersection never makes a plan look free.

``sample_database`` / ``sample_wsd`` / ``sample_uwsdt`` build the samples
:class:`~repro.core.planner.cost.Statistics` carries; for WSDs the sampled
tuples resolve each field through its component (certain fields to their
value, genuinely uncertain fields to the placeholder sentinel).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ...relational.predicates import Predicate
from ...relational.schema import RelationSchema
from ...relational.values import BOTTOM, PLACEHOLDER, is_placeholder

#: Default bound on sampled rows per relation.
DEFAULT_SAMPLE_SIZE = 256

#: Fixed seed: sampling must be deterministic for reproducible plans.
SAMPLE_SEED = 0x5EED

#: Cap on rows of derived (joined / crossed) samples.
DERIVED_SAMPLE_CAP = DEFAULT_SAMPLE_SIZE

#: Monotonic count of relations sampled since import.  The statistics
#: catalog's whole point is that this stops moving once its entries are
#: warm; tests and benchmarks assert on deltas of it.
_SAMPLING_CALLS = 0


def sampling_call_count() -> int:
    """Number of relation-sampling passes performed so far (monotonic)."""
    return _SAMPLING_CALLS


def _record_sampling() -> None:
    from ...obs.metrics import get_registry

    global _SAMPLING_CALLS
    _SAMPLING_CALLS += 1
    get_registry().counter("repro.planner.sampling_calls").inc()


def reservoir(
    rows: Iterable[Tuple[Any, ...]], capacity: int, seed: int = SAMPLE_SEED
) -> Tuple[List[Tuple[Any, ...]], int]:
    """One-pass fixed-size uniform sample; returns ``(sample, population)``."""
    rng = random.Random(seed)
    sample: List[Tuple[Any, ...]] = []
    population = 0
    for row in rows:
        population += 1
        if len(sample) < capacity:
            sample.append(tuple(row))
            continue
        slot = rng.randrange(population)
        if slot < capacity:
            sample[slot] = tuple(row)
    return sample, population


def floor_selectivity(selectivity: float, sample_size: int) -> float:
    """Clamp into ``(0, 1]``: a zero-match sample must not make a plan free."""
    floor = 0.5 / max(1, sample_size)
    return max(min(selectivity, 1.0), floor)


class RelationSample:
    """A bounded row sample of one relation (or of a derived subplan)."""

    __slots__ = ("relation", "attributes", "rows", "population", "_histograms")

    def __init__(
        self,
        relation: str,
        attributes: Sequence[str],
        rows: Sequence[Tuple[Any, ...]],
        population: int,
    ) -> None:
        self.relation = relation
        self.attributes: Tuple[str, ...] = tuple(attributes)
        self.rows: List[Tuple[Any, ...]] = [tuple(row) for row in rows]
        self.population = population
        self._histograms: Dict[str, Dict[Any, int]] = {}

    def __len__(self) -> int:
        return len(self.rows)

    def position(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise KeyError(attribute) from None

    def has_attributes(self, attributes: Iterable[str]) -> bool:
        known = set(self.attributes)
        return all(a in known for a in attributes)

    # -- selectivity ------------------------------------------------------- #

    def selectivity(self, predicate: Predicate) -> Optional[float]:
        """Fraction of sampled rows satisfying ``predicate``.

        Rows with a placeholder in a referenced attribute count as
        satisfied (they survive the selection on the representation).
        Returns None when the sample is empty or references unknown
        attributes — callers fall back to the fixed constants.
        """
        if not self.rows:
            return None
        referenced = predicate.attributes()
        if not self.has_attributes(referenced):
            return None
        positions = [self.position(a) for a in referenced]
        schema = RelationSchema(self.relation or "__sample__", self.attributes)
        compiled = predicate.compile(schema)
        matched = 0
        for row in self.rows:
            if any(is_placeholder(row[p]) for p in positions):
                matched += 1
            elif compiled(row):
                matched += 1
        return floor_selectivity(matched / len(self.rows), len(self.rows))

    # -- histograms -------------------------------------------------------- #

    def histogram(self, attribute: str) -> Dict[Any, int]:
        """Value counts of ``attribute`` over the sample (placeholders excluded)."""
        if attribute not in self._histograms:
            position = self.position(attribute)
            counts: Dict[Any, int] = {}
            for row in self.rows:
                value = row[position]
                if is_placeholder(value) or value is BOTTOM:
                    continue
                counts[value] = counts.get(value, 0) + 1
            self._histograms[attribute] = counts
        return self._histograms[attribute]

    def distinct_count(self, attribute: str) -> int:
        """Estimated number of distinct values of ``attribute`` (at least 1).

        Empty samples, unknown attributes and all-placeholder columns all
        report 1 rather than raising or returning 0 — a distinct count
        feeds divisions in callers' estimates.
        """
        try:
            return max(1, len(self.histogram(attribute)))
        except KeyError:
            return 1

    # -- derived samples --------------------------------------------------- #

    def filter(self, predicate: Predicate) -> "RelationSample":
        """The sample restricted to rows satisfying ``predicate``.

        Placeholder rows are kept, mirroring :meth:`selectivity`.  The
        derived population scales with the observed match fraction.
        """
        referenced = predicate.attributes()
        if not self.rows or not self.has_attributes(referenced):
            return self
        positions = [self.position(a) for a in referenced]
        schema = RelationSchema(self.relation or "__sample__", self.attributes)
        compiled = predicate.compile(schema)
        kept = [
            row
            for row in self.rows
            if any(is_placeholder(row[p]) for p in positions) or compiled(row)
        ]
        fraction = floor_selectivity(len(kept) / len(self.rows), len(self.rows))
        return RelationSample(
            self.relation, self.attributes, kept, max(1, round(self.population * fraction))
        )

    def project(self, attributes: Sequence[str]) -> Optional["RelationSample"]:
        if not self.has_attributes(attributes):
            return None
        positions = [self.position(a) for a in attributes]
        rows = [tuple(row[p] for p in positions) for row in self.rows]
        return RelationSample(self.relation, attributes, rows, self.population)

    def rename(self, old: str, new: str) -> "RelationSample":
        attributes = tuple(new if a == old else a for a in self.attributes)
        return RelationSample(self.relation, attributes, self.rows, self.population)

    def cross(self, other: "RelationSample", capacity: int = DERIVED_SAMPLE_CAP) -> "RelationSample":
        """A capped sample of the cartesian product (deterministic pairing)."""
        rows: List[Tuple[Any, ...]] = []
        for left in self.rows:
            for right in other.rows:
                rows.append(left + right)
                if len(rows) >= capacity:
                    break
            if len(rows) >= capacity:
                break
        return RelationSample(
            "", self.attributes + other.attributes, rows, max(1, self.population * other.population)
        )

    def equijoin(
        self,
        other: "RelationSample",
        left_attr: str,
        right_attr: str,
        capacity: int = DERIVED_SAMPLE_CAP,
    ) -> Optional["RelationSample"]:
        """A capped hash-join of the two samples (placeholder rows dropped)."""
        selectivity = join_selectivity(self, left_attr, other, right_attr)
        if selectivity is None:
            return None
        left_position = self.position(left_attr)
        index: Dict[Any, List[Tuple[Any, ...]]] = {}
        for row in self.rows:
            value = row[left_position]
            if is_placeholder(value):
                continue
            index.setdefault(value, []).append(row)
        right_position = other.position(right_attr)
        rows: List[Tuple[Any, ...]] = []
        for right_row in other.rows:
            value = right_row[right_position]
            if is_placeholder(value):
                continue
            for left_row in index.get(value, ()):
                rows.append(left_row + right_row)
                if len(rows) >= capacity:
                    break
            if len(rows) >= capacity:
                break
        population = max(1, round(self.population * other.population * selectivity))
        return RelationSample("", self.attributes + other.attributes, rows, population)


def join_selectivity(
    left: RelationSample, left_attr: str, right: RelationSample, right_attr: str
) -> Optional[float]:
    """Selectivity of ``left_attr = right_attr``: ``Σ_v f_L(v) · f_R(v)``.

    Returns None when either sample is empty or misses the attribute, so
    callers fall back to the fixed equality constant.
    """
    if not left.rows or not right.rows:
        return None
    if not left.has_attributes((left_attr,)) or not right.has_attributes((right_attr,)):
        return None
    left_histogram = left.histogram(left_attr)
    right_histogram = right.histogram(right_attr)
    if not left_histogram or not right_histogram:
        return None
    smaller, larger = (
        (left_histogram, right_histogram)
        if len(left_histogram) <= len(right_histogram)
        else (right_histogram, left_histogram)
    )
    overlap = sum(count * larger.get(value, 0) for value, count in smaller.items())
    selectivity = overlap / (len(left.rows) * len(right.rows))
    return floor_selectivity(selectivity, len(left.rows) * len(right.rows))


# --------------------------------------------------------------------------- #
# Engine samplers (used by Statistics.from_database / from_wsd / from_uwsdt)
# --------------------------------------------------------------------------- #


def sample_database(
    database: Any,
    capacity: int = DEFAULT_SAMPLE_SIZE,
    seed: int = SAMPLE_SEED,
    only: Optional[Sequence[str]] = None,
) -> Dict[str, RelationSample]:
    """Sample the database's relations (restricted to ``only`` when given —
    planning passes the query's base relations so unrelated, possibly huge
    relations are never scanned)."""
    samples: Dict[str, RelationSample] = {}
    wanted = set(only) if only is not None else None
    for relation in database:
        if wanted is not None and relation.schema.name not in wanted:
            continue
        _record_sampling()
        rows, population = reservoir(iter(relation), capacity, seed)
        samples[relation.schema.name] = RelationSample(
            relation.schema.name, relation.schema.attributes, rows, population
        )
    return samples


def sample_uwsdt(
    uwsdt: Any,
    capacity: int = DEFAULT_SAMPLE_SIZE,
    seed: int = SAMPLE_SEED,
    only: Optional[Sequence[str]] = None,
) -> Dict[str, RelationSample]:
    """Sample template rows; placeholder fields stay the ``?`` sentinel."""
    samples: Dict[str, RelationSample] = {}
    wanted = set(only) if only is not None else None
    for relation_schema in uwsdt.schema:
        if wanted is not None and relation_schema.name not in wanted:
            continue
        _record_sampling()
        rows, population = reservoir(
            (values for _, values in uwsdt.template_rows(relation_schema.name)),
            capacity,
            seed,
        )
        samples[relation_schema.name] = RelationSample(
            relation_schema.name, relation_schema.attributes, rows, population
        )
    return samples


def sample_wsd(
    wsd: Any,
    capacity: int = DEFAULT_SAMPLE_SIZE,
    seed: int = SAMPLE_SEED,
    only: Optional[Sequence[str]] = None,
) -> Dict[str, RelationSample]:
    """Sample WSD tuples, resolving each field through its component.

    Tuple ids are reservoir-sampled first so only the sampled tuples pay
    the per-field component lookups.  A field whose component gives it a
    single domain value in every local world is certain; anything else
    (several candidate values, or possibly ``⊥``) becomes the placeholder
    sentinel, exactly as a UWSDT template would store it.
    """
    from ...core.fields import FieldRef

    samples: Dict[str, RelationSample] = {}
    wanted = set(only) if only is not None else None
    for relation_schema in wsd.schema:
        if wanted is not None and relation_schema.name not in wanted:
            continue
        _record_sampling()
        tuple_ids = wsd.tuple_ids.get(relation_schema.name, [])
        sampled_ids, population = reservoir(((tid,) for tid in tuple_ids), capacity, seed)
        rows: List[Tuple[Any, ...]] = []
        for (tuple_id,) in sampled_ids:
            values: List[Any] = []
            for attribute in relation_schema.attributes:
                field = FieldRef(relation_schema.name, tuple_id, attribute)
                column = wsd.component_for(field).column(field)
                first = column[0]
                if first is not BOTTOM and all(value == first for value in column[1:]):
                    values.append(first)
                else:
                    values.append(PLACEHOLDER)
            rows.append(tuple(values))
        samples[relation_schema.name] = RelationSample(
            relation_schema.name, relation_schema.attributes, rows, population
        )
    return samples
