"""Logical query planner: rewrite rules + cost model over :class:`Query` ASTs.

* :mod:`repro.core.planner.rules`   — semantics-preserving rewrites
  (selection pushdown, σ(A=B)∘× → equi-join fusion, projection pushdown,
  rename elimination).
* :mod:`repro.core.planner.cost`    — cardinality/width cost model fed by
  template-row counts and component statistics.
* :mod:`repro.core.planner.planner` — the fixpoint driver and the
  inspectable :class:`Plan` (``plan.explain()``).
"""

from .cost import CostEstimate, Statistics, estimate, output_attributes, predicate_selectivity
from .planner import Plan, RuleApplication, plan, plan_for_engine, rewrite
from .rules import (
    DEFAULT_PHASES,
    EliminateRename,
    EliminateTrueSelect,
    FuseSelectIntoJoin,
    MergeSelects,
    PushProjectDown,
    PushSelectDown,
    RewriteContext,
    RewriteRule,
    conjunction,
    conjuncts,
    substitute_attributes,
)

__all__ = [
    "CostEstimate",
    "Statistics",
    "estimate",
    "output_attributes",
    "predicate_selectivity",
    "Plan",
    "RuleApplication",
    "plan",
    "plan_for_engine",
    "rewrite",
    "DEFAULT_PHASES",
    "EliminateRename",
    "EliminateTrueSelect",
    "FuseSelectIntoJoin",
    "MergeSelects",
    "PushProjectDown",
    "PushSelectDown",
    "RewriteContext",
    "RewriteRule",
    "conjunction",
    "conjuncts",
    "substitute_attributes",
]
