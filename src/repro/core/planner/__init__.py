"""Logical query planner: rewrite rules + cost model over :class:`Query` ASTs.

* :mod:`repro.core.planner.rules`    — semantics-preserving rewrites
  (selection pushdown, σ(A=B)∘× → equi-join fusion, projection pushdown,
  rename elimination, join-order search).
* :mod:`repro.core.planner.cost`     — cardinality/width cost model with
  per-engine operator constants, fed by template-row counts, component
  statistics and bounded row samples.
* :mod:`repro.core.planner.sampling` — reservoir samples of template rows;
  sampled predicate/join selectivities and distinct counts.
* :mod:`repro.core.planner.joins`    — join-graph extraction and the
  Selinger-style bushy-plan enumerator (DP ≤ 8 relations, greedy above).
* :mod:`repro.core.planner.catalog`  — the per-engine statistics catalog:
  version-keyed caching of samples/row counts/densities, so repeated
  planning against an unchanged engine does zero sampling work.
* :mod:`repro.core.planner.observed` — semantic cardinality keys and the
  EWMA observation records through which executed-operator cardinalities
  feed back into estimation (consumed by ``cost`` and ``joins``).
* :mod:`repro.core.planner.calibrate` — microbenchmark-fitted cost
  constants, persisted as JSON profiles ``CostModel.for_engine`` loads.
* :mod:`repro.core.planner.planner`  — the fixpoint driver and the
  inspectable :class:`Plan` (``plan.explain()``).
"""

from .calibrate import (
    CALIBRATION_ENGINES,
    CalibrationProfile,
    Measurement,
    calibrate,
    fit_cost_model,
    run_microbenchmarks,
)
from .catalog import CatalogEntry, StatisticsCatalog, catalog_for
from .cost import (
    COST_MODELS,
    COST_PROFILE_ENV,
    COST_PROFILE_FORMAT,
    CostEstimate,
    CostModel,
    FIXED_SELECTIVITY_FLOOR,
    Statistics,
    active_cost_profile_path,
    clear_cost_profile,
    equality_join_selectivity,
    estimate,
    floored_predicate_selectivity,
    install_cost_profile,
    load_cost_profile,
    output_attributes,
    parse_cost_profile,
    predicate_selectivity,
    selection_selectivity,
)
from .joins import (
    GREEDY_THRESHOLD,
    JoinGraph,
    MIN_REORDER_RELATIONS,
    enumerate_plan,
    extract_join_graph,
    reorder_tree,
)
from .observed import (
    OBSERVED_ALPHA,
    OBSERVED_MIN_COUNT,
    ObservedCardinality,
    cardinality_key,
)
from .planner import (
    Plan,
    RuleApplication,
    describe_join_order,
    plan,
    plan_call_count,
    plan_for_engine,
    rewrite,
)
from .rules import (
    DEFAULT_PHASES,
    EliminateRename,
    EliminateTrueSelect,
    FuseSelectIntoJoin,
    MergeSelects,
    PushProjectDown,
    PushSelectDown,
    ReorderJoins,
    RewriteContext,
    RewriteRule,
    conjunction,
    conjuncts,
    substitute_attributes,
)
from .sampling import (
    DEFAULT_SAMPLE_SIZE,
    RelationSample,
    join_selectivity,
    reservoir,
    sampling_call_count,
)

__all__ = [
    "CALIBRATION_ENGINES",
    "CalibrationProfile",
    "Measurement",
    "calibrate",
    "fit_cost_model",
    "run_microbenchmarks",
    "CatalogEntry",
    "StatisticsCatalog",
    "catalog_for",
    "COST_MODELS",
    "COST_PROFILE_ENV",
    "COST_PROFILE_FORMAT",
    "CostEstimate",
    "CostModel",
    "FIXED_SELECTIVITY_FLOOR",
    "Statistics",
    "active_cost_profile_path",
    "clear_cost_profile",
    "equality_join_selectivity",
    "estimate",
    "floored_predicate_selectivity",
    "install_cost_profile",
    "load_cost_profile",
    "output_attributes",
    "parse_cost_profile",
    "predicate_selectivity",
    "selection_selectivity",
    "GREEDY_THRESHOLD",
    "JoinGraph",
    "MIN_REORDER_RELATIONS",
    "enumerate_plan",
    "extract_join_graph",
    "reorder_tree",
    "OBSERVED_ALPHA",
    "OBSERVED_MIN_COUNT",
    "ObservedCardinality",
    "cardinality_key",
    "Plan",
    "RuleApplication",
    "describe_join_order",
    "plan",
    "plan_call_count",
    "plan_for_engine",
    "rewrite",
    "DEFAULT_PHASES",
    "EliminateRename",
    "EliminateTrueSelect",
    "FuseSelectIntoJoin",
    "MergeSelects",
    "PushProjectDown",
    "PushSelectDown",
    "ReorderJoins",
    "RewriteContext",
    "RewriteRule",
    "conjunction",
    "conjuncts",
    "substitute_attributes",
    "DEFAULT_SAMPLE_SIZE",
    "RelationSample",
    "join_selectivity",
    "reservoir",
    "sampling_call_count",
]
