"""Logical query planner: rewrite rules + cost model over :class:`Query` ASTs.

* :mod:`repro.core.planner.rules`    — semantics-preserving rewrites
  (selection pushdown, σ(A=B)∘× → equi-join fusion, projection pushdown,
  rename elimination, join-order search).
* :mod:`repro.core.planner.cost`     — cardinality/width cost model with
  per-engine operator constants, fed by template-row counts, component
  statistics and bounded row samples.
* :mod:`repro.core.planner.sampling` — reservoir samples of template rows;
  sampled predicate/join selectivities and distinct counts.
* :mod:`repro.core.planner.joins`    — join-graph extraction and the
  Selinger-style bushy-plan enumerator (DP ≤ 8 relations, greedy above).
* :mod:`repro.core.planner.planner`  — the fixpoint driver and the
  inspectable :class:`Plan` (``plan.explain()``).
"""

from .cost import (
    COST_MODELS,
    CostEstimate,
    CostModel,
    Statistics,
    equality_join_selectivity,
    estimate,
    output_attributes,
    predicate_selectivity,
    selection_selectivity,
)
from .joins import (
    GREEDY_THRESHOLD,
    JoinGraph,
    MIN_REORDER_RELATIONS,
    enumerate_plan,
    extract_join_graph,
    reorder_tree,
)
from .planner import (
    Plan,
    RuleApplication,
    describe_join_order,
    plan,
    plan_for_engine,
    rewrite,
)
from .rules import (
    DEFAULT_PHASES,
    EliminateRename,
    EliminateTrueSelect,
    FuseSelectIntoJoin,
    MergeSelects,
    PushProjectDown,
    PushSelectDown,
    ReorderJoins,
    RewriteContext,
    RewriteRule,
    conjunction,
    conjuncts,
    substitute_attributes,
)
from .sampling import (
    DEFAULT_SAMPLE_SIZE,
    RelationSample,
    join_selectivity,
    reservoir,
)

__all__ = [
    "COST_MODELS",
    "CostEstimate",
    "CostModel",
    "Statistics",
    "equality_join_selectivity",
    "estimate",
    "output_attributes",
    "predicate_selectivity",
    "selection_selectivity",
    "GREEDY_THRESHOLD",
    "JoinGraph",
    "MIN_REORDER_RELATIONS",
    "enumerate_plan",
    "extract_join_graph",
    "reorder_tree",
    "Plan",
    "RuleApplication",
    "describe_join_order",
    "plan",
    "plan_for_engine",
    "rewrite",
    "DEFAULT_PHASES",
    "EliminateRename",
    "EliminateTrueSelect",
    "FuseSelectIntoJoin",
    "MergeSelects",
    "PushProjectDown",
    "PushSelectDown",
    "ReorderJoins",
    "RewriteContext",
    "RewriteRule",
    "conjunction",
    "conjuncts",
    "substitute_attributes",
    "DEFAULT_SAMPLE_SIZE",
    "RelationSample",
    "join_selectivity",
    "reservoir",
]
