"""CLI entry point: ``python -m repro.core.planner`` runs the calibrator.

See :mod:`repro.core.planner.calibrate` for the options and the profile
JSON format.
"""

from .calibrate import main

if __name__ == "__main__":
    raise SystemExit(main())
