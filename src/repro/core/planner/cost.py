"""Cost model for the logical planner.

The planner compares rewritten plans through a simple cost model: estimated
operator work as a function of input cardinalities.  The cardinalities come
from :class:`Statistics`, which every engine can produce cheaply —

* a :class:`~repro.relational.database.Database` reports relation sizes,
* a :class:`~repro.core.wsd.WSD` reports tuple counts per relation plus the
  fraction of fields whose component has more than one local world,
* a :class:`~repro.core.uwsdt.UWSDT` reports template-row counts plus the
  placeholder density per template (the quantity the paper's Figure 27
  tracks as ``|R|`` and ``#comp``).

Since PR 3 the statistics also carry a bounded reservoir *sample* of each
relation's template rows (:mod:`~repro.core.planner.sampling`): predicate
and join selectivities are estimated from the sample whenever one is
available, and fall back to the fixed constants (``EQUALITY_SELECTIVITY``
etc.) otherwise — so schema-only planning keeps working unchanged.

Per-operator constants are engine-specific (:class:`CostModel`): a WSD
product pays component ``ext`` copies per output tuple while a classical
product just concatenates rows, and the difference operator composes
components pairwise on both representation engines.  The planner only ever
compares plans for the *same* engine, so only the constants' ratios matter.

Uncertainty matters to cost: a selection over a template keeps every tuple
whose referenced field is a placeholder (lines 2–6 of Figure 16), so its
effective selectivity is ``s + d·(1 − s)`` for placeholder density ``d``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple

from ...relational.predicates import And, AttrAttr, AttrConst, Not, Or, Predicate, TruePredicate
from ..algebra.query import (
    BaseRelation,
    Difference,
    Intersection,
    Join,
    Product,
    Project,
    Query,
    Rename,
    Select,
    Union,
)
from .observed import ObservedCardinality, cardinality_key
from .sampling import (
    DEFAULT_SAMPLE_SIZE,
    RelationSample,
    join_selectivity,
    sample_database,
    sample_uwsdt,
    sample_wsd,
)

#: Cardinality assumed for relations the statistics do not know about.
DEFAULT_ROW_COUNT = 1_000

#: Assumed selectivity of an equality atom ``A = c`` / ``A = B`` when no
#: sample is available.
EQUALITY_SELECTIVITY = 0.1

#: Assumed selectivity of a range atom (``<``, ``<=``, ``>``, ``>=``).
RANGE_SELECTIVITY = 1.0 / 3.0

#: Floor applied to fixed-constant selectivity estimates before they feed a
#: cost formula — mirrors :func:`~repro.core.planner.sampling.floor_selectivity`
#: for sampled estimates.  A predicate the constants deem impossible (e.g.
#: ``¬TRUE``, or a deep conjunction of equalities) must not zero out every
#: cost downstream of it and make an arbitrarily bad plan look free.
FIXED_SELECTIVITY_FLOOR = 0.5 / DEFAULT_SAMPLE_SIZE


@dataclass(frozen=True)
class CostModel:
    """Per-engine cost constants, in units of "one tuple through one operator".

    The constants were calibrated by timing each operator on the census
    workload at bench sizes and normalizing to the classical select:

    * ``Database`` operators move plain tuples; the hash join's build and
      probe are as cheap as a scan.
    * ``WSD`` operators copy component columns (``ext``) per output tuple
      and ``select``/``project`` run the per-local-world machinery of
      Figure 9; ``difference`` composes components pairwise.
    * ``UWSDT`` operators are template-relation work plus component ``ext``
      only for placeholder fields — cheaper than WSD, dearer than classical.
    """

    name: str = "generic"
    select_tuple: float = 1.0
    project_tuple: float = 1.0
    rename_tuple: float = 1.0
    union_tuple: float = 1.0
    emit_tuple: float = 1.0
    join_build: float = 1.0
    join_probe: float = 1.0
    #: Per-outer-tuple cost of probing a prebuilt (cached) hash index in an
    #: index nested-loop join.  Dearer than ``join_probe`` — each probe is an
    #: individual index lookup rather than a bulk build-then-stream pass —
    #: but the inner side pays nothing, so small-outer/large-inner joins win.
    index_probe: float = 3.0
    difference_pair: float = 1.0
    #: Parallelism constants (the sharded backend's Exchange/Gather
    #: boundary): fixed per-shard setup (partitioning + pool dispatch),
    #: per-row serialization onto the worker pipe, and per-row merge back
    #: into the parent engine.  Unused by single-process engines; their
    #: defaults keep old profiles parsing unchanged.
    shard_setup: float = 50.0
    shard_ship_tuple: float = 0.5
    shard_merge_tuple: float = 1.0
    #: ``"hand-tuned"`` for the built-in defaults, ``"calibrated"`` for
    #: constants fitted by :mod:`~repro.core.planner.calibrate`.
    source: str = "hand-tuned"

    #: The fields a calibration profile carries (everything but name/source).
    CONSTANT_FIELDS: ClassVar[Tuple[str, ...]] = (
        "select_tuple",
        "project_tuple",
        "rename_tuple",
        "union_tuple",
        "emit_tuple",
        "join_build",
        "join_probe",
        "index_probe",
        "difference_pair",
        "shard_setup",
        "shard_ship_tuple",
        "shard_merge_tuple",
    )

    def constants(self) -> Dict[str, float]:
        """The tunable constants as a plain dict (profile JSON payload)."""
        return {field: getattr(self, field) for field in self.CONSTANT_FIELDS}

    @classmethod
    def from_constants(
        cls, name: str, constants: Mapping[str, float], source: str = "calibrated"
    ) -> "CostModel":
        """Build a model from a profile payload; unknown keys are rejected."""
        unknown = sorted(set(constants) - set(cls.CONSTANT_FIELDS))
        if unknown:
            raise ValueError(f"unknown cost constants {unknown!r}")
        return cls(name=name, source=source, **{k: float(v) for k, v in constants.items()})

    @classmethod
    def for_engine(cls, engine_name: str) -> "CostModel":
        """The active model for an engine: calibrated profile first, then the
        hand-tuned constants as fallback.

        A profile is active after :func:`load_cost_profile` /
        :func:`install_cost_profile`, or automatically when the
        ``REPRO_COST_PROFILE`` environment variable names a profile JSON
        file at first use.
        """
        _ensure_env_profile()
        model = _PROFILE_MODELS.get(engine_name)
        if model is not None:
            return model
        return COST_MODELS.get(engine_name, GENERIC_COST)


#: Back-compatible defaults: with every constant at 1.0 the formulas reduce
#: to the PR 1 cost model exactly.
GENERIC_COST = CostModel()

DATABASE_COST = CostModel(
    name="database",
    select_tuple=0.5,
    project_tuple=0.6,
    rename_tuple=0.4,
    union_tuple=0.8,
    emit_tuple=1.0,
    join_build=1.0,
    join_probe=1.0,
    index_probe=2.5,
    difference_pair=0.8,
)

WSD_COST = CostModel(
    name="wsd",
    select_tuple=2.5,
    project_tuple=3.0,
    rename_tuple=2.0,
    union_tuple=2.0,
    emit_tuple=6.0,
    join_build=1.5,
    join_probe=1.5,
    difference_pair=25.0,
)

UWSDT_COST = CostModel(
    name="uwsdt",
    select_tuple=1.0,
    project_tuple=1.5,
    rename_tuple=1.8,
    union_tuple=1.2,
    emit_tuple=2.5,
    join_build=1.0,
    join_probe=1.0,
    index_probe=2.5,
    difference_pair=15.0,
)

COLUMNAR_COST = CostModel(
    name="columnar",
    # The vectorized kernels move values through parallel arrays without
    # per-operator Relation construction or per-row dedup, so every
    # per-tuple constant sits below the classical row backend's; Product
    # and the index nested-loop join have no kernels and run row-at-a-time
    # (emit/index_probe stay at the Database rates).
    select_tuple=0.25,
    project_tuple=0.3,
    rename_tuple=0.2,
    union_tuple=0.4,
    emit_tuple=1.0,
    join_build=0.6,
    join_probe=0.6,
    index_probe=2.5,
    difference_pair=0.5,
)

SHARDED_COST = CostModel(
    name="sharded",
    # Inside each worker the subtree runs on the plain row backend, so the
    # per-tuple operator constants mirror the UWSDT model; what is specific
    # to this model are the parallelism constants — per-shard setup, per-row
    # serialization, per-row merge — which resolve_backend's wall-clock
    # comparison uses to decide whether fanning out pays for itself.
    select_tuple=1.0,
    project_tuple=1.5,
    rename_tuple=1.8,
    union_tuple=1.2,
    emit_tuple=2.5,
    join_build=1.0,
    join_probe=1.0,
    index_probe=2.5,
    difference_pair=15.0,
    shard_setup=50.0,
    shard_ship_tuple=0.5,
    shard_merge_tuple=1.0,
)

#: Cost models keyed by ``Statistics.engine``.
COST_MODELS: Dict[str, CostModel] = {
    "generic": GENERIC_COST,
    "database": DATABASE_COST,
    "wsd": WSD_COST,
    "uwsdt": UWSDT_COST,
    "columnar": COLUMNAR_COST,
    "sharded": SHARDED_COST,
}


# --------------------------------------------------------------------------- #
# Calibrated-constant profiles (written by repro.core.planner.calibrate)
# --------------------------------------------------------------------------- #

#: Environment variable naming a profile JSON file to auto-load at first use.
COST_PROFILE_ENV = "REPRO_COST_PROFILE"

#: The ``format`` marker every profile JSON document must carry.
COST_PROFILE_FORMAT = "repro-cost-profile"

_PROFILE_MODELS: Dict[str, CostModel] = {}
_PROFILE_PATH: Optional[str] = None
_PROFILE_ENV_CHECKED = False


def parse_cost_profile(document: Mapping[str, Any]) -> Dict[str, CostModel]:
    """Parse a profile JSON document into per-engine calibrated models.

    The document format (see docs/planner.md) is::

        {"format": "repro-cost-profile", "version": 1,
         "engines": {"uwsdt": {"select_tuple": 1.03, ...}, ...},
         "metadata": {...}}
    """
    if document.get("format") != COST_PROFILE_FORMAT:
        raise ValueError(
            f"not a cost profile (format={document.get('format')!r}, "
            f"expected {COST_PROFILE_FORMAT!r})"
        )
    engines = document.get("engines")
    if not isinstance(engines, Mapping):
        raise ValueError("cost profile is missing the 'engines' mapping")
    return {
        name: CostModel.from_constants(name, constants)
        for name, constants in engines.items()
    }


def install_cost_profile(models: Mapping[str, CostModel], path: Optional[str] = None) -> None:
    """Make ``CostModel.for_engine`` serve the given calibrated models."""
    global _PROFILE_PATH, _PROFILE_ENV_CHECKED
    # An explicit install overrides (and must not later be clobbered by)
    # the REPRO_COST_PROFILE environment variable.
    _PROFILE_ENV_CHECKED = True
    _PROFILE_MODELS.clear()
    _PROFILE_MODELS.update(models)
    _PROFILE_PATH = path


def load_cost_profile(path: str) -> Dict[str, CostModel]:
    """Load and install a calibration profile from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    models = parse_cost_profile(document)
    install_cost_profile(models, path=os.fspath(path))
    return models


def clear_cost_profile() -> None:
    """Drop any installed profile; ``for_engine`` falls back to hand-tuned."""
    global _PROFILE_PATH, _PROFILE_ENV_CHECKED
    _PROFILE_MODELS.clear()
    _PROFILE_PATH = None
    _PROFILE_ENV_CHECKED = True  # an explicit clear also overrides the env var


def active_cost_profile_path() -> Optional[str]:
    """Path of the installed profile, or None when running on hand-tuned
    constants (or when the profile was installed without a path)."""
    return _PROFILE_PATH


def _ensure_env_profile() -> None:
    global _PROFILE_ENV_CHECKED
    if _PROFILE_ENV_CHECKED:
        return
    _PROFILE_ENV_CHECKED = True
    path = os.environ.get(COST_PROFILE_ENV)
    if not path:
        return
    try:
        load_cost_profile(path)
    except (OSError, TypeError, ValueError, json.JSONDecodeError):
        # A broken profile must never take planning down; fall back silently
        # to the hand-tuned constants.  (TypeError: non-numeric constants or
        # a non-mapping 'engines' payload.)
        pass


def uwsdt_relation_statistics(uwsdt: Any, relation_name: str) -> Tuple[int, float]:
    """``(row count, placeholder density)`` of one UWSDT relation.

    The single source of the density formula — shared by
    ``Statistics.from_uwsdt`` and the statistics catalog, whose cached
    entries must agree exactly with fresh statistics.
    """
    rows = uwsdt.template_size(relation_name)
    arity = uwsdt.schema.relation(relation_name).arity
    placeholders = uwsdt.relation_placeholder_count(relation_name)
    return rows, min(1.0, placeholders / max(1, rows * arity))


def wsd_relation_statistics(wsd: Any, relation_name: str) -> Tuple[int, float]:
    """``(row count, uncertain-field density)`` of one WSD relation.

    A field is uncertain when its component has more than one local world;
    shared by ``Statistics.from_wsd`` and the statistics catalog.
    """
    rows = len(wsd.tuple_ids.get(relation_name, ()))
    arity = wsd.schema.relation(relation_name).arity
    uncertain = 0
    for component in wsd.components:
        if component.size <= 1:
            continue
        uncertain += sum(1 for field in component.fields if field.relation == relation_name)
    return rows, min(1.0, uncertain / max(1, rows * arity))


class Statistics:
    """Per-relation cardinality/uncertainty statistics feeding the cost model."""

    def __init__(
        self,
        row_counts: Optional[Mapping[str, int]] = None,
        placeholder_densities: Optional[Mapping[str, float]] = None,
        attributes: Optional[Mapping[str, Tuple[str, ...]]] = None,
        samples: Optional[Mapping[str, RelationSample]] = None,
        engine: str = "generic",
        sample_provenance: Optional[Mapping[str, str]] = None,
        source: str = "adhoc",
        observed: Optional[Mapping[str, ObservedCardinality]] = None,
    ) -> None:
        self.row_counts: Dict[str, int] = dict(row_counts or {})
        self.placeholder_densities: Dict[str, float] = dict(placeholder_densities or {})
        #: Base-relation attribute lists (the planner's catalog for rewrites).
        self.attributes: Dict[str, Tuple[str, ...]] = {
            name: tuple(attrs) for name, attrs in (attributes or {}).items()
        }
        #: Bounded reservoir samples keyed by relation name (may be empty).
        self.samples: Dict[str, RelationSample] = dict(samples or {})
        #: Which engine these statistics describe (selects the CostModel).
        self.engine = engine
        #: Where these statistics came from: ``"catalog"`` for catalog views,
        #: ``"fresh"`` for direct engine sampling, ``"adhoc"`` for hand-built.
        self.source = source
        #: Per-relation estimate provenance for ``Plan.explain()``:
        #: ``"cached-sample"`` / ``"fresh-sample"`` / ``"fixed-constants"``.
        if sample_provenance is None:
            sample_provenance = {name: "fresh-sample" for name in self.samples}
        self.sample_provenance: Dict[str, str] = dict(sample_provenance)
        #: Executed-operator cardinality feedback, keyed by
        #: :func:`~repro.core.planner.observed.cardinality_key` and already
        #: filtered for observation count and staleness by
        #: :meth:`~repro.core.planner.catalog.StatisticsCatalog.observed_view`.
        #: When a subtree's key is present, its observed EWMA overrides the
        #: sampled estimate — runtime truth beats a 256-row sample.
        self.observed: Dict[str, ObservedCardinality] = dict(observed or {})
        #: Cheap guard: estimation only computes cardinality keys when at
        #: least one observation exists, so cold planning pays nothing.
        self.has_observed = bool(self.observed)

    def provenance(self, relation_name: str) -> str:
        """How this relation's estimates are derived (for ``explain()``)."""
        return self.sample_provenance.get(relation_name, "fixed-constants")

    def observed_rows(self, key: str) -> Optional[float]:
        """Observed output-cardinality EWMA for a keyed subtree, if any."""
        record = self.observed.get(key)
        return None if record is None else record.actual_rows

    # -- constructors ------------------------------------------------------ #

    @classmethod
    def from_database(
        cls,
        database: Any,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        sample_relations: Optional[Tuple[str, ...]] = None,
    ) -> "Statistics":
        rows = {relation.schema.name: len(relation) for relation in database}
        attrs = {relation.schema.name: relation.schema.attributes for relation in database}
        densities = {name: 0.0 for name in rows}
        samples = (
            sample_database(database, sample_size, only=sample_relations)
            if sample_size
            else {}
        )
        return cls(rows, densities, attrs, samples, engine="database", source="fresh")

    @classmethod
    def from_wsd(
        cls,
        wsd: Any,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        sample_relations: Optional[Tuple[str, ...]] = None,
    ) -> "Statistics":
        attrs = {rs.name: rs.attributes for rs in wsd.schema}
        rows: Dict[str, int] = {}
        densities: Dict[str, float] = {}
        for rs in wsd.schema:
            rows[rs.name], densities[rs.name] = wsd_relation_statistics(wsd, rs.name)
        samples = sample_wsd(wsd, sample_size, only=sample_relations) if sample_size else {}
        return cls(rows, densities, attrs, samples, engine="wsd", source="fresh")

    @classmethod
    def from_uwsdt(
        cls,
        uwsdt: Any,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        sample_relations: Optional[Tuple[str, ...]] = None,
    ) -> "Statistics":
        attrs = {rs.name: rs.attributes for rs in uwsdt.schema}
        rows: Dict[str, int] = {}
        densities: Dict[str, float] = {}
        for rs in uwsdt.schema:
            rows[rs.name], densities[rs.name] = uwsdt_relation_statistics(uwsdt, rs.name)
        samples = (
            sample_uwsdt(uwsdt, sample_size, only=sample_relations) if sample_size else {}
        )
        return cls(rows, densities, attrs, samples, engine="uwsdt", source="fresh")

    @classmethod
    def from_engine(
        cls,
        engine: Any,
        sample_size: Optional[int] = None,
        sample_relations: Optional[Tuple[str, ...]] = None,
    ) -> "Statistics":
        """Statistics for a live engine, served from its statistics catalog.

        This is a thin view over the engine's attached
        :class:`~repro.core.planner.catalog.StatisticsCatalog`: samples, row
        counts and densities are cached per relation and invalidated by
        version/revision counters, so planning a repeated (or similar) query
        against an unchanged engine performs **zero** sampling work.
        ``sample_relations`` restricts row sampling to the named relations —
        planning passes the query's base relations, so relations a query
        never touches are not scanned (their row counts, densities and
        attributes are still reported).  ``sample_size=None`` (the default)
        defers to the attached catalog's configured size, so an engine set
        up with ``catalog_for(engine, sample_size=...)`` keeps that choice
        across every ``Query.plan``/``Query.run``.  Use ``from_database`` /
        ``from_wsd`` / ``from_uwsdt`` to force fresh, uncached sampling.
        """
        from .catalog import catalog_for

        catalog = (
            catalog_for(engine)
            if sample_size is None
            else catalog_for(engine, sample_size)
        )
        return catalog.statistics(sample_relations, sample_size)

    # -- lookups ----------------------------------------------------------- #

    def row_count(self, relation_name: str) -> int:
        return self.row_counts.get(relation_name, DEFAULT_ROW_COUNT)

    def placeholder_density(self, relation_name: str) -> float:
        return self.placeholder_densities.get(relation_name, 0.0)

    def relation_attributes(self, relation_name: str) -> Optional[Tuple[str, ...]]:
        return self.attributes.get(relation_name)

    def sample(self, relation_name: str) -> Optional[RelationSample]:
        return self.samples.get(relation_name)

    def cost_model(self) -> CostModel:
        """The active model for this engine (calibrated profile, else hand-tuned)."""
        return CostModel.for_engine(self.engine)

    def without_samples(self) -> "Statistics":
        """A copy that estimates with the fixed constants only (for explain)."""
        return Statistics(
            self.row_counts, self.placeholder_densities, self.attributes, None, self.engine
        )

    def __repr__(self) -> str:
        return f"Statistics({self.row_counts!r}, engine={self.engine!r})"


@dataclass(frozen=True)
class CostEstimate:
    """Estimated output cardinality and cumulative operator work of a plan."""

    rows: float
    cost: float

    def __repr__(self) -> str:
        return f"CostEstimate(rows≈{self.rows:.0f}, cost≈{self.cost:.0f})"


def predicate_selectivity(predicate: Predicate) -> float:
    """Fixed-constant selectivity of a selection predicate (no sample)."""
    if isinstance(predicate, TruePredicate):
        return 1.0
    if isinstance(predicate, (AttrConst, AttrAttr)):
        op = predicate.op
        if op in ("=", "=="):
            return EQUALITY_SELECTIVITY
        if op in ("!=", "<>"):
            return 1.0 - EQUALITY_SELECTIVITY
        return RANGE_SELECTIVITY
    if isinstance(predicate, And):
        selectivity = 1.0
        for part in predicate.parts:
            selectivity *= predicate_selectivity(part)
        return selectivity
    if isinstance(predicate, Or):
        miss = 1.0
        for part in predicate.parts:
            miss *= 1.0 - predicate_selectivity(part)
        return 1.0 - miss
    if isinstance(predicate, Not):
        return 1.0 - predicate_selectivity(predicate.inner)
    return 0.5


def floored_predicate_selectivity(predicate: Predicate) -> float:
    """Fixed-constant selectivity clamped into ``(0, 1]``.

    :func:`predicate_selectivity` itself is kept pure (so ``¬p`` composes as
    ``1 − p``); the floor is applied here, at the boundary where the value
    feeds a cost formula.
    """
    return max(min(predicate_selectivity(predicate), 1.0), FIXED_SELECTIVITY_FLOOR)


def selection_selectivity(predicate: Predicate, sample: Optional[RelationSample]) -> float:
    """Sampled selectivity when a sample can answer, fixed constants otherwise."""
    if sample is not None:
        sampled = sample.selectivity(predicate)
        if sampled is not None:
            return sampled
    return floored_predicate_selectivity(predicate)


def equality_join_selectivity(
    left_sample: Optional[RelationSample],
    left_attr: str,
    right_sample: Optional[RelationSample],
    right_attr: str,
) -> float:
    """Sampled ``A = B`` selectivity across two subplans, or the fixed constant."""
    if left_sample is not None and right_sample is not None:
        sampled = join_selectivity(left_sample, left_attr, right_sample, right_attr)
        if sampled is not None:
            return sampled
    return EQUALITY_SELECTIVITY


def output_attributes(query: Query, statistics: Statistics) -> Optional[Tuple[str, ...]]:
    """Output attribute list of a query, or None if a base schema is unknown.

    This is the planner's schema inference: rewrite legality (which side of a
    product a predicate may move to, what a projection may drop) and the
    width-aware cost factor both derive from it.
    """
    if isinstance(query, BaseRelation):
        return statistics.relation_attributes(query.name)
    if isinstance(query, Select):
        return output_attributes(query.child, statistics)
    if isinstance(query, Project):
        return tuple(query.attributes)
    if isinstance(query, Rename):
        child = output_attributes(query.child, statistics)
        if child is None:
            return None
        return tuple(query.new if a == query.old else a for a in child)
    if isinstance(query, (Product, Join)):
        left = output_attributes(query.left, statistics)
        right = output_attributes(query.right, statistics)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(query, (Union, Difference, Intersection)):
        return output_attributes(query.left, statistics)
    raise TypeError(f"cannot infer attributes of {query!r}")


#: Arity assumed when schema inference cannot resolve a subquery's width.
DEFAULT_ARITY = 4


def arity_width(arity: int) -> float:
    """Per-tuple cost factor growing with the tuple width.

    Census templates are ~50 attributes wide; materializing a product of two
    of them moves twice as many values per tuple as scanning one.
    """
    return 1.0 + 0.1 * arity


def _width_factor(query: Query, statistics: Statistics) -> float:
    attributes = output_attributes(query, statistics)
    return arity_width(len(attributes) if attributes is not None else DEFAULT_ARITY)


# --------------------------------------------------------------------------- #
# Per-operator steps — shared by estimate() and the join-order enumerator, so
# a plan assembled by the enumerator costs exactly what estimate() reports.
# --------------------------------------------------------------------------- #


def select_step(
    rows: float, selectivity: float, density: float, model: CostModel
) -> Tuple[float, float]:
    """``(output rows, added cost)`` of a selection over ``rows`` input tuples.

    Placeholder rows survive every selection on the representation (they are
    filtered world-by-world inside their components), hence the density bump.
    """
    effective = selectivity + density * (1.0 - selectivity)
    return rows * effective, rows * model.select_tuple


def join_step(
    left_rows: float,
    right_rows: float,
    selectivity: float,
    out_arity: int,
    model: CostModel,
) -> Tuple[float, float]:
    """``(output rows, added cost)`` of a hash equi-join: build + probe + emit."""
    out = left_rows * right_rows * selectivity
    cost = (
        left_rows * model.join_build
        + right_rows * model.join_probe
        + out * arity_width(out_arity) * model.emit_tuple
    )
    return out, cost


def index_join_step(
    outer_rows: float,
    inner_rows: float,
    selectivity: float,
    out_arity: int,
    model: CostModel,
) -> Tuple[float, float]:
    """``(output rows, added cost)`` of an index nested-loop equi-join.

    The outer side probes a prebuilt hash index over the inner *base*
    relation (the :class:`~repro.relational.indexes.IndexPool` index on a
    Database, ``UWSDT.template_index`` on a UWSDT — both cached on the
    engine, so the inner side contributes no per-query build cost).
    """
    out = outer_rows * inner_rows * selectivity
    cost = outer_rows * model.index_probe + out * arity_width(out_arity) * model.emit_tuple
    return out, cost


#: Engines whose backends can execute an index nested-loop join (the WSD
#: operators resolve fields through components, so there is no index to probe).
INDEX_JOIN_ENGINES = ("database", "uwsdt")


def product_step(
    left_rows: float, right_rows: float, out_arity: int, model: CostModel
) -> Tuple[float, float]:
    """``(output rows, added cost)`` of a cartesian product."""
    out = left_rows * right_rows
    return out, out * arity_width(out_arity) * model.emit_tuple


def project_step(rows: float, in_arity: int, model: CostModel) -> float:
    """Added cost of a projection over ``rows`` tuples of ``in_arity`` width."""
    return rows * arity_width(in_arity) * model.project_tuple


def observed_override(
    query: Query,
    statistics: Statistics,
    rows: float,
    added: float,
    out_arity: Optional[int],
    model: CostModel,
) -> Tuple[float, float]:
    """Replace an estimated output cardinality with its observed EWMA.

    Only the *emit* component of an operator's cost scales with output rows,
    so that term is repriced by the delta (when ``out_arity`` is given);
    build/probe/scan components depend on the inputs alone and stand.
    Shared by the recursive estimator and the join-order enumerator so both
    see the same corrected numbers for the same subtree.
    """
    observed = statistics.observed_rows(cardinality_key(query))
    if observed is None:
        return rows, added
    if out_arity is not None:
        added += (observed - rows) * arity_width(out_arity) * model.emit_tuple
    return observed, added


# --------------------------------------------------------------------------- #
# The recursive estimator
# --------------------------------------------------------------------------- #


@dataclass
class NodeEstimate:
    """Internal per-node estimate: cardinality, cost, derived sample, density."""

    rows: float
    cost: float
    sample: Optional[RelationSample]
    density: float

    def as_cost_estimate(self) -> CostEstimate:
        return CostEstimate(rows=self.rows, cost=self.cost)


def estimate(
    query: Query, statistics: Statistics, model: Optional[CostModel] = None
) -> CostEstimate:
    """Estimate output cardinality and total work of evaluating ``query``.

    The unit of cost is "one tuple touched by one operator", scaled by the
    per-engine constants of ``model`` (defaulting to the model matching
    ``statistics.engine``).  Selectivities come from the statistics' row
    samples when available and from the fixed constants otherwise.
    """
    if model is None:
        model = statistics.cost_model()
    return _estimate(query, statistics, model).as_cost_estimate()


def _estimate(
    query: Query,
    statistics: Statistics,
    model: CostModel,
    memo: Optional[Dict[int, NodeEstimate]] = None,
) -> NodeEstimate:
    """Per-node estimate, optionally memoized by node identity.

    The memo makes one top-level call record an estimate for *every* node of
    the tree — the executor's lowering pass reads per-node cardinalities
    from it in a single bottom-up traversal instead of re-estimating each
    subtree (which would be quadratic in the sample work).
    """
    if memo is not None:
        cached = memo.get(id(query))
        if cached is not None:
            return cached
    result = _estimate_uncached(query, statistics, model, memo)
    if memo is not None:
        memo[id(query)] = result
    return result


def _estimate_uncached(
    query: Query,
    statistics: Statistics,
    model: CostModel,
    memo: Optional[Dict[int, NodeEstimate]] = None,
) -> NodeEstimate:
    if isinstance(query, BaseRelation):
        return NodeEstimate(
            rows=float(statistics.row_count(query.name)),
            cost=0.0,
            sample=statistics.sample(query.name),
            density=statistics.placeholder_density(query.name),
        )
    if isinstance(query, Select):
        child = _estimate(query.child, statistics, model, memo)
        selectivity = selection_selectivity(query.predicate, child.sample)
        rows, added = select_step(child.rows, selectivity, child.density, model)
        if statistics.has_observed:
            # Selection cost is per *input* tuple; only the cardinality moves.
            rows, added = observed_override(query, statistics, rows, added, None, model)
        sample = child.sample.filter(query.predicate) if child.sample is not None else None
        return NodeEstimate(rows, child.cost + added, sample, child.density)
    if isinstance(query, Project):
        child = _estimate(query.child, statistics, model, memo)
        attributes = output_attributes(query.child, statistics)
        in_arity = len(attributes) if attributes is not None else DEFAULT_ARITY
        sample = child.sample.project(query.attributes) if child.sample is not None else None
        return NodeEstimate(
            child.rows,
            child.cost + project_step(child.rows, in_arity, model),
            sample,
            child.density,
        )
    if isinstance(query, Rename):
        child = _estimate(query.child, statistics, model, memo)
        sample = child.sample.rename(query.old, query.new) if child.sample is not None else None
        return NodeEstimate(
            child.rows, child.cost + child.rows * model.rename_tuple, sample, child.density
        )
    if isinstance(query, Product):
        left = _estimate(query.left, statistics, model, memo)
        right = _estimate(query.right, statistics, model, memo)
        attributes = output_attributes(query, statistics)
        out_arity = len(attributes) if attributes is not None else DEFAULT_ARITY
        rows, added = product_step(left.rows, right.rows, out_arity, model)
        if statistics.has_observed:
            rows, added = observed_override(query, statistics, rows, added, out_arity, model)
        sample = (
            left.sample.cross(right.sample)
            if left.sample is not None and right.sample is not None
            else None
        )
        return NodeEstimate(
            rows, left.cost + right.cost + added, sample, max(left.density, right.density)
        )
    if isinstance(query, Join):
        left = _estimate(query.left, statistics, model, memo)
        right = _estimate(query.right, statistics, model, memo)
        attributes = output_attributes(query, statistics)
        out_arity = len(attributes) if attributes is not None else DEFAULT_ARITY
        selectivity = equality_join_selectivity(
            left.sample, query.left_attr, right.sample, query.right_attr
        )
        rows, added = join_step(left.rows, right.rows, selectivity, out_arity, model)
        if statistics.has_observed:
            rows, added = observed_override(query, statistics, rows, added, out_arity, model)
        sample = (
            left.sample.equijoin(right.sample, query.left_attr, query.right_attr)
            if left.sample is not None and right.sample is not None
            else None
        )
        return NodeEstimate(
            rows, left.cost + right.cost + added, sample, max(left.density, right.density)
        )
    if isinstance(query, Union):
        left = _estimate(query.left, statistics, model, memo)
        right = _estimate(query.right, statistics, model, memo)
        out = left.rows + right.rows
        sample = None
        if (
            left.sample is not None
            and right.sample is not None
            and left.sample.attributes == right.sample.attributes
        ):
            sample = RelationSample(
                "",
                left.sample.attributes,
                left.sample.rows + right.sample.rows,
                max(1, left.sample.population + right.sample.population),
            )
        return NodeEstimate(
            out,
            left.cost + right.cost + out * model.union_tuple,
            sample,
            max(left.density, right.density),
        )
    if isinstance(query, Difference):
        left = _estimate(query.left, statistics, model, memo)
        right = _estimate(query.right, statistics, model, memo)
        # On WSDs/UWSDTs difference composes components pairwise — by far the
        # paper's most expensive operator — so it is costed quadratically.
        return NodeEstimate(
            left.rows,
            left.cost + right.cost + left.rows * max(1.0, right.rows) * model.difference_pair,
            left.sample,
            max(left.density, right.density),
        )
    if isinstance(query, Intersection):
        left = _estimate(query.left, statistics, model, memo)
        right = _estimate(query.right, statistics, model, memo)
        # Evaluated natively on a Database, as A − (A − B) on the
        # representation engines; either way the work is difference-like
        # (pairwise on representations), and the output is bounded by the
        # smaller side.
        return NodeEstimate(
            min(left.rows, right.rows),
            left.cost + right.cost + left.rows * max(1.0, right.rows) * model.difference_pair,
            None,
            max(left.density, right.density),
        )
    raise TypeError(f"cannot estimate cost of {query!r}")


def estimate_node(query: Query, statistics: Statistics, model: Optional[CostModel] = None) -> NodeEstimate:
    """Full per-node estimate (rows, cost, derived sample, density).

    Used by the join-order enumerator to seed leaf states that cost exactly
    what :func:`estimate` would report for the same subtree.
    """
    if model is None:
        model = statistics.cost_model()
    return _estimate(query, statistics, model)


def estimate_forest(
    query: Query,
    statistics: Statistics,
    model: Optional[CostModel] = None,
    memo: Optional[Dict[int, NodeEstimate]] = None,
) -> Dict[int, NodeEstimate]:
    """Estimates for *every* node of ``query``, keyed by ``id(node)``.

    One bottom-up pass fills the memo — the executor's lowering reads
    per-node cardinalities from it instead of re-estimating each subtree.
    Pass an existing ``memo`` to extend it with nodes of a further tree.
    """
    if model is None:
        model = statistics.cost_model()
    if memo is None:
        memo = {}
    _estimate(query, statistics, model, memo)
    return memo
