"""Cost model for the logical planner.

The planner compares rewritten plans through a simple cost model: estimated
operator work as a function of input cardinalities.  The cardinalities come
from :class:`Statistics`, which every engine can produce cheaply —

* a :class:`~repro.relational.database.Database` reports relation sizes,
* a :class:`~repro.core.wsd.WSD` reports tuple counts per relation plus the
  fraction of fields whose component has more than one local world,
* a :class:`~repro.core.uwsdt.UWSDT` reports template-row counts plus the
  placeholder density per template (the quantity the paper's Figure 27
  tracks as ``|R|`` and ``#comp``).

Since PR 3 the statistics also carry a bounded reservoir *sample* of each
relation's template rows (:mod:`~repro.core.planner.sampling`): predicate
and join selectivities are estimated from the sample whenever one is
available, and fall back to the fixed constants (``EQUALITY_SELECTIVITY``
etc.) otherwise — so schema-only planning keeps working unchanged.

Per-operator constants are engine-specific (:class:`CostModel`): a WSD
product pays component ``ext`` copies per output tuple while a classical
product just concatenates rows, and the difference operator composes
components pairwise on both representation engines.  The planner only ever
compares plans for the *same* engine, so only the constants' ratios matter.

Uncertainty matters to cost: a selection over a template keeps every tuple
whose referenced field is a placeholder (lines 2–6 of Figure 16), so its
effective selectivity is ``s + d·(1 − s)`` for placeholder density ``d``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from ...relational.predicates import And, AttrAttr, AttrConst, Not, Or, Predicate, TruePredicate
from ..algebra.query import (
    BaseRelation,
    Difference,
    Join,
    Product,
    Project,
    Query,
    Rename,
    Select,
    Union,
)
from .sampling import (
    DEFAULT_SAMPLE_SIZE,
    RelationSample,
    join_selectivity,
    sample_database,
    sample_uwsdt,
    sample_wsd,
)

#: Cardinality assumed for relations the statistics do not know about.
DEFAULT_ROW_COUNT = 1_000

#: Assumed selectivity of an equality atom ``A = c`` / ``A = B`` when no
#: sample is available.
EQUALITY_SELECTIVITY = 0.1

#: Assumed selectivity of a range atom (``<``, ``<=``, ``>``, ``>=``).
RANGE_SELECTIVITY = 1.0 / 3.0


@dataclass(frozen=True)
class CostModel:
    """Per-engine cost constants, in units of "one tuple through one operator".

    The constants were calibrated by timing each operator on the census
    workload at bench sizes and normalizing to the classical select:

    * ``Database`` operators move plain tuples; the hash join's build and
      probe are as cheap as a scan.
    * ``WSD`` operators copy component columns (``ext``) per output tuple
      and ``select``/``project`` run the per-local-world machinery of
      Figure 9; ``difference`` composes components pairwise.
    * ``UWSDT`` operators are template-relation work plus component ``ext``
      only for placeholder fields — cheaper than WSD, dearer than classical.
    """

    name: str = "generic"
    select_tuple: float = 1.0
    project_tuple: float = 1.0
    rename_tuple: float = 1.0
    union_tuple: float = 1.0
    emit_tuple: float = 1.0
    join_build: float = 1.0
    join_probe: float = 1.0
    difference_pair: float = 1.0


#: Back-compatible defaults: with every constant at 1.0 the formulas reduce
#: to the PR 1 cost model exactly.
GENERIC_COST = CostModel()

DATABASE_COST = CostModel(
    name="database",
    select_tuple=0.5,
    project_tuple=0.6,
    rename_tuple=0.4,
    union_tuple=0.8,
    emit_tuple=1.0,
    join_build=1.0,
    join_probe=1.0,
    difference_pair=0.8,
)

WSD_COST = CostModel(
    name="wsd",
    select_tuple=2.5,
    project_tuple=3.0,
    rename_tuple=2.0,
    union_tuple=2.0,
    emit_tuple=6.0,
    join_build=1.5,
    join_probe=1.5,
    difference_pair=25.0,
)

UWSDT_COST = CostModel(
    name="uwsdt",
    select_tuple=1.0,
    project_tuple=1.5,
    rename_tuple=1.8,
    union_tuple=1.2,
    emit_tuple=2.5,
    join_build=1.0,
    join_probe=1.0,
    difference_pair=15.0,
)

#: Cost models keyed by ``Statistics.engine``.
COST_MODELS: Dict[str, CostModel] = {
    "generic": GENERIC_COST,
    "database": DATABASE_COST,
    "wsd": WSD_COST,
    "uwsdt": UWSDT_COST,
}


class Statistics:
    """Per-relation cardinality/uncertainty statistics feeding the cost model."""

    def __init__(
        self,
        row_counts: Optional[Mapping[str, int]] = None,
        placeholder_densities: Optional[Mapping[str, float]] = None,
        attributes: Optional[Mapping[str, Tuple[str, ...]]] = None,
        samples: Optional[Mapping[str, RelationSample]] = None,
        engine: str = "generic",
    ) -> None:
        self.row_counts: Dict[str, int] = dict(row_counts or {})
        self.placeholder_densities: Dict[str, float] = dict(placeholder_densities or {})
        #: Base-relation attribute lists (the planner's catalog for rewrites).
        self.attributes: Dict[str, Tuple[str, ...]] = {
            name: tuple(attrs) for name, attrs in (attributes or {}).items()
        }
        #: Bounded reservoir samples keyed by relation name (may be empty).
        self.samples: Dict[str, RelationSample] = dict(samples or {})
        #: Which engine these statistics describe (selects the CostModel).
        self.engine = engine

    # -- constructors ------------------------------------------------------ #

    @classmethod
    def from_database(
        cls,
        database: Any,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        sample_relations: Optional[Tuple[str, ...]] = None,
    ) -> "Statistics":
        rows = {relation.schema.name: len(relation) for relation in database}
        attrs = {relation.schema.name: relation.schema.attributes for relation in database}
        densities = {name: 0.0 for name in rows}
        samples = (
            sample_database(database, sample_size, only=sample_relations)
            if sample_size
            else {}
        )
        return cls(rows, densities, attrs, samples, engine="database")

    @classmethod
    def from_wsd(
        cls,
        wsd: Any,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        sample_relations: Optional[Tuple[str, ...]] = None,
    ) -> "Statistics":
        rows = {name: len(ids) for name, ids in wsd.tuple_ids.items()}
        attrs = {rs.name: rs.attributes for rs in wsd.schema}
        uncertain: Dict[str, int] = {}
        for component in wsd.components:
            if component.size <= 1:
                continue
            for field in component.fields:
                uncertain[field.relation] = uncertain.get(field.relation, 0) + 1
        densities = {}
        for rs in wsd.schema:
            fields = max(1, rows.get(rs.name, 0) * rs.arity)
            densities[rs.name] = min(1.0, uncertain.get(rs.name, 0) / fields)
        samples = sample_wsd(wsd, sample_size, only=sample_relations) if sample_size else {}
        return cls(rows, densities, attrs, samples, engine="wsd")

    @classmethod
    def from_uwsdt(
        cls,
        uwsdt: Any,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        sample_relations: Optional[Tuple[str, ...]] = None,
    ) -> "Statistics":
        rows = {rs.name: uwsdt.template_size(rs.name) for rs in uwsdt.schema}
        attrs = {rs.name: rs.attributes for rs in uwsdt.schema}
        placeholders: Dict[str, int] = {}
        for field in uwsdt.field_to_cid:
            placeholders[field.relation] = placeholders.get(field.relation, 0) + 1
        densities = {}
        for rs in uwsdt.schema:
            fields = max(1, rows.get(rs.name, 0) * rs.arity)
            densities[rs.name] = min(1.0, placeholders.get(rs.name, 0) / fields)
        samples = (
            sample_uwsdt(uwsdt, sample_size, only=sample_relations) if sample_size else {}
        )
        return cls(rows, densities, attrs, samples, engine="uwsdt")

    @classmethod
    def from_engine(
        cls,
        engine: Any,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        sample_relations: Optional[Tuple[str, ...]] = None,
    ) -> "Statistics":
        """Dispatch on the engine type (Database, WSD or UWSDT).

        ``sample_relations`` restricts row sampling to the named relations —
        planning passes the query's base relations, so relations a query
        never touches are not scanned.
        """
        from ...relational.database import Database
        from ..uwsdt import UWSDT
        from ..wsd import WSD

        if isinstance(engine, Database):
            return cls.from_database(engine, sample_size, sample_relations)
        if isinstance(engine, UWSDT):
            return cls.from_uwsdt(engine, sample_size, sample_relations)
        if isinstance(engine, WSD):
            return cls.from_wsd(engine, sample_size, sample_relations)
        raise TypeError(f"cannot derive statistics from {type(engine).__name__}")

    # -- lookups ----------------------------------------------------------- #

    def row_count(self, relation_name: str) -> int:
        return self.row_counts.get(relation_name, DEFAULT_ROW_COUNT)

    def placeholder_density(self, relation_name: str) -> float:
        return self.placeholder_densities.get(relation_name, 0.0)

    def relation_attributes(self, relation_name: str) -> Optional[Tuple[str, ...]]:
        return self.attributes.get(relation_name)

    def sample(self, relation_name: str) -> Optional[RelationSample]:
        return self.samples.get(relation_name)

    def cost_model(self) -> CostModel:
        return COST_MODELS.get(self.engine, GENERIC_COST)

    def without_samples(self) -> "Statistics":
        """A copy that estimates with the fixed constants only (for explain)."""
        return Statistics(
            self.row_counts, self.placeholder_densities, self.attributes, None, self.engine
        )

    def __repr__(self) -> str:
        return f"Statistics({self.row_counts!r}, engine={self.engine!r})"


@dataclass(frozen=True)
class CostEstimate:
    """Estimated output cardinality and cumulative operator work of a plan."""

    rows: float
    cost: float

    def __repr__(self) -> str:
        return f"CostEstimate(rows≈{self.rows:.0f}, cost≈{self.cost:.0f})"


def predicate_selectivity(predicate: Predicate) -> float:
    """Fixed-constant selectivity of a selection predicate (no sample)."""
    if isinstance(predicate, TruePredicate):
        return 1.0
    if isinstance(predicate, (AttrConst, AttrAttr)):
        op = predicate.op
        if op in ("=", "=="):
            return EQUALITY_SELECTIVITY
        if op in ("!=", "<>"):
            return 1.0 - EQUALITY_SELECTIVITY
        return RANGE_SELECTIVITY
    if isinstance(predicate, And):
        selectivity = 1.0
        for part in predicate.parts:
            selectivity *= predicate_selectivity(part)
        return selectivity
    if isinstance(predicate, Or):
        miss = 1.0
        for part in predicate.parts:
            miss *= 1.0 - predicate_selectivity(part)
        return 1.0 - miss
    if isinstance(predicate, Not):
        return 1.0 - predicate_selectivity(predicate.inner)
    return 0.5


def selection_selectivity(predicate: Predicate, sample: Optional[RelationSample]) -> float:
    """Sampled selectivity when a sample can answer, fixed constants otherwise."""
    if sample is not None:
        sampled = sample.selectivity(predicate)
        if sampled is not None:
            return sampled
    return predicate_selectivity(predicate)


def equality_join_selectivity(
    left_sample: Optional[RelationSample],
    left_attr: str,
    right_sample: Optional[RelationSample],
    right_attr: str,
) -> float:
    """Sampled ``A = B`` selectivity across two subplans, or the fixed constant."""
    if left_sample is not None and right_sample is not None:
        sampled = join_selectivity(left_sample, left_attr, right_sample, right_attr)
        if sampled is not None:
            return sampled
    return EQUALITY_SELECTIVITY


def output_attributes(query: Query, statistics: Statistics) -> Optional[Tuple[str, ...]]:
    """Output attribute list of a query, or None if a base schema is unknown.

    This is the planner's schema inference: rewrite legality (which side of a
    product a predicate may move to, what a projection may drop) and the
    width-aware cost factor both derive from it.
    """
    if isinstance(query, BaseRelation):
        return statistics.relation_attributes(query.name)
    if isinstance(query, Select):
        return output_attributes(query.child, statistics)
    if isinstance(query, Project):
        return tuple(query.attributes)
    if isinstance(query, Rename):
        child = output_attributes(query.child, statistics)
        if child is None:
            return None
        return tuple(query.new if a == query.old else a for a in child)
    if isinstance(query, (Product, Join)):
        left = output_attributes(query.left, statistics)
        right = output_attributes(query.right, statistics)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(query, (Union, Difference)):
        return output_attributes(query.left, statistics)
    raise TypeError(f"cannot infer attributes of {query!r}")


#: Arity assumed when schema inference cannot resolve a subquery's width.
DEFAULT_ARITY = 4


def arity_width(arity: int) -> float:
    """Per-tuple cost factor growing with the tuple width.

    Census templates are ~50 attributes wide; materializing a product of two
    of them moves twice as many values per tuple as scanning one.
    """
    return 1.0 + 0.1 * arity


def _width_factor(query: Query, statistics: Statistics) -> float:
    attributes = output_attributes(query, statistics)
    return arity_width(len(attributes) if attributes is not None else DEFAULT_ARITY)


# --------------------------------------------------------------------------- #
# Per-operator steps — shared by estimate() and the join-order enumerator, so
# a plan assembled by the enumerator costs exactly what estimate() reports.
# --------------------------------------------------------------------------- #


def select_step(
    rows: float, selectivity: float, density: float, model: CostModel
) -> Tuple[float, float]:
    """``(output rows, added cost)`` of a selection over ``rows`` input tuples.

    Placeholder rows survive every selection on the representation (they are
    filtered world-by-world inside their components), hence the density bump.
    """
    effective = selectivity + density * (1.0 - selectivity)
    return rows * effective, rows * model.select_tuple


def join_step(
    left_rows: float,
    right_rows: float,
    selectivity: float,
    out_arity: int,
    model: CostModel,
) -> Tuple[float, float]:
    """``(output rows, added cost)`` of a hash equi-join: build + probe + emit."""
    out = left_rows * right_rows * selectivity
    cost = (
        left_rows * model.join_build
        + right_rows * model.join_probe
        + out * arity_width(out_arity) * model.emit_tuple
    )
    return out, cost


def product_step(
    left_rows: float, right_rows: float, out_arity: int, model: CostModel
) -> Tuple[float, float]:
    """``(output rows, added cost)`` of a cartesian product."""
    out = left_rows * right_rows
    return out, out * arity_width(out_arity) * model.emit_tuple


def project_step(rows: float, in_arity: int, model: CostModel) -> float:
    """Added cost of a projection over ``rows`` tuples of ``in_arity`` width."""
    return rows * arity_width(in_arity) * model.project_tuple


# --------------------------------------------------------------------------- #
# The recursive estimator
# --------------------------------------------------------------------------- #


@dataclass
class NodeEstimate:
    """Internal per-node estimate: cardinality, cost, derived sample, density."""

    rows: float
    cost: float
    sample: Optional[RelationSample]
    density: float

    def as_cost_estimate(self) -> CostEstimate:
        return CostEstimate(rows=self.rows, cost=self.cost)


def estimate(
    query: Query, statistics: Statistics, model: Optional[CostModel] = None
) -> CostEstimate:
    """Estimate output cardinality and total work of evaluating ``query``.

    The unit of cost is "one tuple touched by one operator", scaled by the
    per-engine constants of ``model`` (defaulting to the model matching
    ``statistics.engine``).  Selectivities come from the statistics' row
    samples when available and from the fixed constants otherwise.
    """
    if model is None:
        model = statistics.cost_model()
    return _estimate(query, statistics, model).as_cost_estimate()


def _estimate(query: Query, statistics: Statistics, model: CostModel) -> NodeEstimate:
    if isinstance(query, BaseRelation):
        return NodeEstimate(
            rows=float(statistics.row_count(query.name)),
            cost=0.0,
            sample=statistics.sample(query.name),
            density=statistics.placeholder_density(query.name),
        )
    if isinstance(query, Select):
        child = _estimate(query.child, statistics, model)
        selectivity = selection_selectivity(query.predicate, child.sample)
        rows, added = select_step(child.rows, selectivity, child.density, model)
        sample = child.sample.filter(query.predicate) if child.sample is not None else None
        return NodeEstimate(rows, child.cost + added, sample, child.density)
    if isinstance(query, Project):
        child = _estimate(query.child, statistics, model)
        attributes = output_attributes(query.child, statistics)
        in_arity = len(attributes) if attributes is not None else DEFAULT_ARITY
        sample = child.sample.project(query.attributes) if child.sample is not None else None
        return NodeEstimate(
            child.rows,
            child.cost + project_step(child.rows, in_arity, model),
            sample,
            child.density,
        )
    if isinstance(query, Rename):
        child = _estimate(query.child, statistics, model)
        sample = child.sample.rename(query.old, query.new) if child.sample is not None else None
        return NodeEstimate(
            child.rows, child.cost + child.rows * model.rename_tuple, sample, child.density
        )
    if isinstance(query, Product):
        left = _estimate(query.left, statistics, model)
        right = _estimate(query.right, statistics, model)
        attributes = output_attributes(query, statistics)
        out_arity = len(attributes) if attributes is not None else DEFAULT_ARITY
        rows, added = product_step(left.rows, right.rows, out_arity, model)
        sample = (
            left.sample.cross(right.sample)
            if left.sample is not None and right.sample is not None
            else None
        )
        return NodeEstimate(
            rows, left.cost + right.cost + added, sample, max(left.density, right.density)
        )
    if isinstance(query, Join):
        left = _estimate(query.left, statistics, model)
        right = _estimate(query.right, statistics, model)
        attributes = output_attributes(query, statistics)
        out_arity = len(attributes) if attributes is not None else DEFAULT_ARITY
        selectivity = equality_join_selectivity(
            left.sample, query.left_attr, right.sample, query.right_attr
        )
        rows, added = join_step(left.rows, right.rows, selectivity, out_arity, model)
        sample = (
            left.sample.equijoin(right.sample, query.left_attr, query.right_attr)
            if left.sample is not None and right.sample is not None
            else None
        )
        return NodeEstimate(
            rows, left.cost + right.cost + added, sample, max(left.density, right.density)
        )
    if isinstance(query, Union):
        left = _estimate(query.left, statistics, model)
        right = _estimate(query.right, statistics, model)
        out = left.rows + right.rows
        sample = None
        if (
            left.sample is not None
            and right.sample is not None
            and left.sample.attributes == right.sample.attributes
        ):
            sample = RelationSample(
                "",
                left.sample.attributes,
                left.sample.rows + right.sample.rows,
                max(1, left.sample.population + right.sample.population),
            )
        return NodeEstimate(
            out,
            left.cost + right.cost + out * model.union_tuple,
            sample,
            max(left.density, right.density),
        )
    if isinstance(query, Difference):
        left = _estimate(query.left, statistics, model)
        right = _estimate(query.right, statistics, model)
        # On WSDs/UWSDTs difference composes components pairwise — by far the
        # paper's most expensive operator — so it is costed quadratically.
        return NodeEstimate(
            left.rows,
            left.cost + right.cost + left.rows * max(1.0, right.rows) * model.difference_pair,
            left.sample,
            max(left.density, right.density),
        )
    raise TypeError(f"cannot estimate cost of {query!r}")


def estimate_node(query: Query, statistics: Statistics, model: Optional[CostModel] = None) -> NodeEstimate:
    """Full per-node estimate (rows, cost, derived sample, density).

    Used by the join-order enumerator to seed leaf states that cost exactly
    what :func:`estimate` would report for the same subtree.
    """
    if model is None:
        model = statistics.cost_model()
    return _estimate(query, statistics, model)
