"""Cost model for the logical planner.

The planner compares rewritten plans through a deliberately simple cost
model: estimated operator work as a function of input cardinalities.  The
cardinalities come from :class:`Statistics`, which every engine can produce
cheaply —

* a :class:`~repro.relational.database.Database` reports relation sizes,
* a :class:`~repro.core.wsd.WSD` reports tuple counts per relation plus the
  fraction of fields whose component has more than one local world,
* a :class:`~repro.core.uwsdt.UWSDT` reports template-row counts plus the
  placeholder density per template (the quantity the paper's Figure 27
  tracks as ``|R|`` and ``#comp``).

Uncertainty matters to cost: a selection over a template keeps every tuple
whose referenced field is a placeholder (lines 2–6 of Figure 16), so its
effective selectivity is ``s + d·(1 − s)`` for placeholder density ``d``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ...relational.predicates import And, AttrAttr, AttrConst, Not, Or, Predicate, TruePredicate
from ..algebra.query import (
    BaseRelation,
    Difference,
    Join,
    Product,
    Project,
    Query,
    Rename,
    Select,
    Union,
)

#: Cardinality assumed for relations the statistics do not know about.
DEFAULT_ROW_COUNT = 1_000

#: Assumed selectivity of an equality atom ``A = c`` / ``A = B``.
EQUALITY_SELECTIVITY = 0.1

#: Assumed selectivity of a range atom (``<``, ``<=``, ``>``, ``>=``).
RANGE_SELECTIVITY = 1.0 / 3.0


class Statistics:
    """Per-relation cardinality and uncertainty statistics feeding the cost model."""

    def __init__(
        self,
        row_counts: Optional[Mapping[str, int]] = None,
        placeholder_densities: Optional[Mapping[str, float]] = None,
        attributes: Optional[Mapping[str, Tuple[str, ...]]] = None,
    ) -> None:
        self.row_counts: Dict[str, int] = dict(row_counts or {})
        self.placeholder_densities: Dict[str, float] = dict(placeholder_densities or {})
        #: Base-relation attribute lists (the planner's catalog for rewrites).
        self.attributes: Dict[str, Tuple[str, ...]] = {
            name: tuple(attrs) for name, attrs in (attributes or {}).items()
        }

    # -- constructors ------------------------------------------------------ #

    @classmethod
    def from_database(cls, database: Any) -> "Statistics":
        rows = {relation.schema.name: len(relation) for relation in database}
        attrs = {relation.schema.name: relation.schema.attributes for relation in database}
        densities = {name: 0.0 for name in rows}
        return cls(rows, densities, attrs)

    @classmethod
    def from_wsd(cls, wsd: Any) -> "Statistics":
        rows = {name: len(ids) for name, ids in wsd.tuple_ids.items()}
        attrs = {rs.name: rs.attributes for rs in wsd.schema}
        uncertain: Dict[str, int] = {}
        for component in wsd.components:
            if component.size <= 1:
                continue
            for field in component.fields:
                uncertain[field.relation] = uncertain.get(field.relation, 0) + 1
        densities = {}
        for rs in wsd.schema:
            fields = max(1, rows.get(rs.name, 0) * rs.arity)
            densities[rs.name] = min(1.0, uncertain.get(rs.name, 0) / fields)
        return cls(rows, densities, attrs)

    @classmethod
    def from_uwsdt(cls, uwsdt: Any) -> "Statistics":
        rows = {rs.name: uwsdt.template_size(rs.name) for rs in uwsdt.schema}
        attrs = {rs.name: rs.attributes for rs in uwsdt.schema}
        placeholders: Dict[str, int] = {}
        for field in uwsdt.field_to_cid:
            placeholders[field.relation] = placeholders.get(field.relation, 0) + 1
        densities = {}
        for rs in uwsdt.schema:
            fields = max(1, rows.get(rs.name, 0) * rs.arity)
            densities[rs.name] = min(1.0, placeholders.get(rs.name, 0) / fields)
        return cls(rows, densities, attrs)

    @classmethod
    def from_engine(cls, engine: Any) -> "Statistics":
        """Dispatch on the engine type (Database, WSD or UWSDT)."""
        from ...relational.database import Database
        from ..uwsdt import UWSDT
        from ..wsd import WSD

        if isinstance(engine, Database):
            return cls.from_database(engine)
        if isinstance(engine, UWSDT):
            return cls.from_uwsdt(engine)
        if isinstance(engine, WSD):
            return cls.from_wsd(engine)
        raise TypeError(f"cannot derive statistics from {type(engine).__name__}")

    # -- lookups ----------------------------------------------------------- #

    def row_count(self, relation_name: str) -> int:
        return self.row_counts.get(relation_name, DEFAULT_ROW_COUNT)

    def placeholder_density(self, relation_name: str) -> float:
        return self.placeholder_densities.get(relation_name, 0.0)

    def relation_attributes(self, relation_name: str) -> Optional[Tuple[str, ...]]:
        return self.attributes.get(relation_name)

    def __repr__(self) -> str:
        return f"Statistics({self.row_counts!r})"


@dataclass(frozen=True)
class CostEstimate:
    """Estimated output cardinality and cumulative operator work of a plan."""

    rows: float
    cost: float

    def __repr__(self) -> str:
        return f"CostEstimate(rows≈{self.rows:.0f}, cost≈{self.cost:.0f})"


def predicate_selectivity(predicate: Predicate) -> float:
    """Heuristic selectivity of a selection predicate."""
    if isinstance(predicate, TruePredicate):
        return 1.0
    if isinstance(predicate, (AttrConst, AttrAttr)):
        op = predicate.op
        if op in ("=", "=="):
            return EQUALITY_SELECTIVITY
        if op in ("!=", "<>"):
            return 1.0 - EQUALITY_SELECTIVITY
        return RANGE_SELECTIVITY
    if isinstance(predicate, And):
        selectivity = 1.0
        for part in predicate.parts:
            selectivity *= predicate_selectivity(part)
        return selectivity
    if isinstance(predicate, Or):
        miss = 1.0
        for part in predicate.parts:
            miss *= 1.0 - predicate_selectivity(part)
        return 1.0 - miss
    if isinstance(predicate, Not):
        return 1.0 - predicate_selectivity(predicate.inner)
    return 0.5


def output_attributes(query: Query, statistics: Statistics) -> Optional[Tuple[str, ...]]:
    """Output attribute list of a query, or None if a base schema is unknown.

    This is the planner's schema inference: rewrite legality (which side of a
    product a predicate may move to, what a projection may drop) and the
    width-aware cost factor both derive from it.
    """
    if isinstance(query, BaseRelation):
        return statistics.relation_attributes(query.name)
    if isinstance(query, Select):
        return output_attributes(query.child, statistics)
    if isinstance(query, Project):
        return tuple(query.attributes)
    if isinstance(query, Rename):
        child = output_attributes(query.child, statistics)
        if child is None:
            return None
        return tuple(query.new if a == query.old else a for a in child)
    if isinstance(query, (Product, Join)):
        left = output_attributes(query.left, statistics)
        right = output_attributes(query.right, statistics)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(query, (Union, Difference)):
        return output_attributes(query.left, statistics)
    raise TypeError(f"cannot infer attributes of {query!r}")


#: Arity assumed when schema inference cannot resolve a subquery's width.
DEFAULT_ARITY = 4


def _width_factor(query: Query, statistics: Statistics) -> float:
    """Per-tuple cost factor growing with the tuple width.

    Census templates are ~50 attributes wide; materializing a product of two
    of them moves twice as many values per tuple as scanning one.
    """
    attributes = output_attributes(query, statistics)
    arity = len(attributes) if attributes is not None else DEFAULT_ARITY
    return 1.0 + 0.1 * arity


def _max_density(query: Query, statistics: Statistics) -> float:
    return max(
        (statistics.placeholder_density(name) for name in query.base_relations()),
        default=0.0,
    )


def estimate(query: Query, statistics: Statistics) -> CostEstimate:
    """Estimate output cardinality and total work of evaluating ``query``.

    The unit of cost is "one tuple touched by one operator"; constants are
    uniform across engines because the planner only ever compares plans for
    the same engine.
    """
    if isinstance(query, BaseRelation):
        return CostEstimate(rows=float(statistics.row_count(query.name)), cost=0.0)
    if isinstance(query, Select):
        child = estimate(query.child, statistics)
        selectivity = predicate_selectivity(query.predicate)
        # Placeholder rows survive every selection on the representation
        # (they are filtered world-by-world inside their components).
        density = _max_density(query, statistics)
        effective = selectivity + density * (1.0 - selectivity)
        return CostEstimate(rows=child.rows * effective, cost=child.cost + child.rows)
    if isinstance(query, Project):
        child = estimate(query.child, statistics)
        return CostEstimate(
            rows=child.rows, cost=child.cost + child.rows * _width_factor(query.child, statistics)
        )
    if isinstance(query, Rename):
        child = estimate(query.child, statistics)
        return CostEstimate(rows=child.rows, cost=child.cost + child.rows)
    if isinstance(query, Product):
        left = estimate(query.left, statistics)
        right = estimate(query.right, statistics)
        out = left.rows * right.rows
        return CostEstimate(
            rows=out, cost=left.cost + right.cost + out * _width_factor(query, statistics)
        )
    if isinstance(query, Join):
        left = estimate(query.left, statistics)
        right = estimate(query.right, statistics)
        out = left.rows * right.rows * EQUALITY_SELECTIVITY
        # Hash join: build + probe + emit.
        return CostEstimate(
            rows=out,
            cost=left.cost
            + right.cost
            + left.rows
            + right.rows
            + out * _width_factor(query, statistics),
        )
    if isinstance(query, Union):
        left = estimate(query.left, statistics)
        right = estimate(query.right, statistics)
        out = left.rows + right.rows
        return CostEstimate(rows=out, cost=left.cost + right.cost + out)
    if isinstance(query, Difference):
        left = estimate(query.left, statistics)
        right = estimate(query.right, statistics)
        # On WSDs/UWSDTs difference composes components pairwise — by far the
        # paper's most expensive operator — so it is costed quadratically.
        return CostEstimate(
            rows=left.rows, cost=left.cost + right.cost + left.rows * max(1.0, right.rows)
        )
    raise TypeError(f"cannot estimate cost of {query!r}")
