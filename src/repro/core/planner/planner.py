"""The logical planner: drives the rewrite rules and wraps the result in a Plan.

``plan(query, statistics)`` runs the phased rule pipeline of
:mod:`~repro.core.planner.rules` to a fixpoint, costs the original and the
rewritten tree with the model of :mod:`~repro.core.planner.cost`, and keeps
whichever is estimated cheaper.  The returned :class:`Plan` records every
rule application so ``plan.explain()`` can show *why* the chosen tree looks
the way it does — including the join order picked by the enumerator and how
the sampled-selectivity estimates compare with the fixed-constant ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..algebra.query import (
    BaseRelation,
    Difference,
    Intersection,
    Join,
    Product,
    Project,
    Query,
    Rename,
    Select,
    Union,
)
from .cost import CostEstimate, Statistics, active_cost_profile_path, estimate
from .rules import DEFAULT_PHASES, RewriteContext, RewriteRule

#: Safety bound on fixpoint iterations per phase (a phase that needs more is
#: almost certainly oscillating; the bound turns that into a stable result).
MAX_PASSES_PER_PHASE = 25

#: Monotonic count of :func:`plan` invocations — the companion probe to
#: :func:`~repro.core.planner.sampling.sampling_call_count`, letting tests
#: assert that a plan-cache hit skipped the rewrite/DP pipeline entirely.
_PLAN_CALLS = 0


def plan_call_count() -> int:
    """Number of full planning passes performed so far in this process."""
    return _PLAN_CALLS


@dataclass(frozen=True)
class RuleApplication:
    """One successful rule firing, recorded for ``plan.explain()``."""

    phase: str
    rule: str
    before: str
    after: str


def describe_join_order(query: Query) -> Optional[str]:
    """The join/product skeleton of a tree, e.g. ``((R ⋈ S) ⋈ T)``.

    Unary operators are skipped (a filtered, renamed copy of ``R`` still
    reads ``R``); returns None when the tree contains no join or product.
    """
    has_binary = [False]

    def label(node: Query) -> str:
        if isinstance(node, BaseRelation):
            return node.name
        if isinstance(node, (Select, Project)):
            return label(node.child)
        if isinstance(node, Rename):
            inner = label(node.child)
            if "(" in inner:
                # Renaming above a composite subtree does not change its
                # join skeleton; appending here would mangle the rendering.
                return inner
            # Distinguish renamed copies of the same base: ``R→C1``.
            return f"{inner.split('→')[0]}→{node.new}"
        if isinstance(node, Join):
            has_binary[0] = True
            return f"({label(node.left)} ⋈ {label(node.right)})"
        if isinstance(node, Product):
            has_binary[0] = True
            return f"({label(node.left)} × {label(node.right)})"
        if isinstance(node, Union):
            return f"({label(node.left)} ∪ {label(node.right)})"
        if isinstance(node, Difference):
            return f"({label(node.left)} − {label(node.right)})"
        if isinstance(node, Intersection):
            return f"({label(node.left)} ∩ {label(node.right)})"
        raise TypeError(f"cannot describe {node!r}")

    rendered = label(query)
    return rendered if has_binary[0] else None


@dataclass
class Plan:
    """An optimized (or deliberately untouched) query plan.

    ``chosen`` is the tree :meth:`~repro.core.algebra.query.Query.run`
    evaluates: the rewritten tree when the cost model judges it cheaper,
    otherwise the original.  ``cost_before``/``cost_after`` use sampled
    selectivities when the statistics carry samples;
    ``cost_fixed_before``/``cost_fixed_after`` re-estimate both trees with
    the fixed constants for comparison in ``explain()``.
    """

    original: Query
    optimized: Query
    applications: List[RuleApplication]
    statistics: Statistics
    cost_before: CostEstimate
    cost_after: CostEstimate
    cost_fixed_before: Optional[CostEstimate] = None
    cost_fixed_after: Optional[CostEstimate] = None

    @property
    def chosen(self) -> Query:
        return self.optimized if self.improved else self.original

    @property
    def improved(self) -> bool:
        return bool(self.applications) and self.cost_after.cost <= self.cost_before.cost

    @property
    def join_order(self) -> Optional[str]:
        """The join/product skeleton of the chosen tree (None if join-free)."""
        return describe_join_order(self.chosen)

    #: Human-readable provenance labels for ``explain()``.
    _PROVENANCE_LABELS = {
        "cached-sample": "cached sample",
        "fresh-sample": "fresh sample",
        "fixed-constants": "fixed-constant fallback (no sample)",
    }

    def statistics_report(self) -> List[str]:
        """One line per base relation: where its cost inputs came from.

        Each estimate is derived either from a *cached* catalog sample, a
        sample drawn *fresh* for this plan, or — when no sample exists —
        the fixed selectivity constants.  ``explain()`` includes the report
        so mixed provenances are visible instead of silent.
        """
        lines: List[str] = []
        for name in self.original.base_relations():
            provenance = self.statistics.provenance(name)
            label = self._PROVENANCE_LABELS.get(provenance, provenance)
            sample = self.statistics.sample(name)
            if sample is not None:
                label += f" ({len(sample)} of {self.statistics.row_count(name):,} rows)"
            lines.append(f"  {name}: {label}")
        return lines

    def explain(self) -> str:
        """Human-readable account of the planning decision."""
        model = self.statistics.cost_model()
        profile = active_cost_profile_path()
        model_origin = model.source
        if model.source == "calibrated" and profile is not None:
            model_origin += f" profile {profile}"
        lines = [
            "query plan",
            "==========",
            f"original : {self.original!r}",
            f"rewritten: {self.optimized!r}",
            f"cost     : {self.cost_before.cost:,.0f} -> {self.cost_after.cost:,.0f}"
            f" (estimated rows {self.cost_before.rows:,.0f} -> {self.cost_after.rows:,.0f})",
        ]
        if self.cost_fixed_before is not None and self.cost_fixed_after is not None:
            lines.append(
                f"           fixed-constant estimate "
                f"{self.cost_fixed_before.cost:,.0f} -> {self.cost_fixed_after.cost:,.0f}"
            )
        lines.append(f"cost model: {model.name} ({model_origin} constants)")
        statistics_lines = self.statistics_report()
        if statistics_lines:
            lines.append("statistics:")
            lines.extend(statistics_lines)
        order = self.join_order
        if order is not None:
            lines.append(f"join order: {order}")
        lines.append(f"chosen   : {'rewritten' if self.improved else 'original'}")
        lines.append("chosen tree:")
        lines.append(self._render_chosen_tree())
        if self.applications:
            lines.append("rewrites :")
            for application in self.applications:
                lines.append(f"  [{application.phase}] {application.rule}")
                lines.append(f"      {application.before}")
                lines.append(f"    → {application.after}")
        else:
            lines.append("rewrites : (none applied)")
        return "\n".join(lines)

    def _render_chosen_tree(self) -> str:
        """The chosen tree, certainty-annotated when statistics allow.

        Each node carrying placeholder-density information is suffixed with
        its :mod:`~repro.analysis.certainty` verdict (``[certain]`` /
        ``[maybe]``); without densities this is plain ``to_text``.
        """
        from ...analysis.certainty import CertaintyContext, render_with_certainty

        if not self.statistics.placeholder_densities:
            return self.chosen.to_text("  ")
        context = CertaintyContext.from_statistics(self.statistics)
        return render_with_certainty(self.chosen, context, "  ")

    def __repr__(self) -> str:
        return (
            f"Plan({len(self.applications)} rewrites, "
            f"cost {self.cost_before.cost:,.0f} -> {self.cost_after.cost:,.0f}, "
            f"chosen={'rewritten' if self.improved else 'original'})"
        )


# --------------------------------------------------------------------------- #
# The rewrite engine
# --------------------------------------------------------------------------- #


def _rebuild(query: Query, children: Tuple[Query, ...]) -> Query:
    """Clone ``query`` with new children (Query nodes are plain objects)."""
    return query.with_children(children)


def _apply_once(
    query: Query,
    rules: Sequence[RewriteRule],
    context: RewriteContext,
    phase: str,
    trace: List[RuleApplication],
) -> Tuple[Query, bool]:
    """One bottom-up pass: rewrite children first, then try each rule here."""
    children = query.children()
    changed = False
    if children:
        new_children = []
        for child in children:
            new_child, child_changed = _apply_once(child, rules, context, phase, trace)
            changed = changed or child_changed
            new_children.append(new_child)
        if changed:
            query = _rebuild(query, tuple(new_children))
    for rule in rules:
        rewritten = rule.apply(query, context)
        if rewritten is not None:
            _verify_rule_output(rule.name, phase, query, rewritten, context)
            trace.append(RuleApplication(phase, rule.name, repr(query), repr(rewritten)))
            return rewritten, True
    return query, changed


def _verify_rule_output(
    rule_name: str, phase: str, before: Query, after: Query, context: RewriteContext
) -> None:
    """Check a rewrite-rule output is schema-preserving (REPRO_VERIFY_PLANS).

    A no-op unless plan verification is enabled; a rule that changes the
    inferred output schema raises
    :class:`~repro.analysis.invariants.PlanInvariantError` naming the rule
    and showing both trees.
    """
    from ...analysis import invariants

    if invariants.verification_enabled():
        invariants.verify_rewrite(
            rule_name, phase, before, after, context.schema_context
        )


def rewrite(
    query: Query,
    context: RewriteContext,
    phases: Sequence[Tuple[str, Sequence[RewriteRule]]] = DEFAULT_PHASES,
    trace: Optional[List[RuleApplication]] = None,
) -> Query:
    """Run the phased rule pipeline to a fixpoint; return the rewritten tree.

    Node-level rules run bottom-up to a fixpoint per phase; whole-tree rules
    (``rule.whole_tree``) are applied once per phase to the entire tree —
    join-order search must see a maximal cluster at once and picks its
    result deterministically, so a fixpoint would be wasted work.
    """
    recorded: List[RuleApplication] = trace if trace is not None else []
    current = query
    for phase_name, rules in phases:
        tree_rules = [rule for rule in rules if rule.whole_tree]
        node_rules = [rule for rule in rules if not rule.whole_tree]
        for rule in tree_rules:
            rewritten = rule.apply(current, context)
            if rewritten is not None:
                _verify_rule_output(rule.name, phase_name, current, rewritten, context)
                recorded.append(
                    RuleApplication(phase_name, rule.name, repr(current), repr(rewritten))
                )
                current = rewritten
        if not node_rules:
            continue
        for _ in range(MAX_PASSES_PER_PHASE):
            current, changed = _apply_once(current, node_rules, context, phase_name, recorded)
            if not changed:
                break
    return current


def plan(
    query: Query,
    statistics: Optional[Statistics] = None,
    phases: Sequence[Tuple[str, Sequence[RewriteRule]]] = DEFAULT_PHASES,
) -> Plan:
    """Plan ``query``: rewrite, cost both trees, pick the cheaper one."""
    from ...obs.metrics import get_registry
    from ...obs.trace import get_tracer

    global _PLAN_CALLS
    _PLAN_CALLS += 1
    get_registry().counter("repro.planner.plan_calls").inc()
    statistics = statistics or Statistics()
    with get_tracer().span("plan", engine=statistics.engine):
        context = RewriteContext(statistics)
        # Strict static analysis before any rewriting: unknown attributes,
        # duplicate attributes, set-operation mismatches and predicate type
        # errors are rejected here with a rendered tree pointing at the
        # offending node, instead of surfacing mid-execution.
        from ...analysis.schema import analyze

        analyze(query, context.schema_context)
        trace: List[RuleApplication] = []
        with get_tracer().span("rewrite"):
            optimized = rewrite(query, context, phases, trace)
        fixed = statistics.without_samples() if statistics.samples else None
        return Plan(
            original=query,
            optimized=optimized,
            applications=trace,
            statistics=statistics,
            cost_before=estimate(query, statistics),
            cost_after=estimate(optimized, statistics),
            cost_fixed_before=estimate(query, fixed) if fixed is not None else None,
            cost_fixed_after=estimate(optimized, fixed) if fixed is not None else None,
        )


def plan_for_engine(query: Query, engine, **kwargs) -> Plan:
    """Plan ``query`` with statistics gathered from a live engine.

    Row sampling is restricted to the query's base relations — relations the
    query never touches are not scanned.
    """
    statistics = Statistics.from_engine(
        engine, sample_relations=tuple(query.base_relations())
    )
    return plan(query, statistics, **kwargs)
