"""The logical planner: drives the rewrite rules and wraps the result in a Plan.

``plan(query, statistics)`` runs the phased rule pipeline of
:mod:`~repro.core.planner.rules` to a fixpoint, costs the original and the
rewritten tree with the model of :mod:`~repro.core.planner.cost`, and keeps
whichever is estimated cheaper.  The returned :class:`Plan` records every
rule application so ``plan.explain()`` can show *why* the chosen tree looks
the way it does — the inspectability seam later sharding/multi-backend work
builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..algebra.query import (
    BaseRelation,
    Difference,
    Join,
    Product,
    Project,
    Query,
    Rename,
    Select,
    Union,
)
from .cost import CostEstimate, Statistics, estimate
from .rules import DEFAULT_PHASES, RewriteContext, RewriteRule

#: Safety bound on fixpoint iterations per phase (a phase that needs more is
#: almost certainly oscillating; the bound turns that into a stable result).
MAX_PASSES_PER_PHASE = 25


@dataclass(frozen=True)
class RuleApplication:
    """One successful rule firing, recorded for ``plan.explain()``."""

    phase: str
    rule: str
    before: str
    after: str


@dataclass
class Plan:
    """An optimized (or deliberately untouched) query plan.

    ``chosen`` is the tree :meth:`~repro.core.algebra.query.Query.run`
    evaluates: the rewritten tree when the cost model judges it cheaper,
    otherwise the original.
    """

    original: Query
    optimized: Query
    applications: List[RuleApplication]
    statistics: Statistics
    cost_before: CostEstimate
    cost_after: CostEstimate

    @property
    def chosen(self) -> Query:
        return self.optimized if self.improved else self.original

    @property
    def improved(self) -> bool:
        return bool(self.applications) and self.cost_after.cost <= self.cost_before.cost

    def explain(self) -> str:
        """Human-readable account of the planning decision."""
        lines = [
            "query plan",
            "==========",
            f"original : {self.original!r}",
            f"rewritten: {self.optimized!r}",
            f"cost     : {self.cost_before.cost:,.0f} -> {self.cost_after.cost:,.0f}"
            f" (estimated rows {self.cost_before.rows:,.0f} -> {self.cost_after.rows:,.0f})",
            f"chosen   : {'rewritten' if self.improved else 'original'}",
        ]
        if self.applications:
            lines.append("rewrites :")
            for application in self.applications:
                lines.append(f"  [{application.phase}] {application.rule}")
                lines.append(f"      {application.before}")
                lines.append(f"    → {application.after}")
        else:
            lines.append("rewrites : (none applied)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Plan({len(self.applications)} rewrites, "
            f"cost {self.cost_before.cost:,.0f} -> {self.cost_after.cost:,.0f}, "
            f"chosen={'rewritten' if self.improved else 'original'})"
        )


# --------------------------------------------------------------------------- #
# The rewrite engine
# --------------------------------------------------------------------------- #


def _rebuild(query: Query, children: Tuple[Query, ...]) -> Query:
    """Clone ``query`` with new children (Query nodes are plain objects)."""
    if isinstance(query, BaseRelation):
        return query
    if isinstance(query, Select):
        return Select(children[0], query.predicate)
    if isinstance(query, Project):
        return Project(children[0], query.attributes)
    if isinstance(query, Rename):
        return Rename(children[0], query.old, query.new)
    if isinstance(query, Product):
        return Product(children[0], children[1])
    if isinstance(query, Union):
        return Union(children[0], children[1])
    if isinstance(query, Difference):
        return Difference(children[0], children[1])
    if isinstance(query, Join):
        return Join(children[0], children[1], query.left_attr, query.right_attr)
    raise TypeError(f"cannot rebuild {query!r}")


def _apply_once(
    query: Query,
    rules: Sequence[RewriteRule],
    context: RewriteContext,
    phase: str,
    trace: List[RuleApplication],
) -> Tuple[Query, bool]:
    """One bottom-up pass: rewrite children first, then try each rule here."""
    children = query.children()
    changed = False
    if children:
        new_children = []
        for child in children:
            new_child, child_changed = _apply_once(child, rules, context, phase, trace)
            changed = changed or child_changed
            new_children.append(new_child)
        if changed:
            query = _rebuild(query, tuple(new_children))
    for rule in rules:
        rewritten = rule.apply(query, context)
        if rewritten is not None:
            trace.append(RuleApplication(phase, rule.name, repr(query), repr(rewritten)))
            return rewritten, True
    return query, changed


def rewrite(
    query: Query,
    context: RewriteContext,
    phases: Sequence[Tuple[str, Sequence[RewriteRule]]] = DEFAULT_PHASES,
    trace: Optional[List[RuleApplication]] = None,
) -> Query:
    """Run the phased rule pipeline to a fixpoint; return the rewritten tree."""
    recorded: List[RuleApplication] = trace if trace is not None else []
    current = query
    for phase_name, rules in phases:
        for _ in range(MAX_PASSES_PER_PHASE):
            current, changed = _apply_once(current, rules, context, phase_name, recorded)
            if not changed:
                break
    return current


def plan(
    query: Query,
    statistics: Optional[Statistics] = None,
    phases: Sequence[Tuple[str, Sequence[RewriteRule]]] = DEFAULT_PHASES,
) -> Plan:
    """Plan ``query``: rewrite, cost both trees, pick the cheaper one."""
    statistics = statistics or Statistics()
    context = RewriteContext(statistics)
    trace: List[RuleApplication] = []
    optimized = rewrite(query, context, phases, trace)
    return Plan(
        original=query,
        optimized=optimized,
        applications=trace,
        statistics=statistics,
        cost_before=estimate(query, statistics),
        cost_after=estimate(optimized, statistics),
    )


def plan_for_engine(query: Query, engine, **kwargs) -> Plan:
    """Plan ``query`` with statistics gathered from a live engine."""
    return plan(query, Statistics.from_engine(engine), **kwargs)
