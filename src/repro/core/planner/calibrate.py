"""Auto-calibration of the planner's :class:`CostModel` constants.

The hand-tuned per-engine constants of :mod:`~repro.core.planner.cost` were
estimated once from census-workload timings; this module replaces the
guesswork with a microbenchmark driver that *measures* them on the current
machine:

1. :func:`run_microbenchmarks` times each operator primitive —
   ``select`` / ``project`` / ``rename`` / ``union`` / ``product`` /
   ``equi_join`` / ``difference`` — per engine (classical relations,
   :func:`~repro.core.algebra.wsd_ops` on WSDs,
   :func:`~repro.core.algebra.uwsdt_ops` on UWSDTs) at a few input sizes,
   on synthetic relations with a small or-set density so the
   representation engines pay their real per-placeholder costs.
2. :func:`fit_cost_model` converts the timings into constants by least
   squares through the origin: each operator's cost formula (the same
   per-operator steps ``estimate()`` uses) predicts ``seconds ≈ slope ×
   work-units``, the slope is fitted over the sizes, and the slopes are
   normalized so the engine's ``select_tuple`` keeps its hand-tuned value —
   the planner only ever compares plans for one engine, so only the
   within-engine *ratios* matter.  The join is fitted in two steps: the
   ``emit`` slope comes from the product measurements, and the join's
   build+probe constant is fitted on the residual after subtracting the
   emit share.
3. :class:`CalibrationProfile` persists the fitted models as a JSON
   document that :func:`~repro.core.planner.cost.load_cost_profile` (or
   the ``REPRO_COST_PROFILE`` environment variable) installs, after which
   ``CostModel.for_engine`` — and therefore every ``Statistics.cost_model()``
   and ``Plan.explain()`` — serves calibrated constants, with the
   hand-tuned ones as fallback for engines the profile does not cover.

Run it as a module to produce a profile::

    python -m repro.core.planner.calibrate --smoke --output COST_PROFILE.json

CI runs exactly that at smoke size and uploads the profile next to
``BENCH_smoke.json``, so the constants' trajectory is tracked per run.
"""

from __future__ import annotations

import argparse
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ...relational import algebra as relational_algebra
from ...relational.predicates import AttrConst
from ...relational.relation import Relation
from ...relational.schema import RelationSchema
from ...worlds.orset import OrSet, OrSetRelation
from ..algebra import uwsdt_ops, wsd_ops
from ..uwsdt import UWSDT
from ..wsd import WSD
from .cost import (
    COST_MODELS,
    COST_PROFILE_FORMAT,
    CostModel,
    GENERIC_COST,
    arity_width,
    install_cost_profile,
    parse_cost_profile,
)

#: Engines the calibrator knows how to drive.  ``"columnar"`` times the
#: vectorized kernels of :mod:`~repro.core.exec.columnar` over column
#: batches (product stays the row path, which is what the columnar backend
#: actually executes for it).
CALIBRATION_ENGINES: Tuple[str, ...] = ("database", "wsd", "uwsdt", "columnar")

#: Input sizes for the linear operators (select/project/rename/union/join).
DEFAULT_LINEAR_SIZES: Tuple[int, ...] = (160, 320)
#: Input sizes for the quadratic product (output is n²).
DEFAULT_PRODUCT_SIZES: Tuple[int, ...] = (16, 28)
#: Input sizes for difference (pairwise component composition on WSDs).
DEFAULT_DIFFERENCE_SIZES: Tuple[int, ...] = (6, 10)

#: Smoke-size schedule (CI: a couple of seconds for all three engines).
SMOKE_LINEAR_SIZES: Tuple[int, ...] = (48, 96)
SMOKE_PRODUCT_SIZES: Tuple[int, ...] = (8, 14)
SMOKE_DIFFERENCE_SIZES: Tuple[int, ...] = (4, 6)

DEFAULT_REPEATS = 3
CALIBRATION_SEED = 0xCA11B

#: Fraction of non-key fields turned into two-value or-sets, so WSD/UWSDT
#: microbenchmarks pay their genuine per-placeholder component costs.
ORSET_DENSITY = 0.05

#: Fitted constants are floored here — a sub-resolution timing must not
#: make an operator look free to the planner.
MIN_CONSTANT = 0.01

_ATTRS = ("K", "A", "B", "C")
_JOIN_ATTRS = ("K2", "A2", "B2", "C2")


@dataclass(frozen=True)
class Measurement:
    """One timed operator primitive."""

    engine: str
    operator: str
    rows_left: int
    rows_right: int
    out_rows: int
    arity_in: int
    arity_out: int
    seconds: float


# --------------------------------------------------------------------------- #
# Synthetic inputs
# --------------------------------------------------------------------------- #


def _value_rows(count: int, seed: int) -> List[Tuple[int, int, int, int]]:
    """Deterministic rows: a skewed join key ``K`` plus three value columns
    (the trailing counter keeps rows distinct under set semantics)."""
    rng = random.Random(seed)
    return [
        (index % max(2, count // 4), rng.randrange(5), rng.randrange(3), index)
        for index in range(count)
    ]


def _plain_relation(name: str, attributes: Sequence[str], count: int, seed: int) -> Relation:
    return Relation(RelationSchema(name, attributes), _value_rows(count, seed))


def _orset_relation(
    name: str, attributes: Sequence[str], count: int, seed: int, density: float = ORSET_DENSITY
) -> OrSetRelation:
    rng = random.Random(seed ^ 0xD1CE)
    relation = OrSetRelation(RelationSchema(name, attributes))
    for row in _value_rows(count, seed):
        uncertain = tuple(
            OrSet([value, value + 5]) if position in (1, 2) and rng.random() < density else value
            for position, value in enumerate(row)
        )
        relation.insert(uncertain)
    return relation


# --------------------------------------------------------------------------- #
# Timing helpers
# --------------------------------------------------------------------------- #


def _timed_pure(action: Callable[[], Any], repeats: int) -> Tuple[Any, float]:
    """Best-of-``repeats`` timing of a side-effect-free action."""
    best: Optional[float] = None
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = action()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return result, best or 0.0


def _timed_inplace(
    base: Any, op: Callable[[Any], None], out_of: Callable[[Any], int], repeats: int
) -> Tuple[int, float]:
    """Best-of-``repeats`` timing of an in-place representation operator.

    The engine is copied outside the timed region so each repeat sees a
    fresh representation (the operators extend it in place).
    """
    best: Optional[float] = None
    out = 0
    for _ in range(max(1, repeats)):
        engine = base.copy()
        start = time.perf_counter()
        op(engine)
        elapsed = time.perf_counter() - start
        out = out_of(engine)
        best = elapsed if best is None else min(best, elapsed)
    return out, best or 0.0


# --------------------------------------------------------------------------- #
# Per-engine drivers
# --------------------------------------------------------------------------- #


def _measure_database(
    linear_sizes: Sequence[int],
    product_sizes: Sequence[int],
    difference_sizes: Sequence[int],
    repeats: int,
    seed: int,
) -> List[Measurement]:
    measurements: List[Measurement] = []
    arity = len(_ATTRS)
    predicate = AttrConst("A", "=", 1)

    def record(operator, left, right, out, arity_out, seconds):
        measurements.append(
            Measurement("database", operator, left, right, out, arity, arity_out, seconds)
        )

    for count in linear_sizes:
        left = _plain_relation("R", _ATTRS, count, seed)
        twin = _plain_relation("R2", _ATTRS, count, seed + 1)
        other = _plain_relation("S", _JOIN_ATTRS, count, seed + 2)
        result, seconds = _timed_pure(lambda: relational_algebra.select(left, predicate), repeats)
        record("select", count, 0, len(result), arity, seconds)
        result, seconds = _timed_pure(lambda: relational_algebra.project(left, ("K", "A")), repeats)
        record("project", count, 0, len(result), 2, seconds)
        result, seconds = _timed_pure(lambda: relational_algebra.rename(left, "A", "A9"), repeats)
        record("rename", count, 0, len(result), arity, seconds)
        result, seconds = _timed_pure(lambda: relational_algebra.union(left, twin), repeats)
        record("union", count, count, len(result), arity, seconds)
        result, seconds = _timed_pure(
            lambda: relational_algebra.equi_join(left, other, "K", "K2"), repeats
        )
        record("join", count, count, len(result), 2 * arity, seconds)
    for count in product_sizes:
        left = _plain_relation("R", _ATTRS, count, seed)
        other = _plain_relation("S", _JOIN_ATTRS, count, seed + 2)
        result, seconds = _timed_pure(lambda: relational_algebra.product(left, other), repeats)
        record("product", count, count, len(result), 2 * arity, seconds)
    for count in difference_sizes:
        left = _plain_relation("R", _ATTRS, count, seed)
        twin = _plain_relation("R2", _ATTRS, count, seed + 1)
        result, seconds = _timed_pure(lambda: relational_algebra.difference(left, twin), repeats)
        record("difference", count, count, len(result), arity, seconds)
    return measurements


def _measure_representation(
    engine_name: str,
    linear_sizes: Sequence[int],
    product_sizes: Sequence[int],
    difference_sizes: Sequence[int],
    repeats: int,
    seed: int,
) -> List[Measurement]:
    """Shared driver for the WSD and UWSDT in-place operators."""
    measurements: List[Measurement] = []
    arity = len(_ATTRS)
    predicate = AttrConst("A", "=", 1)
    if engine_name == "uwsdt":
        ops, build = uwsdt_ops, UWSDT.from_orset_relations

        def result_size(engine, target):
            return engine.template_size(target)

    else:
        ops, build = wsd_ops, WSD.from_orset_relations

        def result_size(engine, target):
            return len(engine.tuple_ids.get(target, ()))

    def base(count):
        return build(
            [
                _orset_relation("R", _ATTRS, count, seed),
                _orset_relation("R2", _ATTRS, count, seed + 1),
                _orset_relation("S", _JOIN_ATTRS, count, seed + 2),
            ]
        )

    def record(operator, left, right, out, arity_out, seconds):
        measurements.append(
            Measurement(engine_name, operator, left, right, out, arity, arity_out, seconds)
        )

    for count in linear_sizes:
        engine = base(count)
        out, seconds = _timed_inplace(
            engine, lambda e: ops.select(e, "R", "T", predicate),
            lambda e: result_size(e, "T"), repeats,
        )
        record("select", count, 0, out, arity, seconds)
        out, seconds = _timed_inplace(
            engine, lambda e: ops.project(e, "R", "T", ("K", "A")),
            lambda e: result_size(e, "T"), repeats,
        )
        record("project", count, 0, out, 2, seconds)
        out, seconds = _timed_inplace(
            engine, lambda e: ops.rename(e, "R", "T", "A", "A9"),
            lambda e: result_size(e, "T"), repeats,
        )
        record("rename", count, 0, out, arity, seconds)
        out, seconds = _timed_inplace(
            engine, lambda e: ops.union(e, "R", "R2", "T"),
            lambda e: result_size(e, "T"), repeats,
        )
        record("union", count, count, out, arity, seconds)
        out, seconds = _timed_inplace(
            engine, lambda e: ops.equi_join(e, "R", "S", "K", "K2", "T"),
            lambda e: result_size(e, "T"), repeats,
        )
        record("join", count, count, out, 2 * arity, seconds)
    for count in product_sizes:
        engine = base(count)
        out, seconds = _timed_inplace(
            engine, lambda e: ops.product(e, "R", "S", "T"),
            lambda e: result_size(e, "T"), repeats,
        )
        record("product", count, count, out, 2 * arity, seconds)
    for count in difference_sizes:
        engine = base(count)
        out, seconds = _timed_inplace(
            engine, lambda e: ops.difference(e, "R", "R2", "T"),
            lambda e: result_size(e, "T"), repeats,
        )
        record("difference", count, count, out, arity, seconds)
    return measurements


def _measure_columnar(
    linear_sizes: Sequence[int],
    product_sizes: Sequence[int],
    difference_sizes: Sequence[int],
    repeats: int,
    seed: int,
) -> List[Measurement]:
    """Time the vectorized kernels over :class:`ColumnBatch` inputs.

    The batches are built from the same synthetic rows the Database driver
    uses (batch construction happens outside the timed region — it is the
    materialize boundary's cost, not the kernels').  Product has no kernel:
    the columnar backend delegates it to the row path, so the emit slope is
    measured on the classical product, exactly the work a columnar plan
    pays there.
    """
    from ...core.exec.columnar import (
        ColumnBatch,
        difference_batch,
        filter_batch,
        hash_join_batch,
        project_batch,
        rename_batch,
        union_batch,
    )

    measurements: List[Measurement] = []
    arity = len(_ATTRS)
    predicate = AttrConst("A", "=", 1)

    def batch_of(relation: Relation) -> ColumnBatch:
        return ColumnBatch.from_rows(relation.schema.attributes, relation.rows)

    def record(operator, left, right, out, arity_out, seconds):
        measurements.append(
            Measurement("columnar", operator, left, right, out, arity, arity_out, seconds)
        )

    for count in linear_sizes:
        left = batch_of(_plain_relation("R", _ATTRS, count, seed))
        twin = batch_of(_plain_relation("R2", _ATTRS, count, seed + 1))
        other = batch_of(_plain_relation("S", _JOIN_ATTRS, count, seed + 2))
        result, seconds = _timed_pure(lambda: filter_batch(left, predicate), repeats)
        record("select", count, 0, len(result), arity, seconds)
        result, seconds = _timed_pure(lambda: project_batch(left, ("K", "A")), repeats)
        record("project", count, 0, len(result), 2, seconds)
        result, seconds = _timed_pure(lambda: rename_batch(left, "A", "A9"), repeats)
        record("rename", count, 0, len(result), arity, seconds)
        result, seconds = _timed_pure(lambda: union_batch(left, twin), repeats)
        record("union", count, count, len(result), arity, seconds)
        result, seconds = _timed_pure(
            lambda: hash_join_batch(left, other, "K", "K2"), repeats
        )
        record("join", count, count, len(result), 2 * arity, seconds)
    for count in product_sizes:
        left = _plain_relation("R", _ATTRS, count, seed)
        other = _plain_relation("S", _JOIN_ATTRS, count, seed + 2)
        result, seconds = _timed_pure(lambda: relational_algebra.product(left, other), repeats)
        record("product", count, count, len(result), 2 * arity, seconds)
    for count in difference_sizes:
        left = batch_of(_plain_relation("R", _ATTRS, count, seed))
        twin = batch_of(_plain_relation("R2", _ATTRS, count, seed + 1))
        result, seconds = _timed_pure(lambda: difference_batch(left, twin), repeats)
        record("difference", count, count, len(result), arity, seconds)
    return measurements


def run_microbenchmarks(
    engine_name: str,
    linear_sizes: Sequence[int] = DEFAULT_LINEAR_SIZES,
    product_sizes: Sequence[int] = DEFAULT_PRODUCT_SIZES,
    difference_sizes: Sequence[int] = DEFAULT_DIFFERENCE_SIZES,
    repeats: int = DEFAULT_REPEATS,
    seed: int = CALIBRATION_SEED,
) -> List[Measurement]:
    """Time every operator primitive of one engine at the given sizes."""
    if engine_name == "database":
        return _measure_database(linear_sizes, product_sizes, difference_sizes, repeats, seed)
    if engine_name == "columnar":
        return _measure_columnar(linear_sizes, product_sizes, difference_sizes, repeats, seed)
    if engine_name in ("wsd", "uwsdt"):
        return _measure_representation(
            engine_name, linear_sizes, product_sizes, difference_sizes, repeats, seed
        )
    raise ValueError(f"unknown calibration engine {engine_name!r}")


# --------------------------------------------------------------------------- #
# Least-squares fit
# --------------------------------------------------------------------------- #


def _slope(points: Sequence[Tuple[float, float]]) -> Optional[float]:
    """Least-squares slope through the origin of ``seconds ≈ slope·work``."""
    numerator = sum(work * seconds for work, seconds in points)
    denominator = sum(work * work for work, _ in points)
    if denominator <= 0:
        return None
    slope = numerator / denominator
    return slope if slope > 0 else None


def _work_units(measurement: Measurement) -> Optional[Tuple[str, float]]:
    """``(constant name, work units)`` under the cost model's formulas."""
    left, right = measurement.rows_left, measurement.rows_right
    if measurement.operator == "select":
        return "select_tuple", float(left)
    if measurement.operator == "project":
        return "project_tuple", left * arity_width(measurement.arity_in)
    if measurement.operator == "rename":
        return "rename_tuple", float(left)
    if measurement.operator == "union":
        return "union_tuple", float(left + right)
    if measurement.operator == "product":
        return "emit_tuple", left * right * arity_width(measurement.arity_out)
    if measurement.operator == "difference":
        return "difference_pair", float(left * max(1, right))
    return None  # joins are fitted separately (emit share subtracted first)


def fit_cost_model(
    engine_name: str,
    measurements: Sequence[Measurement],
    reference: Optional[CostModel] = None,
) -> CostModel:
    """Fit an engine's cost constants from its operator timings.

    Slopes are normalized so ``select_tuple`` keeps the reference (hand-tuned)
    value — within-engine ratios are what the planner compares.  Operators
    without a usable slope (no measurements, or timings below resolution)
    keep their reference constant.
    """
    reference = reference or COST_MODELS.get(engine_name, GENERIC_COST)
    groups: Dict[str, List[Tuple[float, float]]] = {}
    joins: List[Measurement] = []
    for measurement in measurements:
        if measurement.engine != engine_name:
            continue
        if measurement.operator == "join":
            joins.append(measurement)
            continue
        spec = _work_units(measurement)
        if spec is not None:
            groups.setdefault(spec[0], []).append((spec[1], measurement.seconds))

    slopes: Dict[str, Optional[float]] = {
        name: _slope(points) for name, points in groups.items()
    }
    emit_slope = slopes.get("emit_tuple")
    if joins and emit_slope is not None:
        residual_points = []
        for measurement in joins:
            emit_share = emit_slope * measurement.out_rows * arity_width(measurement.arity_out)
            residual = measurement.seconds - emit_share
            if residual > 0:
                residual_points.append(
                    (float(measurement.rows_left + measurement.rows_right), residual)
                )
        fitted_join = _slope(residual_points)
        if fitted_join is None:
            # A join faster than the engine's emit rate leaves no positive
            # residual (the columnar backend's gather-based join vs the
            # row-path emit its product delegates to).  Fit on total join
            # time instead: an upper bound that still reflects the measured
            # speed, rather than falling back to the hand-tuned guess.
            fitted_join = _slope(
                [
                    (float(m.rows_left + m.rows_right), m.seconds)
                    for m in joins
                    if m.seconds > 0
                ]
            )
        slopes["join_build"] = fitted_join

    select_slope = slopes.get("select_tuple")
    if select_slope is None:
        return reference  # nothing to anchor the unit on; keep hand-tuned
    unit = select_slope / reference.select_tuple

    def constant(name: str, fallback: float) -> float:
        slope = slopes.get(name)
        if slope is None:
            return fallback
        return max(slope / unit, MIN_CONSTANT)

    join_constant = constant("join_build", reference.join_build)
    return CostModel(
        name=engine_name,
        select_tuple=reference.select_tuple,
        project_tuple=constant("project_tuple", reference.project_tuple),
        rename_tuple=constant("rename_tuple", reference.rename_tuple),
        union_tuple=constant("union_tuple", reference.union_tuple),
        emit_tuple=constant("emit_tuple", reference.emit_tuple),
        join_build=join_constant,
        join_probe=join_constant,
        # Not microbenchmarked here; kept at the reference ratio and refined
        # at runtime by the executor's feedback loop (repro.core.exec.feedback).
        index_probe=reference.index_probe,
        difference_pair=constant("difference_pair", reference.difference_pair),
        source="calibrated",
    )


# --------------------------------------------------------------------------- #
# Profiles
# --------------------------------------------------------------------------- #


@dataclass
class CalibrationProfile:
    """Fitted per-engine cost models plus how they were obtained."""

    models: Dict[str, CostModel]
    metadata: Dict[str, Any] = field(default_factory=dict)

    def to_document(self) -> Dict[str, Any]:
        return {
            "format": COST_PROFILE_FORMAT,
            "version": 1,
            "engines": {name: model.constants() for name, model in self.models.items()},
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "CalibrationProfile":
        return cls(parse_cost_profile(document), dict(document.get("metadata", {})))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_document(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "CalibrationProfile":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_document(json.load(handle))

    def install(self, path: Optional[str] = None) -> None:
        """Make ``CostModel.for_engine`` serve these models."""
        install_cost_profile(self.models, path)


def calibrate(
    engines: Sequence[str] = CALIBRATION_ENGINES,
    smoke: bool = False,
    linear_sizes: Optional[Sequence[int]] = None,
    product_sizes: Optional[Sequence[int]] = None,
    difference_sizes: Optional[Sequence[int]] = None,
    repeats: int = DEFAULT_REPEATS,
    seed: int = CALIBRATION_SEED,
) -> CalibrationProfile:
    """Run the microbenchmarks and fit a profile for the given engines."""
    linear = tuple(linear_sizes or (SMOKE_LINEAR_SIZES if smoke else DEFAULT_LINEAR_SIZES))
    product = tuple(product_sizes or (SMOKE_PRODUCT_SIZES if smoke else DEFAULT_PRODUCT_SIZES))
    difference = tuple(
        difference_sizes or (SMOKE_DIFFERENCE_SIZES if smoke else DEFAULT_DIFFERENCE_SIZES)
    )
    models: Dict[str, CostModel] = {}
    for engine_name in engines:
        measurements = run_microbenchmarks(
            engine_name, linear, product, difference, repeats, seed
        )
        models[engine_name] = fit_cost_model(engine_name, measurements)
    metadata = {
        "engines": list(engines),
        "linear_sizes": list(linear),
        "product_sizes": list(product),
        "difference_sizes": list(difference),
        "repeats": repeats,
        "seed": seed,
        "smoke": bool(smoke),
    }
    return CalibrationProfile(models, metadata)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fit planner cost constants from operator microbenchmarks."
    )
    parser.add_argument("--output", default="COST_PROFILE.json", help="profile JSON path")
    parser.add_argument("--smoke", action="store_true", help="use the tiny CI size schedule")
    parser.add_argument(
        "--engines", nargs="+", default=list(CALIBRATION_ENGINES), choices=CALIBRATION_ENGINES
    )
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--seed", type=int, default=CALIBRATION_SEED)
    args = parser.parse_args(argv)

    profile = calibrate(
        engines=args.engines, smoke=args.smoke, repeats=args.repeats, seed=args.seed
    )
    profile.save(args.output)
    print(f"wrote {args.output}")
    header = f"{'engine':<10}" + "".join(f"{name:>18}" for name in CostModel.CONSTANT_FIELDS)
    print(header)
    for engine_name, model in profile.models.items():
        row = f"{engine_name:<10}" + "".join(
            f"{getattr(model, name):>18.4f}" for name in CostModel.CONSTANT_FIELDS
        )
        print(row)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
