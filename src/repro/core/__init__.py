"""The paper's core contribution: world-set decompositions and their algorithms.

Contents:

* :mod:`repro.core.fields`, :mod:`repro.core.component` — field identifiers
  and components (the factors of a decomposition).
* :mod:`repro.core.wsd`, :mod:`repro.core.wsdt`, :mod:`repro.core.uwsdt` —
  the three representation systems of Section 3.
* :mod:`repro.core.decompose`, :mod:`repro.core.normalize` — maximal product
  decomposition and the normalization algorithms of Section 7 / Figure 20.
* :mod:`repro.core.algebra` — query evaluation (Figure 9 and Section 5).
* :mod:`repro.core.planner` — the logical planner: rewrite rules and a cost
  model over query ASTs, shared by all three engines.
* :mod:`repro.core.confidence` — confidence computation and ``possible``
  (Section 6, Figures 17–19).
* :mod:`repro.core.chase` — data cleaning by chasing FDs and EGDs
  (Section 8, Figure 24).
"""

from .chase import (
    Comparison,
    EqualityGeneratingDependency,
    FunctionalDependency,
    chase_uwsdt,
    chase_wsd,
)
from .component import Component, compose_all
from .confidence import (
    certain,
    confidence,
    possible,
    possible_relation,
    possible_with_confidence,
    uwsdt_confidence,
    uwsdt_possible,
    uwsdt_possible_with_confidence,
)
from .decompose import decompose_component, decompose_wsd
from .fields import FieldRef
from .normalize import (
    component_size_histogram,
    compress_components,
    normalize_wsd,
    remove_invalid_tuples,
)
from .planner import Plan, Statistics, plan, plan_for_engine
from .uwsdt import TID, UWSDT
from .wsd import WSD
from .wsdt import WSDT

__all__ = [
    "Comparison",
    "EqualityGeneratingDependency",
    "FunctionalDependency",
    "chase_uwsdt",
    "chase_wsd",
    "Component",
    "compose_all",
    "certain",
    "confidence",
    "possible",
    "possible_relation",
    "possible_with_confidence",
    "uwsdt_confidence",
    "uwsdt_possible",
    "uwsdt_possible_with_confidence",
    "decompose_component",
    "decompose_wsd",
    "FieldRef",
    "component_size_histogram",
    "compress_components",
    "normalize_wsd",
    "remove_invalid_tuples",
    "Plan",
    "Statistics",
    "plan",
    "plan_for_engine",
    "TID",
    "UWSDT",
    "WSD",
    "WSDT",
]
