"""WSD components: the factors of a world-set decomposition.

A component is a relation over a set of *fields* (``R.t.A`` triples); its
rows are the *local worlds* of the component.  In the probabilistic case
every local world carries a probability and the probabilities of one
component sum to one (Section 3, "Modeling Probabilistic Information").

Components support the primitive operations the paper's algorithms are
built from:

* ``ext``       — add a copy of an existing column under a new field name
  (the ``ext(C, A_i, B)`` function of Section 4),
* ``compose``   — relational product of two components with probabilities
  multiplied (the ``compose`` function of Section 4),
* ``propagate_bottom`` — the ``propagate-⊥`` algorithm of Figure 12,
* ``project_away`` / ``restrict`` / ``compress`` — used by projection,
  selection and the normalization algorithms of Figure 20.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..relational.errors import RepresentationError
from ..relational.values import BOTTOM, format_value
from .fields import FieldRef

#: Tolerance used when validating that local-world probabilities sum to one.
PROBABILITY_TOLERANCE = 1e-6


class Component:
    """One factor of a WSD: a relation over fields, with optional probabilities."""

    __slots__ = ("fields", "rows", "probabilities", "_positions")

    def __init__(
        self,
        fields: Sequence[FieldRef],
        rows: Iterable[Sequence[Any]],
        probabilities: Optional[Sequence[float]] = None,
    ) -> None:
        self.fields: Tuple[FieldRef, ...] = tuple(fields)
        if not self.fields:
            raise RepresentationError("a component must cover at least one field")
        if len(set(self.fields)) != len(self.fields):
            raise RepresentationError(f"component fields must be distinct: {self.fields!r}")
        self.rows: List[Tuple[Any, ...]] = [tuple(row) for row in rows]
        if not self.rows:
            raise RepresentationError("a component must have at least one local world")
        for row in self.rows:
            if len(row) != len(self.fields):
                raise RepresentationError(
                    f"local world {row!r} has {len(row)} values, expected {len(self.fields)}"
                )
        if probabilities is None:
            self.probabilities: Optional[List[float]] = None
        else:
            self.probabilities = [float(p) for p in probabilities]
            if len(self.probabilities) != len(self.rows):
                raise RepresentationError("probabilities must parallel the local worlds")
        self._positions: Dict[FieldRef, int] = {f: i for i, f in enumerate(self.fields)}

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def certain(cls, field: FieldRef, value: Any) -> "Component":
        """A singleton component: one field with one certain value."""
        return cls((field,), [(value,)], [1.0])

    @classmethod
    def uniform(cls, field: FieldRef, values: Sequence[Any]) -> "Component":
        """A one-field component whose values are equally likely."""
        values = list(values)
        probability = 1.0 / len(values)
        return cls((field,), [(v,) for v in values], [probability] * len(values))

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #

    @property
    def arity(self) -> int:
        return len(self.fields)

    @property
    def size(self) -> int:
        """Number of local worlds."""
        return len(self.rows)

    @property
    def is_probabilistic(self) -> bool:
        return self.probabilities is not None

    def position(self, field: FieldRef) -> int:
        """Column position of ``field`` in this component."""
        try:
            return self._positions[field]
        except KeyError:
            raise RepresentationError(
                f"field {field.label()} is not defined by this component"
            ) from None

    def has_field(self, field: FieldRef) -> bool:
        return field in self._positions

    def value(self, row_index: int, field: FieldRef) -> Any:
        """Value of ``field`` in local world ``row_index``."""
        return self.rows[row_index][self.position(field)]

    def probability(self, row_index: int) -> float:
        """Probability of local world ``row_index`` (1.0 for non-probabilistic components)."""
        if self.probabilities is None:
            return 1.0
        return self.probabilities[row_index]

    def fields_of_tuple(self, relation: str, tuple_id: Any) -> Tuple[FieldRef, ...]:
        """The fields of this component belonging to one tuple."""
        return tuple(
            f for f in self.fields if f.relation == relation and f.tuple_id == tuple_id
        )

    def tuples_covered(self) -> List[Tuple[str, Any]]:
        """Distinct ``(relation, tuple_id)`` pairs this component touches."""
        seen: List[Tuple[str, Any]] = []
        for field in self.fields:
            key = (field.relation, field.tuple_id)
            if key not in seen:
                seen.append(key)
        return seen

    def validate(self) -> None:
        """Check internal consistency (probability mass, arities)."""
        if self.probabilities is not None:
            total = sum(self.probabilities)
            if abs(total - 1.0) > PROBABILITY_TOLERANCE:
                raise RepresentationError(
                    f"component probabilities sum to {total}, expected 1 "
                    f"(fields {[f.label() for f in self.fields]})"
                )
            if any(p < -PROBABILITY_TOLERANCE for p in self.probabilities):
                raise RepresentationError("component has a negative local-world probability")

    # ------------------------------------------------------------------ #
    # Paper primitives
    # ------------------------------------------------------------------ #

    def ext(self, source: FieldRef, target: FieldRef) -> "Component":
        """Extend with a new column ``target`` that copies column ``source``.

        This is the ``ext(C, A_i, B)`` primitive of Section 4, used by the
        ``copy`` step of every operator in Figure 9.
        """
        if self.has_field(target):
            raise RepresentationError(f"field {target.label()} already defined by component")
        position = self.position(source)
        fields = self.fields + (target,)
        rows = [row + (row[position],) for row in self.rows]
        return Component(fields, rows, self.probabilities)

    def compose(self, other: "Component") -> "Component":
        """Relational product of two components (probabilities multiplied).

        This is the ``compose`` function of Section 4.  The two components
        must define disjoint field sets.
        """
        overlap = set(self.fields) & set(other.fields)
        if overlap:
            raise RepresentationError(
                f"cannot compose components sharing fields {[f.label() for f in overlap]}"
            )
        fields = self.fields + other.fields
        rows: List[Tuple[Any, ...]] = []
        probabilities: Optional[List[float]] = (
            [] if self.is_probabilistic and other.is_probabilistic else None
        )
        for i, left in enumerate(self.rows):
            for j, right in enumerate(other.rows):
                rows.append(left + right)
                if probabilities is not None:
                    probabilities.append(self.probability(i) * other.probability(j))
        return Component(fields, rows, probabilities)

    def propagate_bottom(self) -> "Component":
        """Apply the ``propagate-⊥`` algorithm of Figure 12.

        In every local world, if any field of a tuple is ``⊥``, all fields
        of that tuple defined by this component become ``⊥``.
        """
        tuple_groups: Dict[Tuple[str, Any], List[int]] = {}
        for index, field in enumerate(self.fields):
            tuple_groups.setdefault((field.relation, field.tuple_id), []).append(index)

        new_rows: List[Tuple[Any, ...]] = []
        for row in self.rows:
            values = list(row)
            for positions in tuple_groups.values():
                if any(values[p] is BOTTOM for p in positions):
                    for p in positions:
                        values[p] = BOTTOM
            new_rows.append(tuple(values))
        return Component(self.fields, new_rows, self.probabilities)

    def map_rows(self, transform: Callable[[Tuple[Any, ...]], Tuple[Any, ...]]) -> "Component":
        """Return a component with ``transform`` applied to every local world."""
        return Component(self.fields, [transform(row) for row in self.rows], self.probabilities)

    def set_field_where(
        self, field: FieldRef, value: Any, condition: Callable[[Tuple[Any, ...]], bool]
    ) -> "Component":
        """Set ``field`` to ``value`` in every local world satisfying ``condition``."""
        position = self.position(field)

        def transform(row: Tuple[Any, ...]) -> Tuple[Any, ...]:
            if condition(row):
                values = list(row)
                values[position] = value
                return tuple(values)
            return row

        return self.map_rows(transform)

    def project_away(self, fields: Iterable[FieldRef]) -> Optional["Component"]:
        """Drop the given fields; returns None if no field remains.

        Local worlds that become identical after the drop are merged and
        their probabilities summed (the ``compress`` normalization).
        """
        drop = set(fields)
        keep_positions = [i for i, f in enumerate(self.fields) if f not in drop]
        if not keep_positions:
            return None
        kept_fields = tuple(self.fields[i] for i in keep_positions)
        merged: Dict[Tuple[Any, ...], float] = {}
        order: List[Tuple[Any, ...]] = []
        for index, row in enumerate(self.rows):
            reduced = tuple(row[i] for i in keep_positions)
            if reduced not in merged:
                merged[reduced] = 0.0
                order.append(reduced)
            merged[reduced] += self.probability(index)
        probabilities = [merged[row] for row in order] if self.is_probabilistic else None
        return Component(kept_fields, order, probabilities)

    def rename_fields(self, mapping: Dict[FieldRef, FieldRef]) -> "Component":
        """Rename fields according to ``mapping`` (fields not mentioned stay)."""
        fields = tuple(mapping.get(f, f) for f in self.fields)
        return Component(fields, self.rows, self.probabilities)

    def filter_rows(
        self, keep: Callable[[Tuple[Any, ...]], bool], renormalize: bool = True
    ) -> Optional["Component"]:
        """Keep only the local worlds satisfying ``keep``.

        With ``renormalize=True`` (the chase semantics, Figure 24) the
        probabilities of the surviving local worlds are rescaled to sum to
        one.  Returns None if no local world survives (inconsistency).
        """
        kept_rows: List[Tuple[Any, ...]] = []
        kept_probabilities: List[float] = []
        for index, row in enumerate(self.rows):
            if keep(row):
                kept_rows.append(row)
                kept_probabilities.append(self.probability(index))
        if not kept_rows:
            return None
        if not self.is_probabilistic:
            return Component(self.fields, kept_rows, None)
        if renormalize:
            mass = sum(kept_probabilities)
            if mass <= 0:
                return None
            kept_probabilities = [p / mass for p in kept_probabilities]
        return Component(self.fields, kept_rows, kept_probabilities)

    def compress(self) -> "Component":
        """Merge identical local worlds, summing probabilities (Figure 20, ``compress``)."""
        merged: Dict[Tuple[Any, ...], float] = {}
        order: List[Tuple[Any, ...]] = []
        for index, row in enumerate(self.rows):
            if row not in merged:
                merged[row] = 0.0
                order.append(row)
            merged[row] += self.probability(index)
        probabilities = [merged[row] for row in order] if self.is_probabilistic else None
        return Component(self.fields, order, probabilities)

    def is_certain(self) -> bool:
        """True iff the component has exactly one local world (certain information)."""
        return len(self.rows) == 1

    def column(self, field: FieldRef) -> List[Any]:
        """All values of ``field`` across local worlds (with duplicates)."""
        position = self.position(field)
        return [row[position] for row in self.rows]

    # ------------------------------------------------------------------ #
    # Display and comparison
    # ------------------------------------------------------------------ #

    def to_text(self) -> str:
        """ASCII rendering used by examples, mirroring the paper's figures."""
        headers = [f.label() for f in self.fields]
        if self.is_probabilistic:
            headers.append("P")
        body: List[List[str]] = []
        for index, row in enumerate(self.rows):
            cells = [format_value(v) for v in row]
            if self.is_probabilistic:
                cells.append(f"{self.probability(index):.4g}")
            body.append(cells)
        widths = [max(len(headers[i]), *(len(r[i]) for r in body)) for i in range(len(headers))]
        lines = [
            " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in body
        )
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Component):
            return NotImplemented
        return (
            self.fields == other.fields
            and self.rows == other.rows
            and self.probabilities == other.probabilities
        )

    def __repr__(self) -> str:
        return (
            f"Component({[f.label() for f in self.fields]!r}, {self.size} local worlds)"
        )


def compose_all(components: Sequence[Component]) -> Component:
    """Compose a non-empty sequence of components left to right."""
    if not components:
        raise RepresentationError("compose_all requires at least one component")
    result = components[0]
    for component in components[1:]:
        result = result.compose(component)
    return result
