"""Normalization of (probabilistic) WSDs — the three algorithms of Figure 20.

* ``remove_invalid_tuples`` — a tuple whose fields are ``⊥`` in *every*
  local world of its components appears in no world at all; its fields can
  be dropped from the decomposition entirely (Example 12).
* ``decompose``             — replace each component by its maximal product
  decomposition (delegated to :mod:`repro.core.decompose`).
* ``compress``              — merge identical local worlds of a component,
  summing their probabilities.

``normalize_wsd`` runs all three until a fixpoint is reached, which yields
the minimal equivalent WSD the paper's Section 7 describes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from ..relational.values import BOTTOM
from .component import Component
from .decompose import decompose_wsd
from .fields import FieldRef
from .wsd import WSD


def remove_invalid_tuples(wsd: WSD) -> List[Tuple[str, Any]]:
    """Drop tuples that are absent (``⊥``) in every world; return the dropped ids.

    Mirrors ``remove invalid tuples`` of Figure 20: if some field of a tuple
    has only ``⊥`` values in its component, the tuple occurs in no world,
    so every field of that tuple is projected away and its slot removed.
    """
    invalid: List[Tuple[str, Any]] = []
    for relation_schema in wsd.schema:
        for tuple_id in list(wsd.tuple_ids.get(relation_schema.name, ())):
            if _tuple_is_invalid(wsd, relation_schema.name, tuple_id, relation_schema.attributes):
                invalid.append((relation_schema.name, tuple_id))

    if not invalid:
        return invalid

    invalid_set: Set[Tuple[str, Any]] = set(invalid)
    new_components: List[Component] = []
    for component in wsd.components:
        drop = [
            field
            for field in component.fields
            if (field.relation, field.tuple_id) in invalid_set
        ]
        if not drop:
            new_components.append(component)
            continue
        reduced = component.project_away(drop)
        if reduced is not None:
            new_components.append(reduced)
    for relation_name, tuple_id in invalid:
        wsd.tuple_ids[relation_name] = [
            existing for existing in wsd.tuple_ids[relation_name] if existing != tuple_id
        ]
    wsd.components = new_components
    wsd._rebuild_field_index()
    return invalid


def _tuple_is_invalid(wsd: WSD, relation: str, tuple_id: Any, attributes) -> bool:
    """A tuple is invalid iff some of its fields is ``⊥`` in every local world."""
    for attribute in attributes:
        field = FieldRef(relation, tuple_id, attribute)
        component = wsd.component_for(field)
        if all(value is BOTTOM for value in component.column(field)):
            return True
    return False


def compress_components(wsd: WSD) -> None:
    """Merge identical local worlds in every component (Figure 20, ``compress``)."""
    wsd.components = [component.compress() for component in wsd.components]
    wsd._rebuild_field_index()


def normalize_wsd(wsd: WSD) -> WSD:
    """Run remove-invalid-tuples, compress and decompose to a fixpoint (in place).

    Returns the same ``wsd`` object for chaining convenience.
    """
    while True:
        before = _signature(wsd)
        remove_invalid_tuples(wsd)
        compress_components(wsd)
        decompose_wsd(wsd)
        if _signature(wsd) == before:
            return wsd


def _signature(wsd: WSD) -> Tuple[int, int, int]:
    """Cheap change detector for the normalization fixpoint."""
    return (
        len(wsd.components),
        wsd.representation_size(),
        sum(len(ids) for ids in wsd.tuple_ids.values()),
    )


def component_size_histogram(wsd: WSD) -> Dict[int, int]:
    """Histogram ``arity -> number of components`` (the statistic of Figure 28)."""
    histogram: Dict[int, int] = {}
    for component in wsd.components:
        histogram[component.arity] = histogram.get(component.arity, 0) + 1
    return histogram
