"""World-set decompositions (WSDs): the paper's core representation system.

A WSD represents a finite set of possible worlds as a set of *components*
whose relational product is the world-set relation of the world-set
(Definition 1).  Every field ``R.t.A`` of the inlined schema is defined by
exactly one component; choosing one local world per component and reading
off the field values yields one possible world, whose probability is the
product of the chosen local-world probabilities.

The class below stores

* ``schema``      — the database schema ``Σ`` of the represented worlds,
* ``tuple_ids``   — for every relation the ordered list of tuple positions
  (``|R|max`` entries),
* ``components``  — the list of :class:`~repro.core.component.Component`
  factors, jointly covering every field exactly once.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..relational.database import Database
from ..relational.errors import RepresentationError
from ..relational.relation import Relation
from ..relational.schema import DatabaseSchema, RelationSchema
from ..relational.values import BOTTOM
from ..worlds.orset import OrSetRelation, is_or_set
from ..worlds.tuple_independent import TupleIndependentDatabase
from ..worlds.worldset import WorldSet
from ..worlds.worldset_relation import WorldSetRelation
from .component import Component
from .fields import FieldRef


class WSD:
    """A world-set decomposition over a relational database schema."""

    def __init__(
        self,
        schema: DatabaseSchema,
        tuple_ids: Dict[str, Sequence[Any]],
        components: Iterable[Component],
    ) -> None:
        self.schema = schema
        self.tuple_ids: Dict[str, List[Any]] = {
            name: list(ids) for name, ids in tuple_ids.items()
        }
        self.components: List[Component] = list(components)
        self._field_owner: Dict[FieldRef, int] = {}
        self._revision = 0
        self._rebuild_field_index()
        self._check_coverage()

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #

    def _rebuild_field_index(self) -> None:
        # Every component-surgery path (replace_component(s), drop_relation,
        # the in-place rewrites in wsd_ops) rebuilds this index, so the bump
        # here is what version-keys cached statistics (see
        # repro.core.planner.catalog).
        self._revision += 1
        self._field_owner = {}
        for index, component in enumerate(self.components):
            for field in component.fields:
                if field in self._field_owner:
                    raise RepresentationError(
                        f"field {field.label()} is defined by more than one component"
                    )
                self._field_owner[field] = index

    def _check_coverage(self) -> None:
        for relation_schema in self.schema:
            for tuple_id in self.tuple_ids.get(relation_schema.name, ()):
                for attribute in relation_schema.attributes:
                    field = FieldRef(relation_schema.name, tuple_id, attribute)
                    if field not in self._field_owner:
                        raise RepresentationError(
                            f"field {field.label()} is not covered by any component"
                        )

    def all_fields(self) -> List[FieldRef]:
        """Every field of the inlined schema, in schema order."""
        fields = []
        for relation_schema in self.schema:
            for tuple_id in self.tuple_ids.get(relation_schema.name, ()):
                for attribute in relation_schema.attributes:
                    fields.append(FieldRef(relation_schema.name, tuple_id, attribute))
        return fields

    def component_of(self, field: FieldRef) -> int:
        """Index of the component defining ``field``."""
        try:
            return self._field_owner[field]
        except KeyError:
            raise RepresentationError(f"field {field.label()} is not part of this WSD") from None

    def component_for(self, field: FieldRef) -> Component:
        """The component defining ``field``."""
        return self.components[self.component_of(field)]

    @property
    def revision(self) -> int:
        """Mutation counter over the component structure.

        Bumped whenever components are replaced, merged, extended or a
        relation is added/dropped — any change that could alter which
        fields are certain or what values they take.  Cached statistics
        (samples resolve fields *through* components) key on it.
        """
        return self._revision

    @property
    def is_probabilistic(self) -> bool:
        return all(component.is_probabilistic for component in self.components)

    def world_count(self) -> int:
        """Number of component combinations (upper bound on distinct worlds)."""
        count = 1
        for component in self.components:
            count *= component.size
        return count

    def representation_size(self) -> int:
        """Total number of field values stored across all components."""
        return sum(component.arity * component.size for component in self.components)

    def component_count(self) -> int:
        return len(self.components)

    def validate(self) -> None:
        """Validate every component (probability mass sums to one, etc.)."""
        for component in self.components:
            component.validate()

    def copy(self) -> "WSD":
        """Structural copy (components are immutable in practice, but copied anyway)."""
        return WSD(
            DatabaseSchema(list(self.schema)),
            {name: list(ids) for name, ids in self.tuple_ids.items()},
            [Component(c.fields, c.rows, c.probabilities) for c in self.components],
        )

    # ------------------------------------------------------------------ #
    # Component surgery (used by the query operators and the chase)
    # ------------------------------------------------------------------ #

    def replace_components(self, indices: Sequence[int], replacement: Component) -> None:
        """Replace the components at ``indices`` by a single ``replacement``."""
        index_set = set(indices)
        kept = [c for i, c in enumerate(self.components) if i not in index_set]
        kept.append(replacement)
        self.components = kept
        self._rebuild_field_index()

    def replace_component(self, index: int, replacement: Component) -> None:
        self.components[index] = replacement
        self._rebuild_field_index()

    def merge_components_of(self, fields: Sequence[FieldRef]) -> int:
        """Ensure all ``fields`` live in one component (composing if needed).

        Returns the index of the (possibly new) component.
        """
        indices = sorted({self.component_of(field) for field in fields})
        if len(indices) == 1:
            return indices[0]
        merged = self.components[indices[0]]
        for index in indices[1:]:
            merged = merged.compose(self.components[index])
        self.replace_components(indices, merged)
        return len(self.components) - 1

    def drop_relation(self, relation_name: str) -> None:
        """Remove a relation (and all its fields) from the WSD."""
        if not self.schema.has_relation(relation_name):
            raise RepresentationError(f"relation {relation_name!r} is not part of this WSD")
        drop_fields = {
            field for field in self._field_owner if field.relation == relation_name
        }
        new_components: List[Component] = []
        for component in self.components:
            to_drop = [f for f in component.fields if f in drop_fields]
            if not to_drop:
                new_components.append(component)
                continue
            reduced = component.project_away(to_drop)
            if reduced is not None:
                new_components.append(reduced)
        new_schema = DatabaseSchema(
            relation_schema
            for relation_schema in self.schema
            if relation_schema.name != relation_name
        )
        self.schema = new_schema
        self.tuple_ids.pop(relation_name, None)
        self.components = new_components
        self._rebuild_field_index()

    def restrict_to_relations(self, relation_names: Sequence[str]) -> "WSD":
        """Return a copy containing only the given relations (used after queries)."""
        result = self.copy()
        for name in list(result.schema.relation_names):
            if name not in relation_names:
                result.drop_relation(name)
        return result

    def add_relation(
        self,
        relation_schema: RelationSchema,
        tuple_ids: Sequence[Any],
    ) -> None:
        """Register a new (empty so far) relation; its fields must be added next.

        Callers must immediately extend/attach components covering every field
        of the new relation — the operators in :mod:`repro.core.algebra` do so.
        """
        self.schema.add(relation_schema)
        self.tuple_ids[relation_schema.name] = list(tuple_ids)
        self._revision += 1

    # ------------------------------------------------------------------ #
    # Semantics: rep()
    # ------------------------------------------------------------------ #

    def iterate_worlds(self) -> Iterator[Tuple[Database, Optional[float]]]:
        """Yield ``(database, probability)`` for every component combination.

        Different combinations may yield the same database; callers that
        need set semantics (``rep``) should merge them — :meth:`to_worldset`
        does that and sums probabilities.
        """
        field_lookup: Dict[FieldRef, Tuple[int, int]] = {}
        for component_index, component in enumerate(self.components):
            for column, field in enumerate(component.fields):
                field_lookup[field] = (component_index, column)

        choices = [range(component.size) for component in self.components]
        for combination in itertools.product(*choices):
            probability: Optional[float] = 1.0 if self.is_probabilistic else None
            if probability is not None:
                for component_index, row_index in enumerate(combination):
                    probability *= self.components[component_index].probability(row_index)
            database = Database()
            for relation_schema in self.schema:
                relation = Relation(relation_schema)
                for tuple_id in self.tuple_ids.get(relation_schema.name, ()):
                    values = []
                    for attribute in relation_schema.attributes:
                        field = FieldRef(relation_schema.name, tuple_id, attribute)
                        component_index, column = field_lookup[field]
                        row_index = combination[component_index]
                        values.append(self.components[component_index].rows[row_index][column])
                    if any(value is BOTTOM for value in values):
                        continue
                    relation.insert(tuple(values))
                database.add(relation)
            yield database, probability

    def to_worldset(self, max_worlds: Optional[int] = 1_000_000) -> WorldSet:
        """The ``rep`` function of Definition 2: the represented set of worlds."""
        count = self.world_count()
        if max_worlds is not None and count > max_worlds:
            raise RepresentationError(
                f"WSD represents up to {count} worlds, refusing to expand more than {max_worlds}"
            )
        result = WorldSet()
        for database, probability in self.iterate_worlds():
            result.add(database, probability)
        return result

    # Alias matching the paper's terminology.
    rep = to_worldset

    # ------------------------------------------------------------------ #
    # Constructors from other representation systems
    # ------------------------------------------------------------------ #

    @classmethod
    def from_relation(cls, relation: Relation, probabilistic: bool = True) -> "WSD":
        """A WSD of a single certain relation: one singleton component per field."""
        tuple_ids = list(range(1, len(relation) + 1))
        components: List[Component] = []
        for tuple_id, row in zip(tuple_ids, relation):
            for attribute, value in zip(relation.schema.attributes, row):
                field = FieldRef(relation.schema.name, tuple_id, attribute)
                components.append(
                    Component((field,), [(value,)], [1.0] if probabilistic else None)
                )
        if not components:
            # An empty relation still needs a representable (single) world; use a
            # single padding tuple of ⊥ values so the schema keeps one tuple slot.
            field_list = [
                FieldRef(relation.schema.name, 1, attribute)
                for attribute in relation.schema.attributes
            ]
            components = [
                Component((field,), [(BOTTOM,)], [1.0] if probabilistic else None)
                for field in field_list
            ]
            tuple_ids = [1]
        return cls(
            DatabaseSchema([relation.schema]),
            {relation.schema.name: tuple_ids},
            components,
        )

    @classmethod
    def from_orset_relation(cls, orset: OrSetRelation, probabilistic: bool = True) -> "WSD":
        """Linear encoding of an or-set relation (Example 1): one component per field."""
        return cls.from_orset_relations([orset], probabilistic)

    @classmethod
    def from_orset_relations(
        cls, orsets: Sequence[OrSetRelation], probabilistic: bool = True
    ) -> "WSD":
        """Linear encoding of several or-set relations into one WSD.

        The relations' or-sets are independent of each other, exactly as if
        each had been encoded separately — this is the multi-relation input
        the join queries (and the possible-worlds oracle) work on.
        """
        schema = DatabaseSchema()
        tuple_ids: Dict[str, List[Any]] = {}
        components: List[Component] = []
        for orset in orsets:
            schema.add(orset.schema)
            ids = list(range(1, len(orset.rows) + 1))
            tuple_ids[orset.schema.name] = ids
            for tuple_id, row in zip(ids, orset.rows):
                for attribute, value in zip(orset.schema.attributes, row):
                    field = FieldRef(orset.schema.name, tuple_id, attribute)
                    if is_or_set(value):
                        if value.probabilities is not None:
                            components.append(
                                Component(
                                    (field,),
                                    [(v,) for v in value.values],
                                    list(value.probabilities),
                                )
                            )
                        elif probabilistic:
                            components.append(Component.uniform(field, value.values))
                        else:
                            components.append(
                                Component((field,), [(v,) for v in value.values], None)
                            )
                    else:
                        components.append(
                            Component((field,), [(value,)], [1.0] if probabilistic else None)
                        )
        return cls(schema, tuple_ids, components)

    @classmethod
    def from_tuple_independent(cls, database: TupleIndependentDatabase) -> "WSD":
        """Encoding of a tuple-independent probabilistic database (Figure 7).

        Every uncertain tuple becomes one component with two local worlds:
        the tuple itself (probability ``c``) and the all-``⊥`` tuple
        (probability ``1 − c``).
        """
        schema = DatabaseSchema()
        tuple_ids: Dict[str, List[Any]] = {}
        components: List[Component] = []
        for name, relation in database.relations.items():
            schema.add(relation.schema)
            ids = list(range(1, len(relation) + 1))
            tuple_ids[name] = ids
            for tuple_id, item in zip(ids, relation):
                fields = tuple(
                    FieldRef(name, tuple_id, attribute)
                    for attribute in relation.schema.attributes
                )
                present = tuple(item.values)
                absent = tuple(BOTTOM for _ in fields)
                if item.probability >= 1.0:
                    components.append(Component(fields, [present], [1.0]))
                elif item.probability <= 0.0:
                    components.append(Component(fields, [absent], [1.0]))
                else:
                    components.append(
                        Component(
                            fields,
                            [present, absent],
                            [item.probability, 1.0 - item.probability],
                        )
                    )
        return cls(schema, tuple_ids, components)

    @classmethod
    def from_worldset(cls, worldset: WorldSet) -> "WSD":
        """The 1-WSD of an explicit world-set (Proposition 1).

        The result has a single component whose local worlds are the inlined
        worlds.  Use :func:`repro.core.decompose.decompose_wsd` afterwards to
        obtain the maximal decomposition.
        """
        wide = WorldSetRelation.from_worldset(worldset)
        fields = tuple(
            FieldRef(relation, position + 1, attribute)
            for relation, position, attribute in wide.fields
        )
        probabilities = wide.probabilities
        component = Component(fields, wide.rows, probabilities)
        tuple_ids = {
            name: list(range(1, cardinality + 1))
            for name, cardinality in wide.max_cardinality.items()
        }
        return cls(wide.schema, tuple_ids, [component])

    # ------------------------------------------------------------------ #
    # Display
    # ------------------------------------------------------------------ #

    def to_text(self) -> str:
        """Render all components, separated by the ``×`` of the paper's figures."""
        blocks = [component.to_text() for component in self.components]
        return "\n  ×\n".join(blocks)

    def __repr__(self) -> str:
        return (
            f"WSD({len(self.components)} components, relations {list(self.schema.relation_names)!r})"
        )
