"""Relational algebra natively on UWSDTs — the engine of Section 5.

Each operator extends the input UWSDT with a result relation, touching the
template relation with ordinary relational processing and the component
store only for tuples that actually carry placeholders.  This is what makes
query evaluation on UWSDTs track the one-world evaluation time so closely
in Figure 30: for placeholder densities of 0.005 %–0.1 %, the overwhelming
majority of template tuples never reach the component machinery.

The selection algorithm follows Figure 16: the result template keeps the
tuples that certainly satisfy the condition or have a placeholder on a
referenced attribute; component values violating the condition are removed
(here: marked ``⊥``), and tuples left without any satisfying local world are
dropped from the result template again (lines 4–6 of the figure).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ...relational.errors import RepresentationError, SchemaError
from ...relational.predicates import AttrConst, Predicate
from ...relational.schema import RelationSchema
from ...relational.values import BOTTOM, PLACEHOLDER, is_placeholder
from ..component import Component
from ..fields import FieldRef
from ..uwsdt import TID, UWSDT


# --------------------------------------------------------------------------- #
# Shared helpers
# --------------------------------------------------------------------------- #


def _placeholder_attrs(attributes: Sequence[str], values: Sequence[Any]) -> List[str]:
    return [a for a, v in zip(attributes, values) if is_placeholder(v)]


def _copy_placeholder_fields(
    uwsdt: UWSDT,
    source: str,
    source_tid: Any,
    target: str,
    target_tid: Any,
    attributes: Iterable[str],
) -> None:
    """Extend the owning components with copies ``target.tid.A`` of ``source.tid.A``."""
    for attribute in attributes:
        source_field = FieldRef(source, source_tid, attribute)
        target_field = FieldRef(target, target_tid, attribute)
        cid = uwsdt.component_of(source_field)
        if cid is None:
            raise RepresentationError(
                f"expected a component for placeholder field {source_field.label()}"
            )
        uwsdt.replace_component(cid, uwsdt.components[cid].ext(source_field, target_field))


def _mark_tuple_deleted(
    component: Component, relation: str, tuple_id: Any, row_indices: Sequence[int]
) -> Component:
    """Set every field of ``(relation, tuple_id)`` to ``⊥`` in the given local worlds."""
    positions = [
        index
        for index, field in enumerate(component.fields)
        if field.relation == relation and field.tuple_id == tuple_id
    ]
    target_rows = set(row_indices)
    rows = []
    for index, row in enumerate(component.rows):
        if index in target_rows:
            values = list(row)
            for position in positions:
                values[position] = BOTTOM
            rows.append(tuple(values))
        else:
            rows.append(row)
    return Component(component.fields, rows, component.probabilities)


def _tuple_deleted_everywhere(component: Component, relation: str, tuple_id: Any) -> bool:
    """True iff every local world marks the tuple as deleted (some field ``⊥``)."""
    positions = [
        index
        for index, field in enumerate(component.fields)
        if field.relation == relation and field.tuple_id == tuple_id
    ]
    if not positions:
        return False
    return all(any(row[p] is BOTTOM for p in positions) for row in component.rows)


def _drop_result_tuple(uwsdt: UWSDT, relation: str, tuple_id: Any, attributes: Sequence[str]) -> None:
    """Remove a result tuple from the template and its fields from the components."""
    template = uwsdt.templates[relation]
    tid_position = template.schema.position(TID)
    row_to_remove = None
    for row in template:
        if row[tid_position] == tuple_id:
            row_to_remove = row
            break
    if row_to_remove is not None:
        template.remove(row_to_remove)
    for attribute in attributes:
        field = FieldRef(relation, tuple_id, attribute)
        cid = uwsdt.component_of(field)
        if cid is None:
            continue
        reduced = uwsdt.components[cid].project_away([field])
        if reduced is None:
            uwsdt.remove_component(cid)
        else:
            # Going through replace_component keeps the field map and the
            # per-relation placeholder counts in sync.
            uwsdt.replace_component(cid, reduced)


def _merge_target_components(uwsdt: UWSDT, fields: Sequence[FieldRef]) -> int:
    """Ensure all placeholder ``fields`` live in one component; return its cid."""
    cids = []
    for field in fields:
        cid = uwsdt.component_of(field)
        if cid is None:
            raise RepresentationError(f"field {field.label()} has no component")
        cids.append(cid)
    return uwsdt.merge_components(cids)


# --------------------------------------------------------------------------- #
# Selection
# --------------------------------------------------------------------------- #


def _equality_candidates(uwsdt: UWSDT, source: str, predicate: Predicate):
    """Candidate ``(tuple_id, values)`` rows for an equality selection, or None.

    A pushed-down selection ``σ_{A=c}`` only ever keeps template rows whose
    ``A`` field equals ``c`` or is the ``?`` placeholder, so instead of
    scanning the template it probes the (cached) hash index of Section 5's
    "employing indices" tuning with exactly those two keys.
    """
    if not isinstance(predicate, AttrConst) or predicate.op not in ("=", "=="):
        return None
    try:
        hash(predicate.constant)
    except TypeError:
        return None
    index = uwsdt.template_index(source, predicate.attribute)
    rows = index.lookup(predicate.constant) + index.lookup(PLACEHOLDER)
    tid_position = uwsdt.templates[source].schema.position(TID)
    return [
        (row[tid_position], row[:tid_position] + row[tid_position + 1:]) for row in rows
    ]


def select(uwsdt: UWSDT, source: str, target: str, predicate: Predicate) -> None:
    """Selection ``P := σ_pred(R)`` on a UWSDT (the algorithm of Figure 16, generalized)."""
    source_schema = uwsdt.schema.relation(source)
    for attribute in predicate.attributes():
        source_schema.position(attribute)
    if uwsdt.schema.has_relation(target):
        raise SchemaError(f"relation {target!r} already exists")
    uwsdt.add_relation(RelationSchema(target, source_schema.attributes))

    attributes = source_schema.attributes
    referenced = predicate.attributes()
    referenced_positions = [source_schema.position(a) for a in referenced]
    # Compile the condition once against the referenced-attribute layout: the
    # certain path of Figure 16 is the hot loop on large templates.
    reference_schema = RelationSchema(source, referenced) if referenced else None
    compiled = predicate.compile(reference_schema) if referenced else None

    candidates = _equality_candidates(uwsdt, source, predicate)
    if candidates is None:
        candidates = list(uwsdt.template_rows(source))

    for tuple_id, values in candidates:
        uncertain_refs = [
            a for a, p in zip(referenced, referenced_positions) if is_placeholder(values[p])
        ]
        placeholders = _placeholder_attrs(attributes, values)

        if not uncertain_refs:
            # Line 1 of Figure 16: the condition is decided by the template alone.
            if compiled is not None and not compiled(
                tuple(values[p] for p in referenced_positions)
            ):
                continue
            uwsdt.add_template_tuple(target, tuple_id, values)
            _copy_placeholder_fields(uwsdt, source, tuple_id, target, tuple_id, placeholders)
            continue
        value_map = dict(zip(attributes, values))

        # The condition depends on uncertain fields: keep the tuple and filter
        # its local worlds (lines 2-6 of Figure 16).
        uwsdt.add_template_tuple(target, tuple_id, values)
        _copy_placeholder_fields(uwsdt, source, tuple_id, target, tuple_id, placeholders)
        target_fields = [FieldRef(target, tuple_id, a) for a in uncertain_refs]
        cid = _merge_target_components(uwsdt, target_fields)
        component = uwsdt.components[cid]

        certain_refs = [a for a in referenced if not is_placeholder(value_map[a])]
        pseudo_schema = RelationSchema(target, tuple(referenced))
        failing: List[int] = []
        for row_index, row in enumerate(component.rows):
            assignment: Dict[str, Any] = {a: value_map[a] for a in certain_refs}
            deleted = False
            for field in target_fields:
                value = row[component.position(field)]
                if value is BOTTOM:
                    deleted = True
                    break
                assignment[field.attribute] = value
            if deleted:
                continue
            pseudo_row = tuple(assignment[a] for a in referenced)
            if not predicate.evaluate(pseudo_schema, pseudo_row):
                failing.append(row_index)
        if failing:
            component = _mark_tuple_deleted(component, target, tuple_id, failing)
            component = component.propagate_bottom()
            uwsdt.replace_component(cid, component)
        if _tuple_deleted_everywhere(uwsdt.components[cid], target, tuple_id):
            _drop_result_tuple(uwsdt, target, tuple_id, placeholders)


# --------------------------------------------------------------------------- #
# Projection
# --------------------------------------------------------------------------- #


def project(uwsdt: UWSDT, source: str, target: str, attributes: Sequence[str]) -> None:
    """Projection ``P := π_U(R)`` on a UWSDT.

    Presence information carried by projected-away placeholder fields is
    preserved: it is propagated into a kept placeholder field, or — when all
    kept fields are certain — a kept field is turned into a placeholder whose
    component encodes "value if present, ``⊥`` otherwise" (the "exists
    column" device discussed at the end of Section 4).
    """
    source_schema = uwsdt.schema.relation(source)
    for attribute in attributes:
        source_schema.position(attribute)
    if uwsdt.schema.has_relation(target):
        raise SchemaError(f"relation {target!r} already exists")
    uwsdt.add_relation(RelationSchema(target, tuple(attributes)))

    all_attributes = source_schema.attributes
    dropped = [a for a in all_attributes if a not in attributes]

    for tuple_id, values in list(uwsdt.template_rows(source)):
        value_map = dict(zip(all_attributes, values))
        kept_values = [value_map[a] for a in attributes]
        kept_placeholders = [a for a in attributes if is_placeholder(value_map[a])]
        dropped_placeholders = [a for a in dropped if is_placeholder(value_map[a])]

        # Which dropped placeholder fields may mark the tuple as absent?
        presence_fields: List[FieldRef] = []
        for attribute in dropped_placeholders:
            field = FieldRef(source, tuple_id, attribute)
            cid = uwsdt.component_of(field)
            component = uwsdt.components[cid]
            if any(value is BOTTOM for value in component.column(field)):
                presence_fields.append(field)

        if not presence_fields:
            uwsdt.add_template_tuple(target, tuple_id, kept_values)
            _copy_placeholder_fields(
                uwsdt, source, tuple_id, target, tuple_id, kept_placeholders
            )
            continue

        if kept_placeholders:
            uwsdt.add_template_tuple(target, tuple_id, kept_values)
            _copy_placeholder_fields(
                uwsdt, source, tuple_id, target, tuple_id, kept_placeholders
            )
            target_fields = [FieldRef(target, tuple_id, a) for a in kept_placeholders]
            cids = [uwsdt.component_of(f) for f in target_fields] + [
                uwsdt.component_of(f) for f in presence_fields
            ]
            cid = uwsdt.merge_components(cids)
            component = uwsdt.components[cid]
            presence_positions = [component.position(f) for f in presence_fields]
            absent_rows = [
                index
                for index, row in enumerate(component.rows)
                if any(row[p] is BOTTOM for p in presence_positions)
            ]
            if absent_rows:
                component = _mark_tuple_deleted(component, target, tuple_id, absent_rows)
                component = component.propagate_bottom()
                uwsdt.replace_component(cid, component)
            continue

        # All kept attributes are certain: turn the first kept attribute into a
        # placeholder that encodes tuple presence.
        presence_attr = attributes[0]
        kept_values_with_placeholder = [
            PLACEHOLDER if a == presence_attr else value_map[a] for a in attributes
        ]
        uwsdt.add_template_tuple(target, tuple_id, kept_values_with_placeholder)
        cid = uwsdt.merge_components([uwsdt.component_of(f) for f in presence_fields])
        component = uwsdt.components[cid]
        presence_positions = [component.position(f) for f in presence_fields]
        new_field = FieldRef(target, tuple_id, presence_attr)
        fields = component.fields + (new_field,)
        rows = []
        for row in component.rows:
            absent = any(row[p] is BOTTOM for p in presence_positions)
            rows.append(row + (BOTTOM if absent else value_map[presence_attr],))
        uwsdt.replace_component(cid, Component(fields, rows, component.probabilities))


# --------------------------------------------------------------------------- #
# Renaming, union, product
# --------------------------------------------------------------------------- #


def rename(uwsdt: UWSDT, source: str, target: str, old: str, new: str) -> None:
    """Renaming ``P := δ_{A→A'}(R)`` on a UWSDT."""
    source_schema = uwsdt.schema.relation(source)
    renamed_schema = source_schema.rename_attribute(old, new, target)
    if uwsdt.schema.has_relation(target):
        raise SchemaError(f"relation {target!r} already exists")
    uwsdt.add_relation(renamed_schema)
    for tuple_id, values in list(uwsdt.template_rows(source)):
        uwsdt.add_template_tuple(target, tuple_id, values)
        for attribute, value in zip(source_schema.attributes, values):
            if is_placeholder(value):
                source_field = FieldRef(source, tuple_id, attribute)
                new_attribute = new if attribute == old else attribute
                target_field = FieldRef(target, tuple_id, new_attribute)
                cid = uwsdt.component_of(source_field)
                uwsdt.replace_component(
                    cid, uwsdt.components[cid].ext(source_field, target_field)
                )


def union(uwsdt: UWSDT, left: str, right: str, target: str) -> None:
    """Union ``T := R ∪ S`` on a UWSDT."""
    left_schema = uwsdt.schema.relation(left)
    right_schema = uwsdt.schema.relation(right)
    if left_schema.attributes != right_schema.attributes:
        raise SchemaError("union requires identical attribute lists")
    if uwsdt.schema.has_relation(target):
        raise SchemaError(f"relation {target!r} already exists")
    uwsdt.add_relation(RelationSchema(target, left_schema.attributes))
    for side in (left, right):
        side_schema = uwsdt.schema.relation(side)
        for tuple_id, values in list(uwsdt.template_rows(side)):
            target_tid = (side, tuple_id)
            uwsdt.add_template_tuple(target, target_tid, values)
            placeholders = _placeholder_attrs(side_schema.attributes, values)
            for attribute in placeholders:
                source_field = FieldRef(side, tuple_id, attribute)
                target_field = FieldRef(target, target_tid, attribute)
                cid = uwsdt.component_of(source_field)
                uwsdt.replace_component(
                    cid, uwsdt.components[cid].ext(source_field, target_field)
                )


def product(uwsdt: UWSDT, left: str, right: str, target: str) -> None:
    """Product ``T := R × S`` on a UWSDT (attribute sets must be disjoint)."""
    left_schema = uwsdt.schema.relation(left)
    right_schema = uwsdt.schema.relation(right)
    target_schema = left_schema.concat(right_schema, target)
    if uwsdt.schema.has_relation(target):
        raise SchemaError(f"relation {target!r} already exists")
    uwsdt.add_relation(RelationSchema(target, target_schema.attributes))
    right_rows = list(uwsdt.template_rows(right))
    for left_tid, left_values in list(uwsdt.template_rows(left)):
        left_placeholders = _placeholder_attrs(left_schema.attributes, left_values)
        for right_tid, right_values in right_rows:
            right_placeholders = _placeholder_attrs(right_schema.attributes, right_values)
            target_tid = (left_tid, right_tid)
            uwsdt.add_template_tuple(target, target_tid, tuple(left_values) + tuple(right_values))
            for attribute in left_placeholders:
                source_field = FieldRef(left, left_tid, attribute)
                cid = uwsdt.component_of(source_field)
                uwsdt.replace_component(
                    cid,
                    uwsdt.components[cid].ext(
                        source_field, FieldRef(target, target_tid, attribute)
                    ),
                )
            for attribute in right_placeholders:
                source_field = FieldRef(right, right_tid, attribute)
                cid = uwsdt.component_of(source_field)
                uwsdt.replace_component(
                    cid,
                    uwsdt.components[cid].ext(
                        source_field, FieldRef(target, target_tid, attribute)
                    ),
                )


# --------------------------------------------------------------------------- #
# Equi-join (the operator actually exercised by query Q5)
# --------------------------------------------------------------------------- #


def equi_join(
    uwsdt: UWSDT,
    left: str,
    right: str,
    left_attr: str,
    right_attr: str,
    target: str,
    use_template_index: bool = False,
) -> None:
    """Equi-join ``T := R ⋈_{A=B} S`` on a UWSDT.

    Pairs whose join attributes are both certain are matched with a hash
    join on the templates.  Pairs involving an uncertain join attribute are
    matched against the candidate values stored in the components, and the
    resulting tuple's presence is conditioned on the join values agreeing —
    the composition the paper describes for selections with condition
    ``A θ B``.

    With ``use_template_index=True`` (the executor's index nested-loop
    join), the right side must be a stored relation: instead of scanning
    its template to build an ephemeral hash table, each certain left value
    probes the engine's cached ``template_index`` — the "employing indices"
    tuning of Section 5.  Placeholder right rows are found under the ``?``
    key of the same index.
    """
    left_schema = uwsdt.schema.relation(left)
    right_schema = uwsdt.schema.relation(right)
    target_schema = left_schema.concat(right_schema, target)
    if uwsdt.schema.has_relation(target):
        raise SchemaError(f"relation {target!r} already exists")
    uwsdt.add_relation(RelationSchema(target, target_schema.attributes))

    left_rows = list(uwsdt.template_rows(left))
    right_position = right_schema.position(right_attr)
    left_position = left_schema.position(left_attr)

    right_tid_position = uwsdt.templates[right].schema.position(TID)

    def without_tid(row: Tuple[Any, ...]) -> Tuple[Any, Tuple[Any, ...]]:
        return (
            row[right_tid_position],
            row[:right_tid_position] + row[right_tid_position + 1:],
        )

    def right_candidates(right_tid: Any) -> Set[Any]:
        field = FieldRef(right, right_tid, right_attr)
        component = uwsdt.components[uwsdt.component_of(field)]
        return {v for v in component.column(field) if v is not BOTTOM}

    template_index = None
    certain_index: Dict[Any, List[Tuple[Any, Tuple[Any, ...]]]] = {}
    uncertain_right: List[Tuple[Any, Tuple[Any, ...], Set[Any]]] = []
    if use_template_index:
        template_index = uwsdt.template_index(right, right_attr)
        for row in template_index.lookup(PLACEHOLDER):
            right_tid, right_values = without_tid(row)
            uncertain_right.append((right_tid, right_values, right_candidates(right_tid)))
    else:
        for right_tid, right_values in uwsdt.template_rows(right):
            join_value = right_values[right_position]
            if is_placeholder(join_value):
                uncertain_right.append(
                    (right_tid, right_values, right_candidates(right_tid))
                )
            else:
                certain_index.setdefault(join_value, []).append((right_tid, right_values))

    def probe_certain(value: Any) -> List[Tuple[Any, Tuple[Any, ...]]]:
        if template_index is not None:
            try:
                hash(value)
            except TypeError:
                return []
            return [without_tid(row) for row in template_index.lookup(value)]
        return certain_index.get(value, [])

    def emit(
        left_tid: Any,
        left_values: Tuple[Any, ...],
        right_tid: Any,
        right_values: Tuple[Any, ...],
        must_check: bool,
    ) -> None:
        target_tid = (left_tid, right_tid)
        uwsdt.add_template_tuple(target, target_tid, tuple(left_values) + tuple(right_values))
        left_placeholders = _placeholder_attrs(left_schema.attributes, left_values)
        right_placeholders = _placeholder_attrs(right_schema.attributes, right_values)
        for attribute in left_placeholders:
            source_field = FieldRef(left, left_tid, attribute)
            cid = uwsdt.component_of(source_field)
            uwsdt.replace_component(
                cid,
                uwsdt.components[cid].ext(source_field, FieldRef(target, target_tid, attribute)),
            )
        for attribute in right_placeholders:
            source_field = FieldRef(right, right_tid, attribute)
            cid = uwsdt.component_of(source_field)
            uwsdt.replace_component(
                cid,
                uwsdt.components[cid].ext(source_field, FieldRef(target, target_tid, attribute)),
            )
        if not must_check:
            return
        # Condition the result tuple on the join values agreeing.
        check_fields = []
        if is_placeholder(left_values[left_position]):
            check_fields.append(FieldRef(target, target_tid, left_attr))
        if is_placeholder(right_values[right_position]):
            check_fields.append(FieldRef(target, target_tid, right_attr))
        cid = _merge_target_components(uwsdt, check_fields)
        component = uwsdt.components[cid]
        failing = []
        for row_index, row in enumerate(component.rows):
            values = {}
            deleted = False
            for field in check_fields:
                value = row[component.position(field)]
                if value is BOTTOM:
                    deleted = True
                    break
                values[field.attribute] = value
            if deleted:
                continue
            left_value = values.get(left_attr, left_values[left_position])
            right_value = values.get(right_attr, right_values[right_position])
            if left_value != right_value:
                failing.append(row_index)
        if failing:
            component = _mark_tuple_deleted(component, target, target_tid, failing)
            component = component.propagate_bottom()
            uwsdt.replace_component(cid, component)
        if _tuple_deleted_everywhere(uwsdt.components[cid], target, target_tid):
            placeholders = _placeholder_attrs(
                target_schema.attributes, tuple(left_values) + tuple(right_values)
            )
            _drop_result_tuple(uwsdt, target, target_tid, placeholders)

    for left_tid, left_values in left_rows:
        left_join_value = left_values[left_position]
        if not is_placeholder(left_join_value):
            for right_tid, right_values in probe_certain(left_join_value):
                emit(left_tid, left_values, right_tid, right_values, must_check=False)
            for right_tid, right_values, candidates in uncertain_right:
                if left_join_value in candidates:
                    emit(left_tid, left_values, right_tid, right_values, must_check=True)
        else:
            field = FieldRef(left, left_tid, left_attr)
            component = uwsdt.components[uwsdt.component_of(field)]
            left_candidates = {v for v in component.column(field) if v is not BOTTOM}
            matched_right: Set[Any] = set()
            for value in left_candidates:
                for right_tid, right_values in probe_certain(value):
                    if right_tid in matched_right:
                        continue
                    matched_right.add(right_tid)
                    emit(left_tid, left_values, right_tid, right_values, must_check=True)
            for right_tid, right_values, candidates in uncertain_right:
                if left_candidates & candidates:
                    emit(left_tid, left_values, right_tid, right_values, must_check=True)


# --------------------------------------------------------------------------- #
# Difference
# --------------------------------------------------------------------------- #


def difference(uwsdt: UWSDT, left: str, right: str, target: str) -> None:
    """Difference ``P := R − S`` on a UWSDT.

    As in the paper, this is by far the most expensive operator: pairs of
    possibly-equal tuples force component composition.  Certain/certain
    pairs are resolved on the templates alone.
    """
    left_schema = uwsdt.schema.relation(left)
    right_schema = uwsdt.schema.relation(right)
    if left_schema.attributes != right_schema.attributes:
        raise SchemaError("difference requires identical attribute lists")
    if uwsdt.schema.has_relation(target):
        raise SchemaError(f"relation {target!r} already exists")
    uwsdt.add_relation(RelationSchema(target, left_schema.attributes))
    attributes = left_schema.attributes
    right_rows = list(uwsdt.template_rows(right))

    for left_tid, left_values in list(uwsdt.template_rows(left)):
        left_placeholders = _placeholder_attrs(attributes, left_values)
        # A certain right tuple that is certainly equal removes the left tuple outright.
        certainly_removed = False
        conditional_matches: List[Tuple[Any, Tuple[Any, ...]]] = []
        for right_tid, right_values in right_rows:
            right_placeholders = _placeholder_attrs(attributes, right_values)
            certain_mismatch = any(
                (not is_placeholder(lv)) and (not is_placeholder(rv)) and lv != rv
                for lv, rv in zip(left_values, right_values)
            )
            if certain_mismatch:
                continue
            right_presence_uncertain = _tuple_presence_uncertain(
                uwsdt, right, right_tid, right_placeholders
            )
            if not left_placeholders and not right_placeholders and not right_presence_uncertain:
                certainly_removed = True
                break
            conditional_matches.append((right_tid, right_values))
        if certainly_removed:
            continue

        template_values = list(left_values)
        if not left_placeholders and conditional_matches:
            # The left tuple is fully certain but its membership in the result
            # depends on uncertain right tuples: introduce a presence placeholder
            # (the "exists column" device) on the first attribute.
            presence_attr = attributes[0]
            template_values[attributes.index(presence_attr)] = PLACEHOLDER
            uwsdt.add_template_tuple(target, left_tid, template_values)
            presence_field = FieldRef(target, left_tid, presence_attr)
            uwsdt.new_component(
                Component((presence_field,), [(left_values[attributes.index(presence_attr)],)], [1.0])
            )
            left_placeholders = [presence_attr]
        else:
            uwsdt.add_template_tuple(target, left_tid, template_values)
            _copy_placeholder_fields(uwsdt, left, left_tid, target, left_tid, left_placeholders)
        if not conditional_matches:
            continue

        for right_tid, right_values in conditional_matches:
            right_placeholders = _placeholder_attrs(attributes, right_values)
            target_fields = [FieldRef(target, left_tid, a) for a in left_placeholders]
            right_fields = [FieldRef(right, right_tid, a) for a in right_placeholders]
            involved = target_fields + right_fields
            if not involved:
                # Both tuples fully certain and equal, but the right tuple may be
                # conditionally absent only if it had placeholders — it does not,
                # so the left tuple is removed in all worlds.
                _drop_result_tuple(uwsdt, target, left_tid, left_placeholders)
                break
            cid = _merge_target_components(uwsdt, involved) if involved else None
            component = uwsdt.components[cid]
            failing = []
            for row_index, row in enumerate(component.rows):
                assignment_left = dict(zip(attributes, left_values))
                assignment_right = dict(zip(attributes, right_values))
                deleted = False
                for field in target_fields:
                    value = row[component.position(field)]
                    if value is BOTTOM:
                        deleted = True
                        break
                    assignment_left[field.attribute] = value
                if deleted:
                    continue
                right_present = True
                for field in right_fields:
                    value = row[component.position(field)]
                    if value is BOTTOM:
                        right_present = False
                        break
                    assignment_right[field.attribute] = value
                if not right_present:
                    continue
                if all(assignment_left[a] == assignment_right[a] for a in attributes):
                    failing.append(row_index)
            if failing:
                component = _mark_tuple_deleted(component, target, left_tid, failing)
                component = component.propagate_bottom()
                uwsdt.replace_component(cid, component)
            if target_fields and _tuple_deleted_everywhere(
                uwsdt.components[cid], target, left_tid
            ):
                _drop_result_tuple(uwsdt, target, left_tid, left_placeholders)
                break


def _tuple_presence_uncertain(
    uwsdt: UWSDT, relation: str, tuple_id: Any, placeholders: Sequence[str]
) -> bool:
    """True iff the tuple may be absent in some world (some placeholder can be ``⊥``)."""
    for attribute in placeholders:
        field = FieldRef(relation, tuple_id, attribute)
        cid = uwsdt.component_of(field)
        if cid is None:
            continue
        if any(value is BOTTOM for value in uwsdt.components[cid].column(field)):
            return True
    return False
