"""Query evaluation on world-set decompositions.

* :mod:`repro.core.algebra.wsd_ops`   — the operators of Figure 9 on WSDs.
* :mod:`repro.core.algebra.uwsdt_ops` — the native UWSDT operators of Section 5.
* :mod:`repro.core.algebra.query`     — query ASTs evaluable on databases,
  WSDs and UWSDTs alike.
"""

from . import uwsdt_ops, wsd_ops
from .query import (
    BaseRelation,
    Difference,
    Intersection,
    Join,
    Product,
    Project,
    Query,
    Rename,
    Select,
    Union,
    evaluate_on_database,
    evaluate_on_uwsdt,
    evaluate_on_wsd,
)

__all__ = [
    "uwsdt_ops",
    "wsd_ops",
    "BaseRelation",
    "Difference",
    "Intersection",
    "Join",
    "Product",
    "Project",
    "Query",
    "Rename",
    "Select",
    "Union",
    "evaluate_on_database",
    "evaluate_on_uwsdt",
    "evaluate_on_wsd",
]
