"""Relational algebra query ASTs and their evaluation on all three engines.

A :class:`Query` is a small algebra expression tree (the operators of
Section 2: σ, π, ×, ∪, −, δ, plus an equi-join convenience node).  The same
tree can be evaluated

* on an ordinary :class:`~repro.relational.database.Database` (classical,
  one-world semantics) — used for the naive baseline and the 0 %-density
  runs of Figure 30,
* on a :class:`~repro.core.wsd.WSD` via the operators of Figure 9,
* on a :class:`~repro.core.uwsdt.UWSDT` via the native operators of
  Section 5.

For the WSD/UWSDT engines the query processor ``Q̂`` extends the input
representation with one intermediate relation per operator (so correlations
with the input are preserved) and returns the name of the result relation.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Iterator, List, Optional, Sequence, Tuple

from ...relational import algebra as relational_algebra
from ...relational.database import Database
from ...relational.errors import QueryError
from ...relational.indexes import IndexPool
from ...relational.predicates import AttrConst, Predicate
from ...relational.relation import Relation
from ..uwsdt import UWSDT
from ..wsd import WSD
from . import uwsdt_ops, wsd_ops

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..exec.backends import EngineBackend
    from ..exec.physical import PhysicalPlan
    from ..planner.planner import Plan


class Query:
    """Base class of relational algebra query expressions."""

    # -- convenient combinators -------------------------------------------- #

    def select(self, predicate: Predicate) -> "Select":
        return Select(self, predicate)

    def project(self, attributes: Sequence[str]) -> "Project":
        return Project(self, attributes)

    def product(self, other: "Query") -> "Product":
        return Product(self, other)

    def union(self, other: "Query") -> "Union":
        node = Union(self, other)
        _check_set_operation("∪", self, other, node)
        return node

    def difference(self, other: "Query") -> "Difference":
        node = Difference(self, other)
        _check_set_operation("−", self, other, node)
        return node

    def intersection(self, other: "Query") -> "Intersection":
        node = Intersection(self, other)
        _check_set_operation("∩", self, other, node)
        return node

    def rename(self, old: str, new: str) -> "Rename":
        return Rename(self, old, new)

    def join(self, other: "Query", left_attr: str, right_attr: str) -> "Join":
        return Join(self, other, left_attr, right_attr)

    def children(self) -> Tuple["Query", ...]:
        raise NotImplementedError

    def with_children(self, children: Tuple["Query", ...]) -> "Query":
        """Clone this node with new children (used by the planner's rewrites)."""
        if isinstance(self, BaseRelation):
            return self
        if isinstance(self, Select):
            return Select(children[0], self.predicate)
        if isinstance(self, Project):
            return Project(children[0], self.attributes)
        if isinstance(self, Rename):
            return Rename(children[0], self.old, self.new)
        if isinstance(self, Product):
            return Product(children[0], children[1])
        if isinstance(self, Union):
            return Union(children[0], children[1])
        if isinstance(self, Difference):
            return Difference(children[0], children[1])
        if isinstance(self, Intersection):
            return Intersection(children[0], children[1])
        if isinstance(self, Join):
            return Join(children[0], children[1], self.left_attr, self.right_attr)
        raise TypeError(f"cannot rebuild {self!r}")

    def base_relations(self) -> List[str]:
        """Names of base relations referenced by the query."""
        names: List[str] = []
        for child in self.children():
            for name in child.base_relations():
                if name not in names:
                    names.append(name)
        return names

    # -- rendering --------------------------------------------------------- #

    def node_label(self) -> str:
        """This operator alone, in σ/π/⋈ notation (no children)."""
        raise NotImplementedError

    def to_text(self, indent: str = "") -> str:
        """Multi-line indented rendering of the query tree.

        ``__repr__`` is the compact one-line algebra expression; this is the
        two-dimensional form used by ``Plan.explain()`` and error messages,
        where deep trees are unreadable on a single line.
        """
        lines = [indent + self.node_label()]
        for child in self.children():
            lines.append(child.to_text(indent + "  "))
        return "\n".join(lines)

    def fingerprint(self) -> str:
        """Stable identity of this query's canonical text rendering.

        Two structurally identical trees fingerprint identically, whatever
        object identities built them — the plan-cache key of
        :mod:`repro.service`.  Uses SHA-1 rather than ``hash()`` so the value
        is stable across processes (``PYTHONHASHSEED``) and usable in logs.
        """
        import hashlib

        return hashlib.sha1(self.to_text().encode("utf-8")).hexdigest()[:16]

    # -- planned evaluation ------------------------------------------------ #

    def plan(self, engine: Optional[Any] = None, statistics: Optional[Any] = None) -> "Plan":
        """Build a :class:`~repro.core.planner.Plan` for this query.

        ``engine`` may be a Database, WSD or UWSDT: statistics are served
        from the engine's attached
        :class:`~repro.core.planner.catalog.StatisticsCatalog`, so planning
        a repeated (or similar) query against an unchanged engine performs
        zero sampling work.  Alternatively pass prebuilt ``statistics``.
        With neither, planning runs with default statistics (schema-blind
        rewrites only).
        """
        from ..planner import Statistics, plan as build_plan

        if statistics is None and engine is not None:
            statistics = Statistics.from_engine(
                engine, sample_relations=tuple(self.base_relations())
            )
        return build_plan(self, statistics)

    def _lowered(
        self,
        engine: Any,
        optimize: bool,
        plan: Optional["Plan"],
        force_join: Optional[str] = None,
        backend: Any = None,
        workers: Optional[int] = None,
    ) -> "Tuple[EngineBackend, PhysicalPlan]":
        """Resolve the executable tree and lower it for ``engine``'s backend.

        ``backend`` is the user-facing spec (``"row"`` / ``"columnar"`` /
        ``"sharded"`` / ``"auto"`` / None for the ``REPRO_BACKEND``
        environment variable, or an already-constructed
        :class:`~repro.core.exec.EngineBackend`).  ``workers`` sizes the
        sharded backend's worker pool (and lets ``"auto"`` consider it).
        """
        from ..exec import backend_for, lower, resolve_backend
        from ..planner import Statistics

        backend_for(engine)  # fail fast on unknown engine types (QueryError)
        if plan is None and optimize:
            plan = self.plan(engine)
        if plan is not None:
            executable, statistics = plan.chosen, plan.statistics
        else:
            executable, statistics = self, None
        resolved = resolve_backend(
            engine, backend, query=executable, statistics=statistics, workers=workers
        )
        if statistics is None:
            # Verbatim execution: no sampling, but the backend's cost model
            # still drives structural physical choices.
            statistics = Statistics(engine=resolved.kind)
        return resolved, lower(executable, resolved, statistics, force_join=force_join)

    def physical_plan(
        self,
        engine: Any,
        optimize: bool = True,
        plan: Optional["Plan"] = None,
        force_join: Optional[str] = None,
        backend: Any = None,
        workers: Optional[int] = None,
    ) -> "PhysicalPlan":
        """The :class:`~repro.core.exec.PhysicalPlan` this query would run.

        ``physical_plan(engine).explain()`` shows the chosen physical
        operators (index scans, hash vs index-nested-loop joins) without
        executing anything.
        """
        _, physical = self._lowered(engine, optimize, plan, force_join, backend, workers)
        return physical

    def run(
        self,
        engine: Any,
        result_name: str = "result",
        optimize: bool = True,
        plan: Optional["Plan"] = None,
        collect_metrics: bool = False,
        force_join: Optional[str] = None,
        physical: Optional["PhysicalPlan"] = None,
        backend: Any = None,
        workers: Optional[int] = None,
    ) -> Any:
        """Evaluate this query on any of the three engines.

        * on a :class:`~repro.relational.database.Database` — returns the
          result :class:`~repro.relational.relation.Relation`;
        * on a :class:`~repro.core.wsd.WSD` or :class:`~repro.core.uwsdt.UWSDT`
          — extends the representation in place and returns the name of the
          result relation (the paper's ``Q̂`` convention).

        With ``optimize=True`` (the default) the query is first rewritten by
        the logical planner (selection pushdown, join fusion, join-order
        search, projection pushdown, rename elimination) using statistics
        gathered from the engine; pass a prebuilt ``plan`` to skip
        re-planning, or ``optimize=False`` to execute this AST verbatim.

        Either way the tree is lowered to a
        :class:`~repro.core.exec.PhysicalPlan` and executed through the
        engine's :class:`~repro.core.exec.EngineBackend` — engine-specific
        dispatch lives entirely in :mod:`repro.core.exec`.  With
        ``collect_metrics=True`` the return value is an
        :class:`~repro.core.exec.ExecutionResult` bundling the result with
        per-operator runtime metrics (also folded into the engine's
        statistics catalog as actual-cardinality feedback); ``force_join``
        overrides the hash-vs-index join choice for benchmarking.

        Pass a previously lowered ``physical`` plan (for the same engine
        kind) to skip planning *and* lowering entirely — the plan-cache hit
        path of :mod:`repro.service`.  The caller is responsible for the
        plan's freshness; a stale plan still computes the query it was
        lowered from, just possibly sub-optimally.

        ``backend`` selects the executing backend: ``"row"`` (the engine's
        classical row-at-a-time backend), ``"columnar"`` (vectorized kernels
        over certain subtrees, see :mod:`repro.core.exec.columnar`),
        ``"sharded"`` (component-partitioned parallel execution across a
        worker pool sized by ``workers``, see :mod:`repro.core.exec.shard`),
        ``"auto"`` (cost-based pick once the calibrator has fitted the
        columnar/shard constants), or None to honor the ``REPRO_BACKEND``
        environment variable (default ``"row"``).
        """
        if physical is not None:
            from ..exec import resolve_backend

            backend = resolve_backend(engine, backend, workers=workers)
        else:
            backend, physical = self._lowered(
                engine, optimize, plan, force_join, backend, workers
            )
        value = physical.execute(backend, result_name)
        if collect_metrics:
            from ..exec import ExecutionResult, record_into_catalog

            metrics = physical.metrics()
            record_into_catalog(engine, metrics)
            return ExecutionResult(value, metrics, physical)
        return value

    def explain_analyze(
        self,
        engine: Any,
        result_name: str = "__explain",
        optimize: bool = True,
        backend: Any = None,
        workers: Optional[int] = None,
    ) -> str:
        """Run this query with metrics and render its EXPLAIN ANALYZE report.

        Plans (honoring ``optimize``), executes with metrics collection, and
        returns the physical tree annotated per operator with estimated vs
        actual rows, q-error, per-child input rows and self vs cumulative
        time.  Note the representation-engine convention still applies: on a
        WSD/UWSDT the run *extends* the representation with ``result_name``.
        For cache/feedback provenance, use
        :meth:`repro.service.Session.explain_analyze`, which serves the
        query through the plan cache.
        """
        plan = self.plan(engine) if optimize else None
        result = self.run(
            engine,
            result_name,
            optimize=optimize,
            plan=plan,
            collect_metrics=True,
            backend=backend,
            workers=workers,
        )
        observed = frozenset(plan.statistics.observed) if plan is not None else frozenset()
        header = []
        certainty = None
        if plan is not None:
            model = plan.statistics.cost_model()
            header.append(f"cost model: {model.name} ({model.source} constants)")
            if plan.join_order is not None:
                header.append(f"join order: {plan.join_order}")
            if plan.statistics.placeholder_densities:
                from ...analysis.certainty import CertaintyContext

                certainty = CertaintyContext.from_statistics(plan.statistics)
        return result.physical.explain_analyze(observed, header, certainty)


class BaseRelation(Query):
    """A reference to a stored relation."""

    def __init__(self, name: str) -> None:
        self.name = name

    def children(self) -> Tuple[Query, ...]:
        return ()

    def base_relations(self) -> List[str]:
        return [self.name]

    def node_label(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return self.name


class Select(Query):
    """Selection σ_pred."""

    def __init__(self, child: Query, predicate: Predicate) -> None:
        self.child = child
        self.predicate = predicate

    def children(self) -> Tuple[Query, ...]:
        return (self.child,)

    def node_label(self) -> str:
        return f"σ[{self.predicate!r}]"

    def __repr__(self) -> str:
        return f"σ[{self.predicate!r}]({self.child!r})"


class Project(Query):
    """Projection π_U."""

    def __init__(self, child: Query, attributes: Sequence[str]) -> None:
        self.child = child
        self.attributes = tuple(attributes)

    def children(self) -> Tuple[Query, ...]:
        return (self.child,)

    def node_label(self) -> str:
        return f"π[{', '.join(self.attributes)}]"

    def __repr__(self) -> str:
        return f"π[{', '.join(self.attributes)}]({self.child!r})"


class Product(Query):
    """Cartesian product ×."""

    def __init__(self, left: Query, right: Query) -> None:
        self.left = left
        self.right = right

    def children(self) -> Tuple[Query, ...]:
        return (self.left, self.right)

    def node_label(self) -> str:
        return "×"

    def __repr__(self) -> str:
        return f"({self.left!r} × {self.right!r})"


class Union(Query):
    """Union ∪."""

    def __init__(self, left: Query, right: Query) -> None:
        self.left = left
        self.right = right

    def children(self) -> Tuple[Query, ...]:
        return (self.left, self.right)

    def node_label(self) -> str:
        return "∪"

    def __repr__(self) -> str:
        return f"({self.left!r} ∪ {self.right!r})"


class Difference(Query):
    """Difference −."""

    def __init__(self, left: Query, right: Query) -> None:
        self.left = left
        self.right = right

    def children(self) -> Tuple[Query, ...]:
        return (self.left, self.right)

    def node_label(self) -> str:
        return "−"

    def __repr__(self) -> str:
        return f"({self.left!r} − {self.right!r})"


class Intersection(Query):
    """Intersection ∩ (derived: ``A ∩ B = A − (A − B)``).

    The Database engine evaluates it natively; the representation engines
    evaluate the difference expansion, which is world-by-world equivalent
    and therefore correct on WSDs/UWSDTs by Theorem 1.
    """

    def __init__(self, left: Query, right: Query) -> None:
        self.left = left
        self.right = right

    def children(self) -> Tuple[Query, ...]:
        return (self.left, self.right)

    def expanded(self) -> Difference:
        """The ``A − (A − B)`` form the representation engines evaluate."""
        return Difference(self.left, Difference(self.left, self.right))

    def node_label(self) -> str:
        return "∩"

    def __repr__(self) -> str:
        return f"({self.left!r} ∩ {self.right!r})"


class Rename(Query):
    """Attribute renaming δ_{A→A'}."""

    def __init__(self, child: Query, old: str, new: str) -> None:
        self.child = child
        self.old = old
        self.new = new

    def children(self) -> Tuple[Query, ...]:
        return (self.child,)

    def node_label(self) -> str:
        return f"δ[{self.old}→{self.new}]"

    def __repr__(self) -> str:
        return f"δ[{self.old}→{self.new}]({self.child!r})"


class Join(Query):
    """Equi-join ⋈_{A=B} (a derived operator: product followed by selection)."""

    def __init__(self, left: Query, right: Query, left_attr: str, right_attr: str) -> None:
        self.left = left
        self.right = right
        self.left_attr = left_attr
        self.right_attr = right_attr

    def children(self) -> Tuple[Query, ...]:
        return (self.left, self.right)

    def node_label(self) -> str:
        return f"⋈[{self.left_attr}={self.right_attr}]"

    def __repr__(self) -> str:
        return f"({self.left!r} ⋈[{self.left_attr}={self.right_attr}] {self.right!r})"


def _check_set_operation(operator: str, left: Query, right: Query, node: Query) -> None:
    """Eagerly reject structurally incompatible set operations.

    Called from the ``union``/``difference``/``intersection`` combinators —
    deliberately *not* from the constructors, so the planner's
    ``with_children`` rebuilds never re-validate mid-rewrite.  Raises
    :class:`~repro.analysis.schema.AnalysisError` (a ``SchemaError``) with
    both operand schemas when the attribute lists provably differ.
    """
    # Lazy import: repro.analysis depends on this module.
    from ...analysis.schema import check_set_operation

    check_set_operation(operator, left, right, node)


# --------------------------------------------------------------------------- #
# Evaluation on an ordinary database (one world)
# --------------------------------------------------------------------------- #


def evaluate_on_database(
    query: Query,
    database: Database,
    result_name: str = "result",
    index_pool: Optional[IndexPool] = None,
) -> Relation:
    """Classical evaluation: returns the result relation.

    Pass an :class:`~repro.relational.indexes.IndexPool` to let equality
    selections over base relations probe shared hash indexes (the pool is
    reusable across queries against the same database).
    """
    relation = _evaluate_db(query, database, index_pool)
    return relation.copy(result_name)


def _evaluate_db(query: Query, database: Database, pool: Optional[IndexPool] = None) -> Relation:
    if isinstance(query, BaseRelation):
        return database.relation(query.name)
    if isinstance(query, Select):
        child = _evaluate_db(query.child, database, pool)
        index = None
        if (
            pool is not None
            and isinstance(query.child, BaseRelation)
            and isinstance(query.predicate, AttrConst)
            and query.predicate.op in ("=", "==")
        ):
            index = pool.hash_index(child, (query.predicate.attribute,))
        return relational_algebra.select(child, query.predicate, index=index)
    if isinstance(query, Project):
        return relational_algebra.project(
            _evaluate_db(query.child, database, pool), query.attributes
        )
    if isinstance(query, Product):
        return relational_algebra.product(
            _evaluate_db(query.left, database, pool), _evaluate_db(query.right, database, pool)
        )
    if isinstance(query, Union):
        return relational_algebra.union(
            _evaluate_db(query.left, database, pool), _evaluate_db(query.right, database, pool)
        )
    if isinstance(query, Difference):
        return relational_algebra.difference(
            _evaluate_db(query.left, database, pool), _evaluate_db(query.right, database, pool)
        )
    if isinstance(query, Intersection):
        return relational_algebra.intersection(
            _evaluate_db(query.left, database, pool), _evaluate_db(query.right, database, pool)
        )
    if isinstance(query, Rename):
        return relational_algebra.rename(
            _evaluate_db(query.child, database, pool), query.old, query.new
        )
    if isinstance(query, Join):
        return relational_algebra.equi_join(
            _evaluate_db(query.left, database, pool),
            _evaluate_db(query.right, database, pool),
            query.left_attr,
            query.right_attr,
        )
    raise QueryError(f"unknown query node {query!r}")


# --------------------------------------------------------------------------- #
# Evaluation on WSDs (Figure 9)
# --------------------------------------------------------------------------- #


def _name_generator(prefix: str, schema=None) -> Iterator[str]:
    """Fresh intermediate relation names, skipping any already in ``schema``.

    The skip matters when several queries run against the same (in-place
    extended) representation: each evaluation restarts the counter, and
    ``__q1`` from an earlier run is still part of the schema.
    """
    for index in itertools.count(1):
        name = f"{prefix}{index}"
        if schema is not None and schema.has_relation(name):
            continue
        yield name


def evaluate_on_wsd(query: Query, wsd: WSD, result_name: str = "result") -> str:
    """Evaluate ``query`` on ``wsd`` in place; return the result relation's name.

    The WSD is extended with one relation per operator of the query; the
    final operator's output is named ``result_name``.
    """
    names = _name_generator("__q", wsd.schema)
    final = _evaluate_wsd(query, wsd, names, result_name)
    return final


def _evaluate_wsd(query: Query, wsd: WSD, names: Iterator[str], result_name: Optional[str]) -> str:
    def fresh(child_result: Optional[str] = None) -> str:
        return result_name if result_name is not None else next(names)

    if isinstance(query, BaseRelation):
        if result_name is not None and result_name != query.name:
            wsd_ops.copy_relation(wsd, query.name, result_name)
            return result_name
        return query.name
    if isinstance(query, Select):
        child = _evaluate_wsd(query.child, wsd, names, None)
        target = fresh()
        wsd_ops.select(wsd, child, target, query.predicate)
        return target
    if isinstance(query, Project):
        child = _evaluate_wsd(query.child, wsd, names, None)
        target = fresh()
        wsd_ops.project(wsd, child, target, query.attributes)
        return target
    if isinstance(query, Product):
        left = _evaluate_wsd(query.left, wsd, names, None)
        right = _evaluate_wsd(query.right, wsd, names, None)
        target = fresh()
        wsd_ops.product(wsd, left, right, target)
        return target
    if isinstance(query, Union):
        left = _evaluate_wsd(query.left, wsd, names, None)
        right = _evaluate_wsd(query.right, wsd, names, None)
        if right == left:
            # Union of a relation with itself: tuple ids are derived from the
            # operand names, so alias one side to keep them distinct.
            alias = next(names)
            wsd_ops.copy_relation(wsd, right, alias)
            right = alias
        target = fresh()
        wsd_ops.union(wsd, left, right, target)
        return target
    if isinstance(query, Difference):
        left = _evaluate_wsd(query.left, wsd, names, None)
        right = _evaluate_wsd(query.right, wsd, names, None)
        target = fresh()
        wsd_ops.difference(wsd, left, right, target)
        return target
    if isinstance(query, Intersection):
        return _evaluate_wsd(query.expanded(), wsd, names, result_name)
    if isinstance(query, Rename):
        child = _evaluate_wsd(query.child, wsd, names, None)
        target = fresh()
        wsd_ops.rename(wsd, child, target, query.old, query.new)
        return target
    if isinstance(query, Join):
        left = _evaluate_wsd(query.left, wsd, names, None)
        right = _evaluate_wsd(query.right, wsd, names, None)
        target = fresh()
        wsd_ops.equi_join(wsd, left, right, query.left_attr, query.right_attr, target)
        return target
    raise QueryError(f"unknown query node {query!r}")


# --------------------------------------------------------------------------- #
# Evaluation on UWSDTs (Section 5)
# --------------------------------------------------------------------------- #


def evaluate_on_uwsdt(query: Query, uwsdt: UWSDT, result_name: str = "result") -> str:
    """Evaluate ``query`` on ``uwsdt`` in place; return the result relation's name."""
    names = _name_generator("__q", uwsdt.schema)
    return _evaluate_uwsdt(query, uwsdt, names, result_name)


def _evaluate_uwsdt(
    query: Query, uwsdt: UWSDT, names: Iterator[str], result_name: Optional[str]
) -> str:
    def fresh() -> str:
        return result_name if result_name is not None else next(names)

    if isinstance(query, BaseRelation):
        if result_name is not None and result_name != query.name:
            # Implement copy as a selection with a vacuous predicate-free path.
            uwsdt_ops.rename(
                uwsdt,
                query.name,
                result_name,
                uwsdt.schema.relation(query.name).attributes[0],
                uwsdt.schema.relation(query.name).attributes[0],
            )
            return result_name
        return query.name
    if isinstance(query, Select):
        child = _evaluate_uwsdt(query.child, uwsdt, names, None)
        target = fresh()
        uwsdt_ops.select(uwsdt, child, target, query.predicate)
        return target
    if isinstance(query, Project):
        child = _evaluate_uwsdt(query.child, uwsdt, names, None)
        target = fresh()
        uwsdt_ops.project(uwsdt, child, target, query.attributes)
        return target
    if isinstance(query, Product):
        left = _evaluate_uwsdt(query.left, uwsdt, names, None)
        right = _evaluate_uwsdt(query.right, uwsdt, names, None)
        target = fresh()
        uwsdt_ops.product(uwsdt, left, right, target)
        return target
    if isinstance(query, Union):
        left = _evaluate_uwsdt(query.left, uwsdt, names, None)
        right = _evaluate_uwsdt(query.right, uwsdt, names, None)
        if right == left:
            # Union of a relation with itself: result tuple ids are derived
            # from the operand names, so alias one side first.
            alias = next(names)
            attribute = uwsdt.schema.relation(right).attributes[0]
            uwsdt_ops.rename(uwsdt, right, alias, attribute, attribute)
            right = alias
        target = fresh()
        uwsdt_ops.union(uwsdt, left, right, target)
        return target
    if isinstance(query, Difference):
        left = _evaluate_uwsdt(query.left, uwsdt, names, None)
        right = _evaluate_uwsdt(query.right, uwsdt, names, None)
        target = fresh()
        uwsdt_ops.difference(uwsdt, left, right, target)
        return target
    if isinstance(query, Intersection):
        return _evaluate_uwsdt(query.expanded(), uwsdt, names, result_name)
    if isinstance(query, Rename):
        child = _evaluate_uwsdt(query.child, uwsdt, names, None)
        target = fresh()
        uwsdt_ops.rename(uwsdt, child, target, query.old, query.new)
        return target
    if isinstance(query, Join):
        left = _evaluate_uwsdt(query.left, uwsdt, names, None)
        right = _evaluate_uwsdt(query.right, uwsdt, names, None)
        target = fresh()
        uwsdt_ops.equi_join(uwsdt, left, right, query.left_attr, query.right_attr, target)
        return target
    raise QueryError(f"unknown query node {query!r}")
