"""Relational algebra on WSDs — the algorithms of Figure 9.

Every operator follows the paper's pattern: the input WSD is *extended*
with a result relation (so correlations between the input and the result
are preserved, as required for compositional query evaluation), and the
operator manipulates components via ``ext`` (copy columns), ``compose``
(merge components) and ``propagate-⊥``.

The operators are generalized slightly beyond the figure in one harmless
way: selection conditions may be arbitrary boolean combinations of
``A θ c`` and ``A θ B`` atoms over attributes of a *single* tuple (the
census queries of Figure 29 use conjunctions and disjunctions).  A selection
whose atoms reference a single attribute needs no composition, exactly as
``select[Aθc]``; conditions spanning several attributes compose the
components of the referenced fields first, exactly as ``select[AθB]``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...relational.errors import RepresentationError, SchemaError
from ...relational.indexes import HashIndex
from ...relational.predicates import AttrConst, Predicate
from ...relational.relation import Relation
from ...relational.schema import DatabaseSchema, RelationSchema
from ...relational.values import BOTTOM, is_domain_value
from ..component import Component
from ..fields import FieldRef, product_tuple_id, union_tuple_id
from ..wsd import WSD


def copy_relation(wsd: WSD, source: str, target: str) -> None:
    """``copy(R, P)``: extend the WSD with a relation ``P`` that copies ``R``.

    Every component defining a field ``R.t.A`` is extended by a new column
    ``P.t.A`` with identical values (Section 4).
    """
    source_schema = wsd.schema.relation(source)
    if wsd.schema.has_relation(target):
        raise SchemaError(f"relation {target!r} already exists in the WSD")
    wsd.add_relation(RelationSchema(target, source_schema.attributes), wsd.tuple_ids[source])
    for index, component in enumerate(wsd.components):
        extended = component
        for field in component.fields:
            if field.relation == source:
                extended = extended.ext(field, FieldRef(target, field.tuple_id, field.attribute))
        if extended is not component:
            wsd.replace_component(index, extended)


def _tuple_field_values(
    component: Component, relation: str, tuple_id: Any, row: Tuple[Any, ...]
) -> Dict[str, Any]:
    """Values of the fields of one tuple inside one local world of a component."""
    values: Dict[str, Any] = {}
    for position, field in enumerate(component.fields):
        if field.relation == relation and field.tuple_id == tuple_id:
            values[field.attribute] = row[position]
    return values


def _mark_deleted(component: Component, relation: str, tuple_id: Any, row_indices: Sequence[int]) -> Component:
    """Set all fields of ``(relation, tuple_id)`` to ``⊥`` in the given local worlds."""
    positions = [
        index
        for index, field in enumerate(component.fields)
        if field.relation == relation and field.tuple_id == tuple_id
    ]
    target = set(row_indices)
    new_rows = []
    for index, row in enumerate(component.rows):
        if index in target:
            values = list(row)
            for position in positions:
                values[position] = BOTTOM
            new_rows.append(tuple(values))
        else:
            new_rows.append(row)
    return Component(component.fields, new_rows, component.probabilities)


def _equality_fast_path(wsd: WSD, target: str, predicate: Predicate):
    """Resolve tuples with a *certain* referenced field via a hash-index probe.

    For a pushed-down equality selection ``σ_{A=c}``, a tuple whose ``A``
    field takes the same domain value in every local world is decided by a
    single probe of a :class:`~repro.relational.indexes.HashIndex` built
    over those certain values: matching tuples are kept untouched, the rest
    are marked deleted (``⊥``) wholesale.  Returns the tuple ids whose
    referenced field is genuinely uncertain (they still need the per-local-
    world treatment of Figure 9), or None when the fast path does not apply.
    """
    if not isinstance(predicate, AttrConst) or predicate.op not in ("=", "=="):
        return None
    try:
        hash(predicate.constant)
    except TypeError:
        return None
    attribute = predicate.attribute
    probe = Relation(RelationSchema("__select_probe__", ("TID", "VAL")))
    uncertain = []
    for tuple_id in wsd.tuple_ids[target]:
        field = FieldRef(target, tuple_id, attribute)
        component = wsd.component_for(field)
        column = component.column(field)
        first = column[0] if column else BOTTOM
        if is_domain_value(first) and all(value == first for value in column[1:]):
            probe.insert((tuple_id, first))
        else:
            uncertain.append(tuple_id)
    index = HashIndex(probe, ("VAL",))
    matching = {row[0] for row in index.lookup(predicate.constant)}
    for tuple_id, _ in probe:
        if tuple_id in matching:
            continue
        field = FieldRef(target, tuple_id, attribute)
        component_index = wsd.component_of(field)
        component = wsd.components[component_index]
        component = _mark_deleted(component, target, tuple_id, range(component.size))
        wsd.replace_component(component_index, component.propagate_bottom())
    return uncertain


def select(wsd: WSD, source: str, target: str, predicate: Predicate) -> None:
    """Selection ``P := σ_pred(R)`` on a WSD (Figure 9, both selection variants).

    ``predicate`` may reference several attributes of ``R``; the referenced
    fields of each tuple are brought into one component (composing if they
    are spread over several), then local worlds violating the condition get
    the tuple marked as deleted (``⊥``), followed by ``propagate-⊥``.
    """
    source_schema = wsd.schema.relation(source)
    for attribute in predicate.attributes():
        source_schema.position(attribute)

    copy_relation(wsd, source, target)
    referenced = predicate.attributes()
    remaining = _equality_fast_path(wsd, target, predicate)
    if remaining is None:
        remaining = wsd.tuple_ids[target]
    for tuple_id in remaining:
        fields = [FieldRef(target, tuple_id, attribute) for attribute in referenced]
        component_index = wsd.merge_components_of(fields)
        component = wsd.components[component_index]

        failing: List[int] = []
        for row_index, row in enumerate(component.rows):
            values = _tuple_field_values(component, target, tuple_id, row)
            pseudo_schema = RelationSchema(target, tuple(values.keys()) or ("__dummy__",))
            if not values:
                continue
            pseudo_row = tuple(values[a] for a in pseudo_schema.attributes)
            if any(value is BOTTOM for value in pseudo_row):
                continue
            if not predicate.evaluate(pseudo_schema, pseudo_row):
                failing.append(row_index)
        if failing:
            component = _mark_deleted(component, target, tuple_id, failing)
            component = component.propagate_bottom()
            wsd.replace_component(component_index, component)


def project(wsd: WSD, source: str, target: str, attributes: Sequence[str]) -> None:
    """Projection ``P := π_U(R)`` on a WSD (Figure 9).

    Before dropping the fields not in ``U``, tuple-presence information
    (``⊥`` values) carried by those fields is propagated into the kept
    fields, composing components where necessary (Example 10).
    """
    source_schema = wsd.schema.relation(source)
    for attribute in attributes:
        source_schema.position(attribute)

    copy_relation(wsd, source, target)
    kept = list(attributes)
    dropped = [a for a in source_schema.attributes if a not in kept]

    for tuple_id in wsd.tuple_ids[target]:
        dropped_with_bottom = []
        for attribute in dropped:
            field = FieldRef(target, tuple_id, attribute)
            component = wsd.component_for(field)
            if any(value is BOTTOM for value in component.column(field)):
                dropped_with_bottom.append(field)
        if dropped_with_bottom:
            kept_fields = [FieldRef(target, tuple_id, attribute) for attribute in kept]
            component_index = wsd.merge_components_of(kept_fields + dropped_with_bottom)
            component = wsd.components[component_index].propagate_bottom()
            wsd.replace_component(component_index, component)

    # Drop the non-projected fields from all components.
    drop_fields = {
        FieldRef(target, tuple_id, attribute)
        for tuple_id in wsd.tuple_ids[target]
        for attribute in dropped
    }
    new_components: List[Component] = []
    for component in wsd.components:
        to_drop = [field for field in component.fields if field in drop_fields]
        if not to_drop:
            new_components.append(component)
            continue
        reduced = component.project_away(to_drop)
        if reduced is not None:
            new_components.append(reduced)
    wsd.components = new_components
    # Adjust the schema of the target relation.
    wsd.schema = DatabaseSchema(
        RelationSchema(target, tuple(kept)) if rs.name == target else rs for rs in wsd.schema
    )
    wsd._rebuild_field_index()


def product(wsd: WSD, left: str, right: str, target: str) -> None:
    """Product ``T := R × S`` on a WSD (Figure 9).

    Every component holding a field of ``R.t_i`` is extended with one copy
    per tuple ``t_j`` of ``S`` (and symmetrically), producing fields
    ``T.t_ij.A``.
    """
    left_schema = wsd.schema.relation(left)
    right_schema = wsd.schema.relation(right)
    overlap = set(left_schema.attributes) & set(right_schema.attributes)
    if overlap:
        raise SchemaError(f"product requires disjoint attributes, both sides have {sorted(overlap)!r}")

    target_ids = [
        product_tuple_id(i, j) for i in wsd.tuple_ids[left] for j in wsd.tuple_ids[right]
    ]
    wsd.add_relation(
        RelationSchema(target, left_schema.attributes + right_schema.attributes), target_ids
    )

    for index, component in enumerate(wsd.components):
        extended = component
        for field in component.fields:
            if field.relation == left:
                for j in wsd.tuple_ids[right]:
                    extended = extended.ext(
                        field, FieldRef(target, product_tuple_id(field.tuple_id, j), field.attribute)
                    )
            elif field.relation == right:
                for i in wsd.tuple_ids[left]:
                    extended = extended.ext(
                        field, FieldRef(target, product_tuple_id(i, field.tuple_id), field.attribute)
                    )
        if extended is not component:
            wsd.replace_component(index, extended)

    # Note: a product tuple t_ij is absent from a world as soon as *any* of
    # its fields is ⊥, so copying ⊥ values from either operand already
    # encodes "present only if both operands are present"; no component
    # composition is needed here (it is performed lazily by projection).


def equi_join(wsd: WSD, left: str, right: str, left_attr: str, right_attr: str, target: str) -> None:
    """Equi-join ``T := R ⋈_{A=B} S`` natively on a WSD.

    The derived-operator expansion (product, then selection) extends every
    component once per *pair* of tuples — quadratic even when almost no pair
    can ever join.  This operator creates result slots only for pairs whose
    join fields share at least one possible domain value: certain/certain
    pairs are matched with a hash index, pairs involving an uncertain join
    field are matched on candidate-set overlap and then conditioned on the
    join values actually agreeing (compose + mark-deleted + ``propagate-⊥``,
    the ``select[AθB]`` machinery of Figure 9).

    Tuple-presence composition is inherited from the product argument: a
    result tuple is absent from a world as soon as any copied field is
    ``⊥``, so copying the operand columns already encodes "present only if
    both operands are present".
    """
    left_schema = wsd.schema.relation(left)
    right_schema = wsd.schema.relation(right)
    overlap = set(left_schema.attributes) & set(right_schema.attributes)
    if overlap:
        raise SchemaError(
            f"equi-join requires disjoint attributes, both sides have {sorted(overlap)!r}"
        )
    left_schema.position(left_attr)
    right_schema.position(right_attr)
    if wsd.schema.has_relation(target):
        raise SchemaError(f"relation {target!r} already exists in the WSD")

    def candidates(relation: str, tuple_id: Any, attribute: str) -> frozenset:
        field = FieldRef(relation, tuple_id, attribute)
        column = wsd.component_for(field).column(field)
        return frozenset(value for value in column if value is not BOTTOM)

    certain_probe = Relation(RelationSchema("__join_probe__", ("TID", "VAL")))
    uncertain_right: List[Tuple[Any, frozenset]] = []
    for j in wsd.tuple_ids[right]:
        right_candidates = candidates(right, j, right_attr)
        if not right_candidates:
            continue  # deleted in every world: can never join
        if len(right_candidates) == 1:
            certain_probe.insert((j, next(iter(right_candidates))))
        else:
            uncertain_right.append((j, right_candidates))
    certain_index = HashIndex(certain_probe, ("VAL",))

    #: Matched pairs; ``must_check`` marks pairs whose join values can differ.
    pairs: List[Tuple[Any, Any, bool]] = []
    for i in wsd.tuple_ids[left]:
        left_candidates = candidates(left, i, left_attr)
        if not left_candidates:
            continue
        left_certain = len(left_candidates) == 1
        matched: set = set()
        for value in left_candidates:
            for j, _ in certain_index.lookup(value):
                if j not in matched:
                    matched.add(j)
                    pairs.append((i, j, not left_certain))
        for j, right_candidates in uncertain_right:
            if left_candidates & right_candidates:
                pairs.append((i, j, True))

    target_ids = [product_tuple_id(i, j) for i, j, _ in pairs]
    wsd.add_relation(
        RelationSchema(target, left_schema.attributes + right_schema.attributes), target_ids
    )

    pairs_by_left: Dict[Any, List[Any]] = {}
    pairs_by_right: Dict[Any, List[Any]] = {}
    for i, j, _ in pairs:
        tuple_id = product_tuple_id(i, j)
        pairs_by_left.setdefault(i, []).append(tuple_id)
        pairs_by_right.setdefault(j, []).append(tuple_id)

    for index, component in enumerate(wsd.components):
        extended = component
        for field in component.fields:
            if field.relation == left:
                for tuple_id in pairs_by_left.get(field.tuple_id, ()):
                    extended = extended.ext(field, FieldRef(target, tuple_id, field.attribute))
            elif field.relation == right:
                for tuple_id in pairs_by_right.get(field.tuple_id, ()):
                    extended = extended.ext(field, FieldRef(target, tuple_id, field.attribute))
        if extended is not component:
            wsd.replace_component(index, extended)

    # Condition pairs with uncertain join fields on the values agreeing.
    for i, j, must_check in pairs:
        if not must_check:
            continue
        tuple_id = product_tuple_id(i, j)
        left_field = FieldRef(target, tuple_id, left_attr)
        right_field = FieldRef(target, tuple_id, right_attr)
        component_index = wsd.merge_components_of([left_field, right_field])
        component = wsd.components[component_index]
        left_position = component.position(left_field)
        right_position = component.position(right_field)
        failing = [
            row_index
            for row_index, row in enumerate(component.rows)
            if row[left_position] is not BOTTOM
            and row[right_position] is not BOTTOM
            and row[left_position] != row[right_position]
        ]
        if failing:
            component = _mark_deleted(component, target, tuple_id, failing)
            wsd.replace_component(component_index, component.propagate_bottom())


def union(wsd: WSD, left: str, right: str, target: str) -> None:
    """Union ``T := R ∪ S`` on a WSD (Figure 9)."""
    left_schema = wsd.schema.relation(left)
    right_schema = wsd.schema.relation(right)
    if left_schema.attributes != right_schema.attributes:
        raise SchemaError(
            f"union requires identical attribute lists, got {left_schema.attributes!r} "
            f"and {right_schema.attributes!r}"
        )
    target_ids = [union_tuple_id(left, i) for i in wsd.tuple_ids[left]] + [
        union_tuple_id(right, j) for j in wsd.tuple_ids[right]
    ]
    wsd.add_relation(RelationSchema(target, left_schema.attributes), target_ids)
    for index, component in enumerate(wsd.components):
        extended = component
        for field in component.fields:
            if field.relation == left:
                extended = extended.ext(
                    field, FieldRef(target, union_tuple_id(left, field.tuple_id), field.attribute)
                )
            elif field.relation == right:
                extended = extended.ext(
                    field, FieldRef(target, union_tuple_id(right, field.tuple_id), field.attribute)
                )
        if extended is not component:
            wsd.replace_component(index, extended)


def rename(wsd: WSD, source: str, target: str, old: str, new: str) -> None:
    """Renaming ``P := δ_{A→A'}(R)`` on a WSD (Figure 9)."""
    copy_relation(wsd, source, target)
    mapping: Dict[FieldRef, FieldRef] = {}
    for tuple_id in wsd.tuple_ids[target]:
        mapping[FieldRef(target, tuple_id, old)] = FieldRef(target, tuple_id, new)
    wsd.components = [component.rename_fields(mapping) for component in wsd.components]
    wsd.schema = DatabaseSchema(
        rs.rename_attribute(old, new) if rs.name == target else rs for rs in wsd.schema
    )
    wsd._rebuild_field_index()


def difference(wsd: WSD, left: str, right: str, target: str) -> None:
    """Difference ``P := R − S`` on a WSD (Figure 9).

    For every pair of tuples ``(t_i of P, t_j of S)`` the components holding
    their fields are composed; in local worlds where the two tuples agree on
    every attribute (and the ``S`` tuple is present), the ``P`` tuple is
    marked deleted.
    """
    left_schema = wsd.schema.relation(left)
    right_schema = wsd.schema.relation(right)
    if left_schema.attributes != right_schema.attributes:
        raise SchemaError(
            f"difference requires identical attribute lists, got {left_schema.attributes!r} "
            f"and {right_schema.attributes!r}"
        )
    copy_relation(wsd, left, target)
    attributes = left_schema.attributes
    for i in wsd.tuple_ids[target]:
        for j in wsd.tuple_ids[right]:
            fields = [FieldRef(target, i, a) for a in attributes] + [
                FieldRef(right, j, a) for a in attributes
            ]
            component_index = wsd.merge_components_of(fields)
            component = wsd.components[component_index]
            failing: List[int] = []
            for row_index, row in enumerate(component.rows):
                target_values = _tuple_field_values(component, target, i, row)
                right_values = _tuple_field_values(component, right, j, row)
                if any(value is BOTTOM for value in right_values.values()):
                    continue
                if any(value is BOTTOM for value in target_values.values()):
                    continue
                if all(target_values[a] == right_values[a] for a in attributes):
                    failing.append(row_index)
            if failing:
                component = _mark_deleted(component, target, i, failing)
                component = component.propagate_bottom()
            wsd.replace_component(component_index, component)
