"""Columnar vectorized execution over certain (placeholder-free) subtrees.

A :class:`ColumnBatch` holds the rows of a Database relation or a UWSDT
template in parallel per-attribute arrays, plus a per-attribute placeholder
bitmap and a row-id column carrying provenance (Database row positions,
UWSDT template tuple ids).  Vectorized kernels implement Filter / Project /
Rename / HashJoin / Union / Difference / Intersection column-at-a-time over
batches — no per-operator ``Relation`` construction, no per-row hash-set
deduplication until the batch leaves the columnar region.

:class:`ColumnarBackend` wraps the engine's row backend
(:class:`~repro.core.exec.backends.DatabaseBackend` or
:class:`~repro.core.exec.backends.UWSDTBackend`) and adds two boundary
operators, mirroring the Transfer-marker idea:

* ``materialize``  — row handle → batch (the vectorized scan).  On a UWSDT
  it reads ``template_rows``; if the relation turns out to carry
  placeholders *at execution time* (the plan may be cached from before an
  update) it passes the row handle through unchanged and the downstream
  kernels transparently delegate to the row backend.
* ``dematerialize`` — batch → row handle.  On a Database this registers a
  :class:`~repro.relational.relation.Relation` (whose insert-time dedup
  restores set semantics over the kernels' bag output); on a UWSDT it adds
  a certain template relation, one tuple per batch row under its batch
  row id.

:func:`insert_columnar_boundaries` is the lowering pass that decides where
the boundaries go: an operator runs columnar exactly when it has a kernel
and every base relation under it is certain.  Everything else — Product,
IndexNestedLoopJoin, any subtree touching a placeholder-bearing template —
runs row-at-a-time, and mixed plans stitch the two regions together with
explicit ``Materialize`` / ``Dematerialize`` nodes.

:func:`resolve_backend` maps the user-facing backend spec (``"row"`` /
``"columnar"`` / ``"auto"``, or the ``REPRO_BACKEND`` environment variable)
to a concrete backend, with the auto pick deferring to the calibrated cost
models once the calibrator has fitted the columnar constants.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...relational.errors import QueryError
from ...relational.relation import Relation
from ...relational.schema import RelationSchema
from ...relational.predicates import Predicate
from ...relational.values import is_placeholder
from ..planner.cost import CostModel, Statistics, estimate
from .backends import DatabaseBackend, EngineBackend, UWSDTBackend, backend_for
from .physical import (
    Dematerialize,
    IndexNestedLoopJoin,
    Materialize,
    PhysicalOperator,
)

#: Environment variable selecting the default backend spec for ``Query.run``.
BACKEND_ENV = "REPRO_BACKEND"

#: Environment variable with the default worker count for ``backend="sharded"``.
SHARD_WORKERS_ENV = "REPRO_SHARD_WORKERS"

#: The specs ``Query.run(backend=...)`` / ``REPRO_BACKEND`` accept.
BACKEND_SPECS = ("row", "columnar", "sharded", "auto")

#: Physical operators with a vectorized kernel.  ``Scan`` is deliberately
#: absent: ``Materialize(Scan)`` *is* the vectorized scan — the batch is
#: built straight from the stored rows / template rows.
COLUMNAR_KERNEL_OPS = frozenset(
    {"Filter", "Project", "Rename", "HashJoin", "Union", "Difference", "Intersection"}
)


class ColumnBatch:
    """Rows decomposed into parallel per-attribute arrays.

    ``columns[i][r]`` is the value of attribute ``attributes[i]`` in row
    ``r`` — raw values, *including* the ``?`` placeholder sentinel, so a
    round trip through :meth:`from_rows` / :meth:`to_rows` is exact.
    ``placeholder_masks[i][r]`` flags the ``?``-bearing slots (cheap
    uncertainty checks without value comparisons), and ``row_ids[r]``
    carries provenance: the row's position for Database relations, the
    template tuple id for UWSDTs, and kernel-composed pairs downstream.
    """

    __slots__ = ("attributes", "columns", "placeholder_masks", "row_ids")

    def __init__(
        self,
        attributes: Sequence[str],
        columns: Sequence[List[Any]],
        placeholder_masks: Sequence[List[bool]],
        row_ids: List[Any],
    ) -> None:
        self.attributes = tuple(attributes)
        self.columns = tuple(columns)
        self.placeholder_masks = tuple(placeholder_masks)
        self.row_ids = row_ids

    @classmethod
    def from_rows(
        cls,
        attributes: Sequence[str],
        rows: Sequence[Tuple[Any, ...]],
        row_ids: Optional[List[Any]] = None,
    ) -> "ColumnBatch":
        attributes = tuple(attributes)
        columns: List[List[Any]] = [[] for _ in attributes]
        masks: List[List[bool]] = [[] for _ in attributes]
        for row in rows:
            for position, value in enumerate(row):
                columns[position].append(value)
                masks[position].append(is_placeholder(value))
        if row_ids is None:
            row_ids = list(range(len(columns[0]) if columns else len(rows)))
        return cls(attributes, columns, masks, row_ids)

    def to_rows(self) -> List[Tuple[Any, ...]]:
        """Rows in batch order, duplicates and placeholders preserved."""
        if not self.columns:
            return [() for _ in self.row_ids]
        return list(zip(*self.columns))

    def __len__(self) -> int:
        return len(self.row_ids)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    @property
    def placeholder_count(self) -> int:
        return sum(sum(mask) for mask in self.placeholder_masks)

    def has_placeholders(self) -> bool:
        return any(any(mask) for mask in self.placeholder_masks)

    def position(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise QueryError(
                f"batch has no attribute {attribute!r} (schema {self.attributes})"
            ) from None

    def gather(self, indices: Sequence[int]) -> "ColumnBatch":
        """A new batch selecting the given row positions, in order."""
        columns = [[column[i] for i in indices] for column in self.columns]
        masks = [[mask[i] for i in indices] for mask in self.placeholder_masks]
        return ColumnBatch(self.attributes, columns, masks, [self.row_ids[i] for i in indices])

    def __repr__(self) -> str:
        return f"ColumnBatch({self.attributes!r}, {len(self)} rows)"


# --------------------------------------------------------------------------- #
# Vectorized kernels (bag semantics; dedup happens at dematerialize)
# --------------------------------------------------------------------------- #


def filter_batch(batch: ColumnBatch, predicate: Predicate) -> ColumnBatch:
    """σ_pred: keep rows satisfying the predicate, ids preserved."""
    referenced = predicate.attributes()
    if not referenced:
        schema = RelationSchema("__batch", batch.attributes)
        rows = batch.to_rows()
        keep = [i for i, row in enumerate(rows) if predicate.evaluate(schema, row)]
        return batch.gather(keep)
    positions = [batch.position(a) for a in referenced]
    compiled = predicate.compile(RelationSchema("__batch", referenced))
    referenced_columns = [batch.columns[p] for p in positions]
    keep = [i for i, row in enumerate(zip(*referenced_columns)) if compiled(row)]
    return batch.gather(keep)


def project_batch(batch: ColumnBatch, attributes: Sequence[str]) -> ColumnBatch:
    """π_U: reorder/drop columns; rows (and duplicates) survive until dedup."""
    positions = [batch.position(a) for a in attributes]
    return ColumnBatch(
        tuple(attributes),
        [batch.columns[p] for p in positions],
        [batch.placeholder_masks[p] for p in positions],
        batch.row_ids,
    )


def rename_batch(batch: ColumnBatch, old: str, new: str) -> ColumnBatch:
    """δ: relabel one column; the arrays are shared, not copied."""
    batch.position(old)  # validate
    attributes = tuple(new if a == old else a for a in batch.attributes)
    return ColumnBatch(attributes, batch.columns, batch.placeholder_masks, batch.row_ids)


def union_batch(left: ColumnBatch, right: ColumnBatch) -> ColumnBatch:
    """∪ as column concatenation; side-tagged ids keep provenance distinct
    even for a union of a batch with itself."""
    _require_same_attributes("union", left, right)
    columns = [lc + rc for lc, rc in zip(left.columns, right.columns)]
    masks = [lm + rm for lm, rm in zip(left.placeholder_masks, right.placeholder_masks)]
    row_ids = [(0, rid) for rid in left.row_ids] + [(1, rid) for rid in right.row_ids]
    return ColumnBatch(left.attributes, columns, masks, row_ids)


def difference_batch(left: ColumnBatch, right: ColumnBatch) -> ColumnBatch:
    """−: keep left rows whose value tuple does not occur on the right."""
    _require_same_attributes("difference", left, right)
    right_rows = set(right.to_rows())
    keep = [i for i, row in enumerate(left.to_rows()) if row not in right_rows]
    return left.gather(keep)


def intersection_batch(left: ColumnBatch, right: ColumnBatch) -> ColumnBatch:
    """∩: keep left rows whose value tuple occurs on the right."""
    _require_same_attributes("intersection", left, right)
    right_rows = set(right.to_rows())
    keep = [i for i, row in enumerate(left.to_rows()) if row in right_rows]
    return left.gather(keep)


def hash_join_batch(
    left: ColumnBatch, right: ColumnBatch, left_attr: str, right_attr: str
) -> ColumnBatch:
    """Equi-join: build on the right key column, probe the left key column.

    Output ids are ``(left id, right id)`` pairs, matching the row
    backends' provenance convention for join results.
    """
    build: Dict[Any, List[int]] = {}
    for index, value in enumerate(right.columns[right.position(right_attr)]):
        build.setdefault(value, []).append(index)
    left_indices: List[int] = []
    right_indices: List[int] = []
    for index, value in enumerate(left.columns[left.position(left_attr)]):
        for match in build.get(value, ()):
            left_indices.append(index)
            right_indices.append(match)
    columns = [[column[i] for i in left_indices] for column in left.columns]
    columns += [[column[i] for i in right_indices] for column in right.columns]
    masks = [[mask[i] for i in left_indices] for mask in left.placeholder_masks]
    masks += [[mask[i] for i in right_indices] for mask in right.placeholder_masks]
    row_ids = [
        (left.row_ids[li], right.row_ids[ri])
        for li, ri in zip(left_indices, right_indices)
    ]
    return ColumnBatch(left.attributes + right.attributes, columns, masks, row_ids)


def _require_same_attributes(operator: str, left: ColumnBatch, right: ColumnBatch) -> None:
    if left.attributes != right.attributes:
        raise QueryError(
            f"columnar {operator} requires identical attribute lists; "
            f"got {left.attributes} and {right.attributes}"
        )


# --------------------------------------------------------------------------- #
# The backend
# --------------------------------------------------------------------------- #


class ColumnarBackend(EngineBackend):
    """Vectorized execution wrapping the engine's row backend.

    Handles are *either* :class:`ColumnBatch` objects (inside a columnar
    region) or the inner backend's row handles (outside).  Every operator
    method is handle-polymorphic: batch inputs run the kernel, anything
    else delegates to the row backend — so a plan whose materialize
    boundary fell back at runtime (placeholders appeared after planning)
    still executes correctly, just row-at-a-time.
    """

    kind = "columnar"

    def __init__(self, engine: Any) -> None:
        super().__init__(engine)
        inner = backend_for(engine)
        if not isinstance(inner, (DatabaseBackend, UWSDTBackend)):
            raise QueryError(
                f"the columnar backend cannot wrap a {inner.kind!r} engine; "
                "use backend='row' (WSD fields resolve through components)"
            )
        self.inner = inner
        self.supports_index_scan = inner.supports_index_scan
        self.supports_index_join = inner.supports_index_join
        self.native_intersection = inner.native_intersection

    # -- lifecycle --------------------------------------------------------- #

    def begin(self, result_name: str) -> None:
        self.inner.begin(result_name)

    def finish(self, handle, result_name: str):
        if isinstance(handle, ColumnBatch):
            handle = self.dematerialize(handle, result_name)
        return self.inner.finish(handle, result_name)

    # -- boundaries -------------------------------------------------------- #

    def certain_base(self, relation_name: str) -> bool:
        """True iff a stored relation is placeholder-free (kernel-eligible)."""
        if isinstance(self.inner, DatabaseBackend):
            return True
        return self.engine.relation_placeholder_count(relation_name) == 0

    def materialize(self, handle, result_name: Optional[str]):
        """Row handle → batch (the vectorized scan half of the boundary)."""
        if isinstance(handle, ColumnBatch):
            return handle
        if isinstance(self.inner, DatabaseBackend):
            return ColumnBatch.from_rows(handle.schema.attributes, handle.rows)
        # UWSDT: the handle is a relation name.  A template that carries
        # placeholders (the engine may have changed since the plan was
        # lowered) stays a row handle; downstream operators delegate.  The
        # static certainty analysis already kept uncertain subtrees in the
        # row world, so this fallback firing means a stale cached plan —
        # counted so the drift is observable.
        if self.engine.relation_placeholder_count(handle) != 0:
            from ...obs.metrics import get_registry

            get_registry().counter("repro.columnar.materialize_fallbacks").inc()
            return handle
        attributes = self.engine.schema.relation(handle).attributes
        row_ids: List[Any] = []
        rows: List[Tuple[Any, ...]] = []
        for tid, values in self.engine.template_rows(handle):
            row_ids.append(tid)
            rows.append(values)
        return ColumnBatch.from_rows(attributes, rows, row_ids)

    def dematerialize(self, handle, result_name: Optional[str]):
        """Batch → row handle the inner backend (and engine) understand."""
        if not isinstance(handle, ColumnBatch):
            # Runtime fallback passed a row handle straight through; honor
            # the result naming contract the row backends implement.
            if isinstance(self.inner, DatabaseBackend):
                return handle
            return self.inner.scan(handle, result_name)
        if handle.has_placeholders():
            raise QueryError(
                "cannot dematerialize a placeholder-bearing batch; columnar "
                "kernels only run over certain relations"
            )
        if isinstance(self.inner, DatabaseBackend):
            name = result_name if result_name is not None else "__columnar"
            schema = RelationSchema(name, handle.attributes)
            relation = Relation(schema)
            for row in handle.to_rows():
                relation.insert(row)  # insert-time dedup restores set semantics
            return relation
        target = self.inner.target(result_name)
        self.engine.add_relation(RelationSchema(target, handle.attributes))
        seen = set()
        for tid, values in zip(handle.row_ids, handle.to_rows()):
            if values in seen:
                continue  # certain duplicates denote the same tuple: set semantics
            seen.add(values)
            self.engine.add_template_tuple(target, tid, values)
        return target

    def _row_handle(self, handle):
        """Coerce a batch to an inner row handle (delegation path)."""
        if isinstance(handle, ColumnBatch):
            return self.dematerialize(handle, None)
        return handle

    # -- operators --------------------------------------------------------- #

    def scan(self, name: str, result_name: Optional[str]):
        return self.inner.scan(name, result_name)

    def index_scan(self, name: str, predicate: Predicate, result_name):
        return self.inner.index_scan(name, predicate, result_name)

    def filter(self, child, predicate: Predicate, result_name):
        if isinstance(child, ColumnBatch):
            return filter_batch(child, predicate)
        return self.inner.filter(child, predicate, result_name)

    def project(self, child, attributes: Sequence[str], result_name):
        if isinstance(child, ColumnBatch):
            return project_batch(child, attributes)
        return self.inner.project(child, attributes, result_name)

    def rename(self, child, old: str, new: str, result_name):
        if isinstance(child, ColumnBatch):
            return rename_batch(child, old, new)
        return self.inner.rename(child, old, new, result_name)

    def product(self, left, right, result_name):
        return self.inner.product(self._row_handle(left), self._row_handle(right), result_name)

    def union(self, left, right, result_name):
        if isinstance(left, ColumnBatch) and isinstance(right, ColumnBatch):
            return union_batch(left, right)
        return self.inner.union(self._row_handle(left), self._row_handle(right), result_name)

    def difference(self, left, right, result_name):
        if isinstance(left, ColumnBatch) and isinstance(right, ColumnBatch):
            return difference_batch(left, right)
        return self.inner.difference(
            self._row_handle(left), self._row_handle(right), result_name
        )

    def intersection(self, left, right, result_name):
        if isinstance(left, ColumnBatch) and isinstance(right, ColumnBatch):
            return intersection_batch(left, right)
        return self.inner.intersection(
            self._row_handle(left), self._row_handle(right), result_name
        )

    def hash_join(self, left, right, left_attr: str, right_attr: str, result_name):
        if isinstance(left, ColumnBatch) and isinstance(right, ColumnBatch):
            return hash_join_batch(left, right, left_attr, right_attr)
        return self.inner.hash_join(
            self._row_handle(left), self._row_handle(right), left_attr, right_attr, result_name
        )

    def index_join(self, outer, inner_name: str, outer_attr: str, inner_attr: str, result_name):
        return self.inner.index_join(
            self._row_handle(outer), inner_name, outer_attr, inner_attr, result_name
        )

    # -- introspection ----------------------------------------------------- #

    def row_count(self, handle) -> int:
        if isinstance(handle, ColumnBatch):
            return len(handle)
        return self.inner.row_count(handle)

    def arity(self, handle) -> int:
        if isinstance(handle, ColumnBatch):
            return handle.arity
        return self.inner.arity(handle)

    def base_rows(self, relation_name: str) -> int:
        return self.inner.base_rows(relation_name)

    def base_arity(self, relation_name: str) -> int:
        return self.inner.base_arity(relation_name)


# --------------------------------------------------------------------------- #
# Boundary insertion (the lowering pass)
# --------------------------------------------------------------------------- #


def insert_columnar_boundaries(
    root: PhysicalOperator, backend: EngineBackend
) -> PhysicalOperator:
    """Mark columnar regions and stitch them to the row world.

    A node runs columnar when it has a kernel and every base relation its
    subtree reads is certain; ``Materialize`` / ``Dematerialize`` nodes are
    inserted wherever the produced handle kind differs from what the parent
    consumes.  The root always hands a row handle to ``finish``.  Plans for
    row backends pass through untouched.
    """
    if not isinstance(backend, ColumnarBackend):
        return root
    # Eligibility is decided by the reusable certainty dataflow of
    # repro.analysis — a context over the backend's live probe (memoized:
    # one engine query per relation).  The runtime materialize fallback
    # below is only defense-in-depth against plans cached before an engine
    # mutation.
    from ...analysis.certainty import CertaintyContext
    from ...analysis.certainty import subtree_certain as certain_sources

    certainty = CertaintyContext.from_probe(backend.certain_base)

    def subtree_certain(node: PhysicalOperator) -> bool:
        return certain_sources(node.base_relation_names, certainty)

    def bridge(
        node: PhysicalOperator, produces_batch: bool, want_batch: bool
    ) -> PhysicalOperator:
        if produces_batch == want_batch:
            return node
        boundary = Materialize(node) if want_batch else Dematerialize(node)
        boundary.estimated_rows = node.estimated_rows
        boundary.base_relation_names = node.base_relation_names
        return boundary

    def visit(node: PhysicalOperator, want_batch: bool) -> PhysicalOperator:
        if isinstance(node, IndexNestedLoopJoin):
            # The inner Scan is never executed — only the outer child may
            # need a boundary, and both the children tuple and the node's
            # ``outer`` reference must see it.
            outer = visit(node.outer, False)
            node.outer = outer
            node.children = (outer, node.inner)
            return bridge(node, False, want_batch)
        runs_columnar = node.op_name in COLUMNAR_KERNEL_OPS and subtree_certain(node)
        node.children = tuple(visit(child, runs_columnar) for child in node.children)
        return bridge(node, runs_columnar, want_batch)

    return visit(root, False)


# --------------------------------------------------------------------------- #
# Backend resolution
# --------------------------------------------------------------------------- #


def _default_workers() -> int:
    from .shard import DEFAULT_WORKERS

    raw = os.environ.get(SHARD_WORKERS_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return DEFAULT_WORKERS


def _sharded_wall_clock(
    row_cost: float, workers: int, statistics: Statistics, query: Any, model: CostModel
) -> float:
    """Estimated wall clock of sharded execution, in cost units.

    Sharding *adds* total work (partitioning, serialization, merge), so a
    work-based comparison could never favor it; the wall-clock formula
    divides the subtree work across ``workers`` and adds the boundary costs:
    per-shard setup, per-base-row shipping, per-result-row merging.
    """
    base_rows = sum(
        statistics.row_count(name) for name in query.base_relations()
    )
    return (
        row_cost / max(1, workers)
        + model.shard_setup * workers
        + model.shard_ship_tuple * base_rows
        + model.shard_merge_tuple * base_rows
    )


def resolve_backend(
    engine: Any,
    spec: Optional[str] = None,
    query: Any = None,
    statistics: Optional[Statistics] = None,
    workers: Optional[int] = None,
) -> EngineBackend:
    """Map a backend spec to a concrete :class:`EngineBackend`.

    ``spec`` is ``"row"``, ``"columnar"``, ``"sharded"``, ``"auto"`` or None
    (meaning: the ``REPRO_BACKEND`` environment variable, defaulting to
    ``"row"``).  An already-constructed backend passes through unchanged.
    WSD engines have neither columnar kernels nor shardable tuple ids, so
    every spec resolves to their row backend.  ``workers`` sizes the sharded
    worker pool (default: ``REPRO_SHARD_WORKERS``, else 2).

    ``"auto"`` only ever deviates from the row backend on *calibrated*
    constants (``source == "calibrated"``): columnar when the query is
    estimated cheaper under the columnar model, sharded when the wall-clock
    formula — subtree work divided across workers, plus the boundary's
    setup/ship/merge costs — beats the row estimate.  Requesting
    ``workers`` explicitly with ``"auto"`` considers sharding; without
    workers, auto only arbitrates row vs columnar (the pre-shard behavior).
    """
    if isinstance(spec, EngineBackend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV) or "row"
    if spec not in BACKEND_SPECS:
        raise QueryError(f"unknown backend {spec!r}; expected one of {BACKEND_SPECS}")
    row = backend_for(engine)
    if spec == "row" or row.kind == "wsd":
        return row
    if spec == "columnar":
        return ColumnarBackend(engine)
    if spec == "sharded":
        from .shard import ShardedBackend

        return ShardedBackend(engine, workers if workers is not None else _default_workers())
    columnar_model = CostModel.for_engine("columnar")
    if columnar_model.source != "calibrated":
        return row  # never auto-pick on hand-tuned guesses
    row_model = CostModel.for_engine(row.kind)
    if query is not None and statistics is not None:
        try:
            columnar_cost = estimate(query, statistics, columnar_model).cost
            row_cost = estimate(query, statistics, row_model).cost
        except TypeError:
            columnar_cost, row_cost = None, None
        if columnar_cost is not None and row_cost is not None:
            best: EngineBackend = row
            best_cost = row_cost
            if columnar_cost < best_cost:
                best, best_cost = ColumnarBackend(engine), columnar_cost
            sharded_model = CostModel.for_engine("sharded")
            if workers is not None and sharded_model.source == "calibrated":
                from .shard import ShardedBackend

                sharded_cost = _sharded_wall_clock(
                    row_cost, workers, statistics, query, sharded_model
                )
                if sharded_cost < best_cost:
                    best, best_cost = ShardedBackend(engine, workers), sharded_cost
            return best
    # No query to estimate: compare the per-tuple constants directly.
    columnar_unit = columnar_model.select_tuple + columnar_model.join_build
    row_unit = row_model.select_tuple + row_model.join_build
    return ColumnarBackend(engine) if columnar_unit < row_unit else row
