"""Runtime metrics of physical-operator execution.

Every physical operator records, while it runs, the cardinalities it
consumed and produced, the wall time it took, and the cardinality the
planner *expected* it to produce.  The per-operator records roll up into an
:class:`ExecutionMetrics` exposed on the query result, which is what the
self-tuning loop of :mod:`repro.core.exec.feedback` consumes: observed
seconds per unit of modelled work refine the cost constants, and
estimated-vs-actual cardinalities flag where the selectivity estimates are
off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class OperatorMetrics:
    """One executed physical operator: cardinalities, time, estimate."""

    operator: str
    label: str
    #: Input cardinality per child (empty for scans).
    rows_in: Tuple[int, ...]
    rows_out: int
    #: Input arity per child, and the output arity (the cost formulas'
    #: width factors need both).
    arity_in: Tuple[int, ...]
    arity_out: int
    #: Wall time of this operator's own backend call alone — **self time**.
    #: Children are executed (and timed) before the parent's clock starts,
    #: so nested operators' ``seconds`` never overlap:
    #: ``ExecutionMetrics.total_seconds`` is a true cumulative sum, and
    #: per-node cumulative time is self + descendants
    #: (:meth:`~repro.core.exec.physical.PhysicalPlan.cumulative_seconds`).
    seconds: float
    #: The planner's cardinality estimate for this operator's output, or
    #: None when the plan was lowered without statistics.
    estimated_rows: Optional[float] = None
    #: Order-independent semantic key of the logical subtree this operator
    #: was lowered from (:func:`~repro.core.planner.observed.cardinality_key`);
    #: None for hand-built physical plans.  This is the key under which the
    #: observation becomes *consumable* by later planning passes.
    semantic_key: Optional[str] = None
    #: Sorted base relations the subtree reads — the staleness scope of the
    #: observation.
    relations: Tuple[str, ...] = ()

    @property
    def cardinality_error(self) -> Optional[float]:
        """The q-error ``max(est, actual) / min(est, actual)`` (≥ 1), with
        both sides floored at one row; None without an estimate."""
        if self.estimated_rows is None:
            return None
        estimated = max(1.0, float(self.estimated_rows))
        actual = max(1.0, float(self.rows_out))
        return max(estimated, actual) / min(estimated, actual)

    def describe(self) -> str:
        """One line: per-child input rows, output rows, self time, estimate.

        Join fan-in is explicit — ``in 1,200 × 3,000`` names both children's
        cardinalities — and the time is labeled ``self`` because it excludes
        the children (see :attr:`seconds`).
        """
        parts = []
        if self.rows_in:
            parts.append("in " + " × ".join(f"{rows:,}" for rows in self.rows_in))
        parts.append(f"{self.rows_out:,} rows out in {self.seconds * 1e3:.3f} ms self")
        if self.estimated_rows is not None:
            parts.append(f"est {self.estimated_rows:,.0f}")
            if self.cardinality_error is not None:
                parts.append(f"q-err {self.cardinality_error:.2f}")
        return ", ".join(parts)


@dataclass
class ExecutionMetrics:
    """All operator records of one query execution, in execution order."""

    engine: str
    records: List[OperatorMetrics] = field(default_factory=list)
    #: Fingerprint of the query these metrics belong to, when executed
    #: through the query service — lets feedback and telemetry attribute
    #: observations to the cached plan that produced them.
    fingerprint: Optional[str] = None
    #: Trace id of the service request that executed the plan (None outside
    #: the service or with tracing disabled) — ties these metrics to the
    #: request's span tree in the exported trace.
    trace_id: Optional[str] = None

    @property
    def total_seconds(self) -> float:
        """Cumulative wall time: the sum of per-operator **self** times.

        Operator ``seconds`` are non-overlapping by construction (each
        parent's clock starts after its children finished), so this sum
        counts every backend call exactly once.
        """
        return sum(record.seconds for record in self.records)

    @property
    def total_rows_out(self) -> int:
        return sum(record.rows_out for record in self.records)

    def by_operator(self) -> Dict[str, List[OperatorMetrics]]:
        grouped: Dict[str, List[OperatorMetrics]] = {}
        for record in self.records:
            grouped.setdefault(record.operator, []).append(record)
        return grouped

    def max_cardinality_error(self) -> Optional[float]:
        """Worst per-operator q-error, or None when no operator had an estimate."""
        errors = [
            record.cardinality_error
            for record in self.records
            if record.cardinality_error is not None
        ]
        return max(errors) if errors else None

    def join_records(self) -> List[OperatorMetrics]:
        """The join operators (hash and index nested-loop) in execution order."""
        return [
            record
            for record in self.records
            if record.operator in ("HashJoin", "IndexNestedLoopJoin")
        ]

    def summary(self) -> str:
        lines = [
            f"execution metrics ({self.engine}): "
            f"{len(self.records)} operators, {self.total_seconds * 1e3:.3f} ms "
            f"cumulative (sum of non-overlapping per-operator self times)"
        ]
        for record in self.records:
            lines.append(f"  {record.label}: {record.describe()}")
        worst = self.max_cardinality_error()
        if worst is not None:
            lines.append(f"  worst cardinality q-error: {worst:.2f}")
        return "\n".join(lines)
