"""The self-tuning loop: fold observed execution metrics into the cost profile.

:mod:`~repro.core.planner.calibrate` fits the planner's cost constants from
synthetic microbenchmarks; this module refines them from *real* query
executions.  Each executed physical operator reports its wall time together
with its actual input/output cardinalities; plugging the actual
cardinalities into the same per-operator cost formulas the planner uses
gives the operator's work in model units, so

    ``seconds ≈ unit · constant · work_units``

holds with the machine-specific ``unit`` (seconds per model cost unit)
estimated by least squares over the whole run.  Per constant, the ratio of
observed to predicted seconds is folded into the profile by an
exponentially weighted update — repeated executions converge the constants
toward the observed operator ratios without letting one noisy run swing
them.  Updated profiles are persisted as ordinary ``repro-cost-profile``
JSON documents, so the existing
:func:`~repro.core.planner.cost.load_cost_profile` path (and the
``REPRO_COST_PROFILE`` environment variable) serves them on the next run —
that closes the loop.

Cardinality errors feed back too: :func:`record_into_catalog` stores each
operator's estimated-vs-actual output cardinality on the engine's
:class:`~repro.core.planner.catalog.StatisticsCatalog`, keyed by the
operator label, as an EWMA of observed rows.

Run ``python -m repro.core.exec.feedback --smoke`` for one end-to-end
self-tuning iteration (CI does, and asserts the updated profile
round-trips).
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..planner.calibrate import MIN_CONSTANT, CalibrationProfile
from ..planner.cost import CostModel, arity_width
from .metrics import ExecutionMetrics, OperatorMetrics

#: Default EWMA weight of one feedback iteration.
DEFAULT_ALPHA = 0.5


def observed_cost_units(record: OperatorMetrics, model: CostModel) -> Optional[Tuple[str, float]]:
    """``(primary constant, predicted cost units)`` of one executed operator.

    The formulas mirror :func:`~repro.core.planner.cost.estimate` exactly,
    but evaluated at the operator's **actual** cardinalities — cardinality
    estimation error therefore does not contaminate the constant fit.
    Returns None for scans, and for ``IndexScan``: the planner
    conservatively costs it as a full-scan select, but its runtime is
    O(matched rows), so fitting its near-zero seconds against scan-sized
    work would drag ``select_tuple`` down for every real ``Filter``.
    """
    rows_in = record.rows_in
    first = float(rows_in[0]) if rows_in else 0.0
    second = float(rows_in[1]) if len(rows_in) > 1 else 0.0
    out_width = arity_width(record.arity_out)
    if record.operator == "Filter":
        return "select_tuple", model.select_tuple * first
    if record.operator == "Project":
        in_arity = record.arity_in[0] if record.arity_in else record.arity_out
        return "project_tuple", model.project_tuple * first * arity_width(in_arity)
    if record.operator == "Rename":
        return "rename_tuple", model.rename_tuple * first
    if record.operator == "Union":
        return "union_tuple", model.union_tuple * (first + second)
    if record.operator == "Product":
        return "emit_tuple", model.emit_tuple * record.rows_out * out_width
    if record.operator == "HashJoin":
        units = (
            model.join_build * first
            + model.join_probe * second
            + model.emit_tuple * record.rows_out * out_width
        )
        return "join_build", units
    if record.operator == "IndexNestedLoopJoin":
        units = model.index_probe * first + model.emit_tuple * record.rows_out * out_width
        return "index_probe", units
    if record.operator in ("Difference", "Intersection"):
        return "difference_pair", model.difference_pair * first * max(1.0, second)
    if record.operator == "Exchange":
        # Its recorded seconds are the boundary overhead (partition + ship +
        # pool wait) left after the subtree's own merged operator times.
        return "shard_ship_tuple", model.shard_ship_tuple * first
    if record.operator == "Gather":
        return "shard_merge_tuple", model.shard_merge_tuple * first
    return None  # scans: the model charges them nothing


def _usable(records: Sequence[OperatorMetrics], model: CostModel):
    for record in records:
        spec = observed_cost_units(record, model)
        if spec is None:
            continue
        constant, units = spec
        if units > 0:
            yield constant, units, record.seconds


def fitted_unit(records: Sequence[OperatorMetrics], model: CostModel) -> Optional[float]:
    """Least-squares seconds-per-cost-unit of one run under ``model``."""
    numerator = 0.0
    denominator = 0.0
    for _, units, seconds in _usable(records, model):
        numerator += units * seconds
        denominator += units * units
    if denominator <= 0:
        return None
    unit = numerator / denominator
    return unit if unit > 0 else None


def cost_model_error(metrics: ExecutionMetrics, model: CostModel) -> float:
    """Relative L1 error of the model's per-operator time predictions.

    ``Σ |unit·predicted − observed| / Σ observed`` with the best-fitting
    global ``unit`` for this model — scale-free, so it isolates how well the
    *ratios* between the constants match reality.  Zero when the run had no
    chargeable operators.
    """
    usable = list(_usable(metrics.records, model))
    unit = fitted_unit(metrics.records, model)
    total_seconds = sum(seconds for _, _, seconds in usable)
    if unit is None or total_seconds <= 0:
        return 0.0
    absolute = sum(abs(unit * units - seconds) for _, units, seconds in usable)
    return absolute / total_seconds


#: Constants updated together (the hash join's build and probe are fitted as
#: one residual in calibration, so feedback scales them together too).
_TIED_CONSTANTS = {"join_build": ("join_build", "join_probe")}


def fold_metrics(
    metrics: ExecutionMetrics,
    model: Optional[CostModel] = None,
    alpha: float = DEFAULT_ALPHA,
) -> CostModel:
    """One feedback iteration: blend observed operator ratios into ``model``.

    For every constant with at least one observed operator, the group's
    observed seconds are compared against the model's prediction under the
    run's best-fitting global unit; the constant moves toward the observed
    ratio with weight ``alpha``.  Constants without observations are kept.
    """
    if model is None:
        model = CostModel.for_engine(metrics.engine)
    usable = list(_usable(metrics.records, model))
    unit = fitted_unit(metrics.records, model)
    if unit is None:
        return model

    predicted: Dict[str, float] = {}
    observed: Dict[str, float] = {}
    for constant, units, seconds in usable:
        predicted[constant] = predicted.get(constant, 0.0) + unit * units
        observed[constant] = observed.get(constant, 0.0) + seconds

    constants = model.constants()
    for constant, predicted_seconds in predicted.items():
        if predicted_seconds <= 0:
            continue
        ratio = observed[constant] / predicted_seconds
        scale = (1.0 - alpha) + alpha * ratio
        for name in _TIED_CONSTANTS.get(constant, (constant,)):
            constants[name] = max(constants[name] * scale, MIN_CONSTANT)
    return CostModel.from_constants(metrics.engine, constants, source="calibrated")


@dataclass
class FeedbackResult:
    """One applied feedback iteration, with its before/after model error."""

    engine: str
    error_before: float
    error_after: float
    model: CostModel
    profile: CalibrationProfile

    @property
    def improved(self) -> bool:
        return self.error_after <= self.error_before


def apply_feedback(
    metrics: ExecutionMetrics,
    alpha: float = DEFAULT_ALPHA,
    output_path: Optional[str] = None,
    install: bool = False,
    extra_metadata: Optional[Dict[str, object]] = None,
) -> FeedbackResult:
    """Fold one execution's metrics into the active cost profile.

    Builds a full profile (the updated engine plus the active models of the
    other engines, so a saved document stays complete), optionally persists
    it to ``output_path`` and/or installs it for the current process.
    """
    from ...obs.metrics import get_registry

    before = CostModel.for_engine(metrics.engine)
    updated = fold_metrics(metrics, before, alpha)
    # Surface per-constant drift: the ratio an iteration applied to each
    # constant (1.0 = the model already matched the observed run).
    registry = get_registry()
    registry.counter("repro.feedback.iterations", engine=metrics.engine).inc()
    before_constants = before.constants()
    for constant, value in updated.constants().items():
        origin = before_constants.get(constant)
        if origin:
            registry.gauge(
                "repro.feedback.constant_drift", engine=metrics.engine, constant=constant
            ).set(value / origin)
    models = {
        name: CostModel.for_engine(name)
        for name in ("database", "wsd", "uwsdt", "columnar", "sharded")
    }
    models[metrics.engine] = updated
    metadata: Dict[str, object] = {
        "self_tuned": True,
        "alpha": alpha,
        "engine": metrics.engine,
        "operators": len(metrics.records),
    }
    metadata.update(extra_metadata or {})
    profile = CalibrationProfile(models, metadata)
    if output_path is not None:
        profile.save(output_path)
    if install:
        profile.install(output_path)
    return FeedbackResult(
        engine=metrics.engine,
        error_before=cost_model_error(metrics, before),
        error_after=cost_model_error(metrics, updated),
        model=updated,
        profile=profile,
    )


def record_into_catalog(engine, metrics: ExecutionMetrics) -> None:
    """Store estimated-vs-actual output cardinalities on the engine's catalog."""
    from ..planner.catalog import catalog_for

    catalog = catalog_for(engine)
    for record in metrics.records:
        if record.estimated_rows is None:
            continue
        catalog.record_actual(
            record.label,
            record.estimated_rows,
            record.rows_out,
            key=record.semantic_key,
            relations=record.relations,
        )


# --------------------------------------------------------------------------- #
# CLI: one end-to-end self-tuning iteration (wired into CI as a smoke check)
# --------------------------------------------------------------------------- #


def _smoke_metrics(rows: int) -> List[ExecutionMetrics]:
    """Run the repeated-planning benchmark query with metrics per backend:
    the database and UWSDT row backends, plus the columnar backend over both
    engines (its metrics carry ``engine == "columnar"`` and refine the
    columnar cost model)."""
    from ...bench.harness import census_instance
    from ...census.queries import q_four_way_join

    instance = census_instance(rows, 0.001)
    query = q_four_way_join()
    collected = []
    database_run = query.run(instance.one_world_database(), "result", collect_metrics=True)
    collected.append(database_run.metrics)
    uwsdt_run = query.run(instance.chased(), "result", collect_metrics=True)
    collected.append(uwsdt_run.metrics)
    columnar_db_run = query.run(
        instance.one_world_database(), "result", collect_metrics=True, backend="columnar"
    )
    collected.append(columnar_db_run.metrics)
    columnar_uwsdt_run = query.run(
        instance.chased(), "result", collect_metrics=True, backend="columnar"
    )
    collected.append(columnar_uwsdt_run.metrics)
    return collected


def shard_smoke(
    rows: int,
    workers: int,
    alpha: float = DEFAULT_ALPHA,
    output_path: Optional[str] = None,
    profile_path: Optional[str] = None,
) -> Dict[str, object]:
    """Row-vs-sharded wall clock of the 4-way census join on a UWSDT.

    Runs the single-process row backend once, then ``backend="sharded"`` at
    every worker count from 2 up to ``workers`` (each on a freshly chased
    instance), folds the sharded runs' metrics into the cost profile (that
    calibrates the ``shard_*`` constants, which is what lets
    ``backend="auto"`` consider sharding), and returns a JSON-ready
    ``repro-shard-smoke`` document with the measured speedups.
    """
    from ...bench.harness import census_instance
    from ...census.queries import q_four_way_join
    from .shard import reset_shard_pool

    query = q_four_way_join()

    def chased_engine():
        return census_instance(rows, 0.001).chased()

    started = time.perf_counter()
    query.run(chased_engine(), "result", backend="row")
    row_seconds = time.perf_counter() - started

    runs: List[Dict[str, object]] = []
    for count in range(2, max(2, workers) + 1):
        engine = chased_engine()
        started = time.perf_counter()
        result = query.run(
            engine, "result", collect_metrics=True, backend="sharded", workers=count
        )
        seconds = time.perf_counter() - started
        feedback = apply_feedback(
            result.metrics, alpha=alpha, output_path=profile_path, install=True
        )
        runs.append(
            {
                "workers": count,
                "seconds": seconds,
                "speedup": row_seconds / seconds if seconds > 0 else None,
                "cost_model_error": feedback.error_after,
            }
        )
        print(
            f"sharded workers={count}: {seconds * 1e3:.2f} ms "
            f"(row {row_seconds * 1e3:.2f} ms, speedup {row_seconds / seconds:.2f}x)"
        )
    reset_shard_pool()
    document: Dict[str, object] = {
        "format": "repro-shard-smoke",
        "rows": rows,
        "query": "q_four_way_join",
        "engine": "uwsdt",
        "row_seconds": row_seconds,
        "sharded": runs,
    }
    if output_path:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
        print(f"wrote {output_path}")
    return document


def main(argv: Optional[Sequence[str]] = None) -> int:
    from ..planner.calibrate import calibrate
    from ..planner.cost import load_cost_profile, parse_cost_profile

    parser = argparse.ArgumentParser(
        description="One calibrate-and-feedback round per backend: fit the "
        "cost constants from microbenchmarks, execute a metrics-enabled "
        "query on every backend, fold observed operator times into the "
        "cost profile."
    )
    parser.add_argument("--output", default="COST_PROFILE_tuned.json")
    parser.add_argument(
        "--columnar-output",
        default="COST_PROFILE_columnar.json",
        help="where to upload the calibrated+tuned profile containing the "
        "columnar model (the artifact CI publishes)",
    )
    parser.add_argument(
        "--profile", default=None, help="existing profile to start from (optional)"
    )
    parser.add_argument(
        "--no-calibrate",
        action="store_true",
        help="skip the microbenchmark calibration round (start from the "
        "active/reference constants)",
    )
    parser.add_argument("--rows", type=int, default=200)
    parser.add_argument("--alpha", type=float, default=DEFAULT_ALPHA)
    parser.add_argument("--smoke", action="store_true", help="tiny CI sizes (100 rows)")
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker counts for the sharded smoke (runs workers=2..N)",
    )
    parser.add_argument(
        "--shard-output",
        default="SHARD_smoke.json",
        help="where to write the row-vs-sharded speedup document "
        "(empty string skips the shard smoke)",
    )
    args = parser.parse_args(argv)

    if args.profile:
        load_cost_profile(args.profile)
    elif not args.no_calibrate:
        # Calibrate every backend first so feedback refines *fitted*
        # constants (and so the columnar model is source="calibrated",
        # which is what lets backend="auto" consider it).
        calibrated = calibrate(smoke=args.smoke)
        calibrated.install()
        for name, model in sorted(calibrated.models.items()):
            print(
                f"calibrated {name}: select_tuple={model.select_tuple:.4f} "
                f"join_build={model.join_build:.4f}"
            )
    rows = 100 if args.smoke else args.rows

    # The shard smoke runs first: it calibrates the shard_* constants, and
    # the feedback loop below then writes the final profile (including the
    # now-calibrated sharded model), keeping the round-trip check below
    # aligned with the file's last writer.
    if args.shard_output:
        shard_smoke(
            rows,
            args.workers,
            alpha=args.alpha,
            output_path=args.shard_output,
            profile_path=args.output,
        )

    result = None
    for metrics in _smoke_metrics(rows):
        result = apply_feedback(
            metrics, alpha=args.alpha, output_path=args.output, install=True
        )
        print(
            f"{metrics.engine}: cost-model error "
            f"{result.error_before:.4f} -> {result.error_after:.4f} "
            f"({len(metrics.records)} operators, {metrics.total_seconds * 1e3:.2f} ms)"
        )

    with open(args.output, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    reloaded = parse_cost_profile(document)
    saved = {name: model.constants() for name, model in result.profile.models.items()}
    round_tripped = {name: model.constants() for name, model in reloaded.items()}
    if saved != round_tripped:
        print("ERROR: tuned profile did not round-trip through the JSON document")
        return 1
    print(f"wrote {args.output} (round-trip verified)")

    if args.columnar_output:
        result.profile.save(args.columnar_output)
        columnar = result.profile.models.get("columnar")
        row = result.profile.models.get("database")
        if columnar is not None and row is not None:
            print(
                f"wrote {args.columnar_output} "
                f"(columnar select_tuple {columnar.select_tuple:.4f} vs "
                f"row {row.select_tuple:.4f}, "
                f"join_build {columnar.join_build:.4f} vs {row.join_build:.4f})"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
