"""``python -m repro.core.exec``: one self-tuning feedback iteration."""

from .feedback import main

if __name__ == "__main__":
    raise SystemExit(main())
