"""Sharded parallel execution over world-set components.

The paper's central structural property — a UWSDT decomposes into
*independent* world-set components — is exactly a shard key: a subtree that
only ever touches one template tuple at a time (Scan / IndexScan / Filter /
Project / Rename chains, the legs of the census join queries) evaluates each
tuple against the components covering it and never correlates two tuples
that do not already share a component.  Partitioning the template rows so
that no component's covered tuples are split across shards therefore makes
per-shard execution *exact*: running the subtree on every shard and
re-installing the evolved components yields the same world-set — including
per-tuple confidences — as single-process execution.

:class:`ShardedBackend` wraps the engine's row backend
(:class:`~repro.core.exec.backends.DatabaseBackend` or
:class:`~repro.core.exec.backends.UWSDTBackend`) and executes the explicit
``Gather(Exchange(subtree))`` boundary pair that
:func:`insert_shard_boundaries` places during lowering (mirroring the
columnar ``Materialize``/``Dematerialize`` markers):

* ``Exchange`` marks a component-confined subtree that is hash-partitioned
  into ``workers`` shards and shipped to a persistent ``multiprocessing``
  worker pool;
* ``Gather`` merges the per-shard results back into the parent engine —
  template rows under their original tuple ids, evolved components replacing
  the originals — and re-attributes the workers' per-operator metrics onto
  the parent plan's nodes.

Joins, products and set operations stay *above* the Gather: their operators
merge components across distinct base tuples (``equi_join``) or create
presence components spanning both inputs (``difference``), which a
row-partitioned execution cannot reproduce.  ``analysis/invariants.py``
enforces exactly this boundary rule on every lowered plan.

When a worker dies (or a payload refuses to pickle), the affected shard
falls back to in-process execution: counted in
``repro.shard.fallbacks{reason=...}``, logged, and oracle-identical — the
same :func:`_execute_shard` function runs either way.
"""

from __future__ import annotations

import logging
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ...obs.metrics import DEFAULT_BUCKETS, get_registry
from ...obs.trace import get_tracer
from ...relational.database import Database
from ...relational.errors import QueryError
from ...relational.relation import Relation
from ...relational.schema import RelationSchema
from ..component import Component
from ..fields import FieldRef
from ..uwsdt import UWSDT
from .backends import DatabaseBackend, EngineBackend, UWSDTBackend, backend_for
from .metrics import OperatorMetrics
from .physical import (
    Exchange,
    Gather,
    IndexNestedLoopJoin,
    IndexScan,
    PhysicalOperator,
    PhysicalPlan,
    Scan,
)

logger = logging.getLogger(__name__)

#: Default worker count when ``backend="sharded"`` is requested without one.
DEFAULT_WORKERS = 2

#: Physical operators safe inside an ``Exchange`` subtree: each processes
#: one template tuple at a time and only ever merges components *of that
#: tuple* — so a partition that keeps every component's covered tuples on
#: one shard is exact.  Joins/Product merge components across distinct base
#: tuples and Difference creates presence components spanning both inputs;
#: they must execute above the Gather, on the merged engine.
SHARDABLE_OPS = frozenset({"Scan", "IndexScan", "Filter", "Project", "Rename"})

#: Result relation name inside a shard engine (renamed to the parent's
#: target at merge time).
SHARD_RESULT = "__shard__"

#: Dummy attribute of reserved-name relations registered on shard engines so
#: the worker's intermediate-name generator skips names already used by the
#: parent plan (shipped components may reference them).
_RESERVED_ATTR = "__reserved__"


def _stable_hash(key: Any) -> int:
    """Deterministic hash of a partition key (``hash()`` is salted per process)."""
    return zlib.crc32(repr(key).encode("utf-8"))


# --------------------------------------------------------------------------- #
# The worker task (module-level so it pickles; also the in-process fallback)
# --------------------------------------------------------------------------- #


@dataclass
class ShardResult:
    """What one shard sends back to the parent."""

    kind: str
    attributes: Tuple[str, ...]
    #: ``(tuple_id, values)`` pairs on a UWSDT, raw value tuples on a Database.
    rows: List[Any]
    #: Evolved components, already stripped of worker-intermediate fields
    #: (UWSDT only).
    components: List[Component] = field(default_factory=list)
    #: Per-node :class:`OperatorMetrics` in ``subtree.walk()`` order.
    records: List[Optional[OperatorMetrics]] = field(default_factory=list)


def _execute_shard(payload: Tuple[Any, PhysicalOperator]) -> ShardResult:
    """Execute one shard: runs in a pool worker, or in-process on fallback."""
    engine, subtree = payload
    backend = backend_for(engine)
    # Relations present before execution: shipped components may reference
    # them, and their fields must survive the stripping below.  Anything the
    # worker itself creates (intermediates) is marginalized out — exactly:
    # the joint distribution of base + result fields is unchanged.
    shipped_relations: Set[str] = (
        set(engine.schema.relation_names) if isinstance(engine, UWSDT) else set()
    )
    plan = PhysicalPlan(subtree, backend.kind)
    value = plan.execute(backend, SHARD_RESULT)
    records = [node.metrics for node in plan.operators()]
    if isinstance(engine, UWSDT):
        attributes = engine.schema.relation(SHARD_RESULT).attributes
        rows = list(engine.template_rows(SHARD_RESULT))
        components: List[Component] = []
        for component in engine.components.values():
            drop = [
                f
                for f in component.fields
                if f.relation not in shipped_relations and f.relation != SHARD_RESULT
            ]
            reduced = component.project_away(drop) if drop else component
            if reduced is not None:
                components.append(reduced)
        return ShardResult("uwsdt", attributes, rows, components, records)
    relation = value  # DatabaseBackend.finish returned a Relation copy
    return ShardResult(
        "database", relation.schema.attributes, list(relation.rows), [], records
    )


# --------------------------------------------------------------------------- #
# Persistent worker pool
# --------------------------------------------------------------------------- #

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0


def _shard_pool(workers: int) -> ProcessPoolExecutor:
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS == workers:
        return _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=False)
    _POOL = ProcessPoolExecutor(max_workers=workers)
    _POOL_WORKERS = workers
    return _POOL


def reset_shard_pool() -> None:
    """Tear down the persistent pool (crash recovery and test isolation)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=False)
    _POOL = None
    _POOL_WORKERS = 0


# --------------------------------------------------------------------------- #
# Partitioning
# --------------------------------------------------------------------------- #


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Any, Any] = {}

    def find(self, key: Any) -> Any:
        parent = self._parent.setdefault(key, key)
        if parent == key:
            return key
        root = self.find(parent)
        self._parent[key] = root
        return root

    def union(self, left: Any, right: Any) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root != right_root:
            self._parent[right_root] = left_root


@dataclass
class _UwsdtShard:
    """One shard's slice of the parent UWSDT, before being built."""

    rows: Dict[str, List[Tuple[Any, Tuple[Any, ...]]]] = field(default_factory=dict)
    cids: List[int] = field(default_factory=list)


def partition_uwsdt_components(
    engine: UWSDT, scanned: Sequence[str], shards: int
) -> Tuple[List[_UwsdtShard], List[int]]:
    """Partition template rows + components of the scanned relations.

    Components sharing a covered ``(relation, tuple_id)`` are transitively
    grouped (union-find), each group lands wholly on one shard, and every
    template row follows its group — so no component is ever split.  Rows
    covered by no component hash independently by their own tuple id.
    Returns the shard specs plus the full list of shipped component ids
    (the parent removes exactly these at merge time).
    """
    scanned_set = set(scanned)
    groups = _UnionFind()
    component_keys: Dict[int, Tuple[str, Any]] = {}
    for cid, component in engine.components.items():
        keys = [
            (relation, tid)
            for relation, tid in component.tuples_covered()
            if relation in scanned_set
        ]
        if not keys:
            continue  # never touched by this subtree: stays in the parent
        component_keys[cid] = keys[0]
        for key in keys[1:]:
            groups.union(keys[0], key)
    specs = [_UwsdtShard() for _ in range(shards)]
    covered = set(groups._parent)
    for relation in scanned:
        for tid, values in engine.template_rows(relation):
            key = (relation, tid)
            anchor = groups.find(key) if key in covered else key
            spec = specs[_stable_hash(anchor) % shards]
            spec.rows.setdefault(relation, []).append((tid, values))
    for cid, key in component_keys.items():
        specs[_stable_hash(groups.find(key)) % shards].cids.append(cid)
    return specs, list(component_keys)


def _build_uwsdt_shard(
    engine: UWSDT, scanned: Sequence[str], spec: _UwsdtShard
) -> UWSDT:
    shard = UWSDT()
    for relation in scanned:
        shard.add_relation(
            RelationSchema(relation, engine.schema.relation(relation).attributes)
        )
    # Reserve every non-scanned relation name referenced by shipped
    # components: the worker's intermediate-name generator must not reuse a
    # name whose fields already exist (they would collide on FieldRefs).
    reserved: Set[str] = set()
    for cid in spec.cids:
        for f in engine.components[cid].fields:
            if f.relation not in spec.rows and f.relation not in scanned:
                reserved.add(f.relation)
    if SHARD_RESULT in reserved:
        raise QueryError(
            f"cannot shard: components reference the reserved name {SHARD_RESULT!r}"
        )
    for name in sorted(reserved):
        shard.add_relation(RelationSchema(name, (_RESERVED_ATTR,)))
    for relation, rows in spec.rows.items():
        for tid, values in rows:
            shard.add_template_tuple(relation, tid, values)
    for cid in spec.cids:
        shard.new_component(engine.components[cid])
    return shard


def _build_database_shards(
    engine: Database, scanned: Sequence[str], shards: int
) -> List[Database]:
    specs = []
    for _ in range(shards):
        database = Database()
        for relation in scanned:
            database.add(Relation(engine.relation(relation).schema))
        specs.append(database)
    for relation in scanned:
        for row in engine.relation(relation).rows:
            specs[_stable_hash(row) % shards].relation(relation).insert(row)
    return specs


# --------------------------------------------------------------------------- #
# The backend
# --------------------------------------------------------------------------- #


class ShardedBackend(EngineBackend):
    """Parallel execution wrapping the engine's row backend.

    All ordinary operators delegate to the inner row backend — only the
    ``Gather`` boundary does anything sharded, so the parts of a plan above
    the boundary (joins, set operations) behave exactly as on the row
    backend.  ``workers`` is both the pool size and the shard count.
    """

    kind = "sharded"

    def __init__(self, engine: Any, workers: int = DEFAULT_WORKERS) -> None:
        super().__init__(engine)
        inner = backend_for(engine)
        if not isinstance(inner, (DatabaseBackend, UWSDTBackend)):
            raise QueryError(
                f"the sharded backend cannot wrap a {inner.kind!r} engine; "
                "use backend='row' (WSD tuple ids are engine-global)"
            )
        if workers < 1:
            raise QueryError(f"sharded execution needs workers >= 1, got {workers}")
        self.inner = inner
        self.workers = workers
        self.supports_index_scan = inner.supports_index_scan
        self.supports_index_join = inner.supports_index_join
        self.native_intersection = inner.native_intersection
        #: Per-shard fallbacks to in-process execution during the last gather.
        self.fallbacks = 0

    # -- lifecycle --------------------------------------------------------- #

    def begin(self, result_name: str) -> None:
        self.inner.begin(result_name)

    def finish(self, handle, result_name: str):
        return self.inner.finish(handle, result_name)

    # -- delegation: everything above the Gather runs row-at-a-time -------- #

    def scan(self, name, result_name):
        return self.inner.scan(name, result_name)

    def index_scan(self, name, predicate, result_name):
        return self.inner.index_scan(name, predicate, result_name)

    def filter(self, child, predicate, result_name):
        return self.inner.filter(child, predicate, result_name)

    def project(self, child, attributes, result_name):
        return self.inner.project(child, attributes, result_name)

    def rename(self, child, old, new, result_name):
        return self.inner.rename(child, old, new, result_name)

    def product(self, left, right, result_name):
        return self.inner.product(left, right, result_name)

    def union(self, left, right, result_name):
        return self.inner.union(left, right, result_name)

    def difference(self, left, right, result_name):
        return self.inner.difference(left, right, result_name)

    def intersection(self, left, right, result_name):
        return self.inner.intersection(left, right, result_name)

    def hash_join(self, left, right, left_attr, right_attr, result_name):
        return self.inner.hash_join(left, right, left_attr, right_attr, result_name)

    def index_join(self, outer, inner_name, outer_attr, inner_attr, result_name):
        return self.inner.index_join(
            outer, inner_name, outer_attr, inner_attr, result_name
        )

    def row_count(self, handle) -> int:
        return self.inner.row_count(handle)

    def arity(self, handle) -> int:
        return self.inner.arity(handle)

    def base_rows(self, relation_name: str) -> int:
        return self.inner.base_rows(relation_name)

    def base_arity(self, relation_name: str) -> int:
        return self.inner.base_arity(relation_name)

    # -- the boundary ------------------------------------------------------ #

    def gather(self, exchange: Exchange, result_name: Optional[str]):
        """Execute an ``Exchange`` subtree sharded and merge the results.

        Partitions the scanned relations (component-closed on a UWSDT),
        ships one ``(shard engine, subtree)`` payload per non-empty shard to
        the worker pool, merges rows + evolved components into the parent
        engine, and re-attributes the workers' per-operator metrics onto the
        subtree's nodes (summed across shards).
        """
        subtree = exchange.children[0]
        scanned = sorted(
            {
                node.relation
                for node in subtree.walk()
                if isinstance(node, (Scan, IndexScan))
            }
        )
        started = time.perf_counter()
        shipped_cids: List[int] = []
        if isinstance(self.engine, UWSDT):
            specs, shipped_cids = partition_uwsdt_components(
                self.engine, scanned, self.workers
            )
            payloads = [
                (index, (_build_uwsdt_shard(self.engine, scanned, spec), subtree))
                for index, spec in enumerate(specs)
                if spec.rows
            ]
            if not payloads:
                payloads = [(0, (_build_uwsdt_shard(self.engine, scanned, _UwsdtShard()), subtree))]
        else:
            databases = _build_database_shards(self.engine, scanned, self.workers)
            payloads = [
                (index, (database, subtree))
                for index, database in enumerate(databases)
                if any(len(database.relation(name)) for name in scanned)
            ]
            if not payloads:
                payloads = [(0, (databases[0], subtree))]

        results = self._run_shards(payloads)
        parallel_seconds = time.perf_counter() - started

        merge_started = time.perf_counter()
        if isinstance(self.engine, UWSDT):
            handle = self._merge_uwsdt(results, shipped_cids, result_name)
        else:
            handle = self._merge_database(results, result_name)
        merge_seconds = time.perf_counter() - merge_started

        self._attribute_metrics(
            exchange, subtree, results, parallel_seconds, merge_seconds
        )
        return handle

    # -- shard execution --------------------------------------------------- #

    def _run_shards(
        self, payloads: Sequence[Tuple[int, Tuple[Any, PhysicalOperator]]]
    ) -> List[ShardResult]:
        registry = get_registry()
        tracer = get_tracer()
        self.fallbacks = 0
        futures: List[Tuple[int, Any, Any]] = []
        results: List[ShardResult] = []
        if self.workers == 1 or len(payloads) == 1:
            # Nothing to parallelize: skip the serialization round trip.
            for index, payload in payloads:
                results.append(self._run_local(index, payload))
            return results
        pool = _shard_pool(self.workers)
        for index, payload in payloads:
            try:
                futures.append((index, payload, pool.submit(_execute_shard, payload)))
            except Exception as exc:  # pool already broken / shutdown race
                self._count_fallback(registry, "submit-failed", index, exc)
                futures.append((index, payload, None))
        for index, payload, future in futures:
            if tracer.enabled:
                with tracer.span("shard-execute", shard=index) as span:
                    result = self._collect(registry, index, payload, future)
                    root_record = result.records[-1] if result.records else None
                    span.annotate(
                        rows_out=len(result.rows),
                        seconds=root_record.seconds if root_record else None,
                    )
            else:
                result = self._collect(registry, index, payload, future)
            results.append(result)
        return results

    def _collect(
        self, registry, index: int, payload, future
    ) -> ShardResult:
        """One shard's result, falling back to in-process execution on failure."""
        if future is None:
            return self._run_local(index, payload)
        try:
            return future.result()
        except BrokenProcessPool as exc:
            reset_shard_pool()
            self._count_fallback(registry, "worker-died", index, exc)
            return self._run_local(index, payload)
        except Exception as exc:
            # Pickling failures and in-worker errors: re-run in-process —
            # a deterministic bug will re-raise visibly, a transport
            # problem will succeed.
            reason = (
                "unpicklable"
                if "pickle" in type(exc).__name__.lower()
                or "pickle" in str(exc).lower()
                else "worker-error"
            )
            self._count_fallback(registry, reason, index, exc)
            return self._run_local(index, payload)

    def _run_local(self, index: int, payload: Tuple[Any, PhysicalOperator]) -> ShardResult:
        result = _execute_shard(payload)
        # In-process execution wrote metrics onto the shared subtree node
        # objects; detach them so the merged attribution below starts clean.
        for node in payload[1].walk():
            node.metrics = None
        return result

    def _count_fallback(self, registry, reason: str, index: int, exc: Exception) -> None:
        self.fallbacks += 1
        registry.counter("repro.shard.fallbacks", reason=reason).inc()
        logger.warning(
            "shard %d fell back to in-process execution (%s): %s", index, reason, exc
        )

    # -- merging ----------------------------------------------------------- #

    def _merge_uwsdt(
        self,
        results: Sequence[ShardResult],
        shipped_cids: Sequence[int],
        result_name: Optional[str],
    ):
        engine: UWSDT = self.engine
        target = self.inner.target(result_name)
        engine.add_relation(RelationSchema(target, results[0].attributes))
        for result in results:
            for tid, values in result.rows:
                engine.add_template_tuple(target, tid, values)
        # Replace the shipped components with their evolved versions: the
        # originals first (their fields must unmap before the evolved
        # components — which extend them with result fields — remap them).
        for cid in shipped_cids:
            engine.remove_component(cid)
        for result in results:
            for component in result.components:
                mapping = {
                    f: FieldRef(target, f.tuple_id, f.attribute)
                    for f in component.fields
                    if f.relation == SHARD_RESULT
                }
                if mapping:
                    component = component.rename_fields(mapping)
                engine.new_component(component)
        return target

    def _merge_database(
        self, results: Sequence[ShardResult], result_name: Optional[str]
    ) -> Relation:
        name = result_name if result_name is not None else "__gather"
        relation = Relation(RelationSchema(name, results[0].attributes))
        for result in results:
            for row in result.rows:
                relation.insert(row)  # insert-time dedup restores set semantics
        return relation

    # -- metrics attribution ----------------------------------------------- #

    def _attribute_metrics(
        self,
        exchange: Exchange,
        subtree: PhysicalOperator,
        results: Sequence[ShardResult],
        parallel_seconds: float,
        merge_seconds: float,
    ) -> None:
        nodes = subtree.walk()
        for position, node in enumerate(nodes):
            shard_records = [
                result.records[position]
                for result in results
                if position < len(result.records) and result.records[position] is not None
            ]
            if not shard_records:
                node.metrics = None
                continue
            first = shard_records[0]
            rows_in = tuple(
                sum(record.rows_in[i] for record in shard_records)
                for i in range(len(first.rows_in))
            )
            node.metrics = OperatorMetrics(
                operator=node.op_name,
                label=node.label(),
                rows_in=rows_in,
                rows_out=sum(record.rows_out for record in shard_records),
                arity_in=first.arity_in,
                arity_out=first.arity_out,
                seconds=sum(record.seconds for record in shard_records),
                estimated_rows=node.estimated_rows,
                semantic_key=node.cardinality_key,
                relations=node.base_relation_names,
            )
        subtree_seconds = sum(
            node.metrics.seconds for node in nodes if node.metrics is not None
        )
        shard_rows = [len(result.rows) for result in results]
        total_rows = sum(shard_rows)
        exchange.shard_rows = shard_rows
        exchange.merge_seconds = merge_seconds
        exchange.metrics = OperatorMetrics(
            operator=exchange.op_name,
            label=exchange.label(),
            rows_in=(total_rows,),
            rows_out=total_rows,
            arity_in=(results[0].records[-1].arity_out if results[0].records else 0,),
            arity_out=results[0].records[-1].arity_out if results[0].records else 0,
            seconds=max(0.0, parallel_seconds - subtree_seconds),
            estimated_rows=exchange.estimated_rows,
            semantic_key=exchange.cardinality_key,
            relations=exchange.base_relation_names,
        )
        if shard_rows and max(shard_rows) > 0:
            mean = total_rows / len(shard_rows)
            imbalance = max(shard_rows) / mean if mean else float(len(shard_rows))
            get_registry().histogram(
                "repro.shard.imbalance", DEFAULT_BUCKETS, backend=self.inner.kind
            ).observe(imbalance)


# --------------------------------------------------------------------------- #
# Boundary insertion (the lowering pass)
# --------------------------------------------------------------------------- #


def insert_shard_boundaries(
    root: PhysicalOperator, backend: EngineBackend
) -> PhysicalOperator:
    """Wrap maximal component-confined subtrees in ``Gather(Exchange(...))``.

    A subtree is shardable when every operator in it is per-tuple
    (:data:`SHARDABLE_OPS`); joins and set operations — whose keys may span
    world-set components — stay above the boundary and execute unsharded on
    the merged engine.  Bare scans are not worth a round trip and pass
    through.  Plans for non-sharded backends are returned untouched.
    """
    if not isinstance(backend, ShardedBackend):
        return root

    def shardable(node: PhysicalOperator) -> bool:
        return node.op_name in SHARDABLE_OPS and all(
            shardable(child) for child in node.children
        )

    def wrap(node: PhysicalOperator) -> PhysicalOperator:
        exchange = Exchange(node, backend.workers)
        exchange.estimated_rows = node.estimated_rows
        exchange.base_relation_names = node.base_relation_names
        gather = Gather(exchange)
        gather.estimated_rows = node.estimated_rows
        gather.base_relation_names = node.base_relation_names
        return gather

    def visit(node: PhysicalOperator) -> PhysicalOperator:
        if isinstance(node, IndexNestedLoopJoin):
            # The inner Scan is never executed — only the outer child may be
            # sharded, and both the children tuple and the node's ``outer``
            # reference must see the boundary.
            outer = visit(node.outer)
            node.outer = outer
            node.children = (outer, node.inner)
            return node
        if shardable(node) and len(node.walk()) >= 2:
            return wrap(node)
        node.children = tuple(visit(child) for child in node.children)
        return node

    return visit(root)
