"""Lowering: logical :class:`Query` trees → :class:`PhysicalPlan`.

This is where physical alternatives are decided, using the same per-operator
cost steps the planner's join-order DP uses (so the DP's assumptions and the
lowered plan agree):

* a ``Select`` with a hashable equality predicate directly over a base
  relation becomes an :class:`~repro.core.exec.physical.IndexScan` on
  backends that can probe one (Database index pool, UWSDT template index);
* a ``Join`` whose *right* input is a bare base-relation scan becomes an
  :class:`~repro.core.exec.physical.IndexNestedLoopJoin` when
  :func:`~repro.core.planner.cost.index_join_step` beats
  :func:`~repro.core.planner.cost.join_step` under the estimated
  cardinalities (the join-order DP steers the bare scan to the right-hand
  side whenever that orientation wins, so the two layers compose);
* an ``Intersection`` is native on the Database backend and lowered through
  its ``A − (A − B)`` expansion on the representation backends.

Every physical node carries the planner's cardinality estimate for its
output, so executed plans can report estimated-vs-actual cardinality errors.
"""

from __future__ import annotations

from typing import Optional

from ...relational.errors import QueryError
from ...relational.predicates import AttrConst
from ..algebra import query as logical
from ..planner.observed import cardinality_key
from ..planner.cost import (
    DEFAULT_ARITY,
    CostModel,
    Statistics,
    equality_join_selectivity,
    estimate_forest,
    index_join_step,
    join_step,
    output_attributes,
)
from .backends import EngineBackend
from .physical import (
    Difference,
    Filter,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    Intersection,
    PhysicalOperator,
    PhysicalPlan,
    Product,
    Project,
    Rename,
    Scan,
    Union,
)

#: Values for the ``force_join`` knob (benchmarks compare the algorithms).
JOIN_ALGORITHMS = ("hash", "index-nested-loop")


def _hashable_equality(predicate) -> bool:
    if not isinstance(predicate, AttrConst) or predicate.op not in ("=", "=="):
        return False
    try:
        hash(predicate.constant)
    except TypeError:
        return False
    return True


class _Lowering:
    def __init__(
        self,
        backend: EngineBackend,
        statistics: Statistics,
        model: CostModel,
        force_join: Optional[str],
    ) -> None:
        self.backend = backend
        self.statistics = statistics
        self.model = model
        self.force_join = force_join
        #: Per-node estimates keyed by node identity, filled by one bottom-up
        #: pass before lowering starts (re-estimating every subtree here
        #: would be quadratic in the statistics' sample work).
        self.estimates = {}
        #: Every tree the memo was seeded from.  The memo is keyed by
        #: ``id(node)``, so seeded nodes must stay alive for the lowering's
        #: lifetime — a freed node (e.g. a transient ``expanded()`` tree)
        #: could otherwise alias a later allocation's id and serve it a
        #: stale estimate.
        self._anchored = []

    def seed_estimates(self, query: logical.Query) -> None:
        self._anchored.append(query)
        try:
            estimate_forest(query, self.statistics, self.model, self.estimates)
        except TypeError:
            # Unknown node types surface as a QueryError from lower() below,
            # with the query text attached, rather than a bare TypeError here.
            pass

    def estimate(self, node: logical.Query):
        cached = self.estimates.get(id(node))
        if cached is not None:
            return cached
        # Nodes synthesized during lowering (the intersection expansion)
        # extend the memo on first sight; their children are already cached.
        self.seed_estimates(node)
        return self.estimates.get(id(node))

    def estimated_rows(self, node: logical.Query) -> Optional[float]:
        estimate = self.estimate(node)
        return estimate.rows if estimate is not None else None

    def lower(self, node: logical.Query) -> PhysicalOperator:
        physical = self._lower_node(node)
        # Every physical node remembers the *semantic* identity of the
        # logical subtree it computes, so its executed cardinality can be
        # recorded under a key future planning passes will look up again —
        # and the base relations whose versions scope that observation.
        physical.cardinality_key = cardinality_key(node)
        physical.base_relation_names = tuple(sorted(node.base_relations()))
        return physical

    def _lower_node(self, node: logical.Query) -> PhysicalOperator:
        rows = self.estimated_rows(node)
        if isinstance(node, logical.BaseRelation):
            return Scan(node.name, rows)
        if isinstance(node, logical.Select):
            if (
                self.backend.supports_index_scan
                and isinstance(node.child, logical.BaseRelation)
                and _hashable_equality(node.predicate)
            ):
                return IndexScan(node.child.name, node.predicate, rows)
            return Filter(self.lower(node.child), node.predicate, rows)
        if isinstance(node, logical.Project):
            return Project(self.lower(node.child), node.attributes, rows)
        if isinstance(node, logical.Rename):
            return Rename(self.lower(node.child), node.old, node.new, rows)
        if isinstance(node, logical.Product):
            return Product(self.lower(node.left), self.lower(node.right), rows)
        if isinstance(node, logical.Union):
            return Union(self.lower(node.left), self.lower(node.right), rows)
        if isinstance(node, logical.Difference):
            return Difference(self.lower(node.left), self.lower(node.right), rows)
        if isinstance(node, logical.Intersection):
            if self.backend.native_intersection:
                return Intersection(self.lower(node.left), self.lower(node.right), rows)
            return self.lower(node.expanded())
        if isinstance(node, logical.Join):
            return self.lower_join(node, rows)
        raise QueryError(
            "cannot lower query node to a physical operator:\n" + node.to_text("  ")
        )

    def lower_join(self, node: logical.Join, rows: float) -> PhysicalOperator:
        left = self.lower(node.left)
        right = self.lower(node.right)
        applicable = (
            self.backend.supports_index_join
            and isinstance(right, Scan)
            and self.force_join != "hash"
        )
        if applicable and self.force_join != "index-nested-loop":
            # Same cost comparison as the join-order DP: hash build+probe
            # versus per-outer-tuple probes of the engine's cached index.
            left_estimate = self.estimate(node.left)
            right_estimate = self.estimate(node.right)
            if left_estimate is None or right_estimate is None:
                applicable = False
            else:
                selectivity = equality_join_selectivity(
                    left_estimate.sample, node.left_attr, right_estimate.sample, node.right_attr
                )
                attributes = output_attributes(node, self.statistics)
                out_arity = len(attributes) if attributes is not None else DEFAULT_ARITY
                _, hash_cost = join_step(
                    left_estimate.rows, right_estimate.rows, selectivity, out_arity, self.model
                )
                _, inlj_cost = index_join_step(
                    left_estimate.rows, right_estimate.rows, selectivity, out_arity, self.model
                )
                applicable = inlj_cost < hash_cost
        if applicable:
            return IndexNestedLoopJoin(left, right, node.left_attr, node.right_attr, rows)
        return HashJoin(left, right, node.left_attr, node.right_attr, rows)


def lower(
    query: logical.Query,
    backend: EngineBackend,
    statistics: Optional[Statistics] = None,
    force_join: Optional[str] = None,
) -> PhysicalPlan:
    """Lower a logical query tree into a physical plan for ``backend``.

    ``statistics`` should be the statistics the logical plan was built with
    (physical choices then see the same cardinality estimates); without
    them, lowering falls back to default statistics for the backend's
    engine kind.  ``force_join`` overrides the hash-vs-index choice where an
    index join is structurally possible (``"hash"`` / ``"index-nested-loop"``).
    """
    if force_join is not None and force_join not in JOIN_ALGORITHMS:
        raise ValueError(f"unknown join algorithm {force_join!r}; expected {JOIN_ALGORITHMS}")
    if statistics is None:
        statistics = Statistics(engine=backend.kind)
    from ...obs.trace import get_tracer

    with get_tracer().span("lowering", engine=backend.kind):
        lowering = _Lowering(backend, statistics, statistics.cost_model(), force_join)
        lowering.seed_estimates(query)
        root = lowering.lower(query)
        if backend.kind == "columnar":
            from .columnar import insert_columnar_boundaries

            root = insert_columnar_boundaries(root, backend)
        elif backend.kind == "sharded":
            from .shard import insert_shard_boundaries

            root = insert_shard_boundaries(root, backend)
        physical = PhysicalPlan(root, backend.kind)
        from ...analysis import invariants

        if invariants.verification_enabled():
            from ...analysis.schema import SchemaContext

            certain_base = None
            if backend.kind == "columnar":
                certain_base = backend.certain_base
            invariants.verify_physical(
                physical,
                backend=backend,
                schema_context=SchemaContext.from_statistics(statistics),
                certain_base=certain_base,
            )
        return physical
