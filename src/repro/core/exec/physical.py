"""Physical operator trees: what the engines actually execute.

A :class:`PhysicalPlan` is the lowered form of a logical
:class:`~repro.core.algebra.query.Query` tree: every logical operator has
been mapped to a concrete algorithm (``Select`` over an equality on a base
relation becomes an :class:`IndexScan`; a ``Join`` becomes a
:class:`HashJoin` or an :class:`IndexNestedLoopJoin` depending on the cost
model and index availability).  The plan is engine-agnostic — executing it
against an :class:`~repro.core.exec.backends.EngineBackend` produces a
classical relation on a Database and extends the representation in place on
a WSD/UWSDT, exactly as the paper's ``Q̂`` convention prescribes.

Execution records an :class:`~repro.core.exec.metrics.OperatorMetrics` per
node (rows in/out, wall time, estimated vs actual cardinality), which
``PhysicalPlan.metrics()`` rolls up and ``PhysicalPlan.explain()`` renders
next to the chosen operators.
"""

from __future__ import annotations

import time
from typing import Any, FrozenSet, List, Optional, Sequence, Tuple

from ...obs.metrics import LATENCY_BUCKETS, QERROR_BUCKETS, get_registry
from ...obs.trace import get_tracer
from ...relational.errors import QueryError
from ...relational.predicates import Predicate
from .metrics import ExecutionMetrics, OperatorMetrics


class PhysicalOperator:
    """Base class of physical plan nodes."""

    op_name = "physical"

    def __init__(
        self,
        children: Tuple["PhysicalOperator", ...] = (),
        estimated_rows: Optional[float] = None,
    ) -> None:
        self.children = tuple(children)
        self.estimated_rows = estimated_rows
        #: Filled in by execution (None until the node has run).
        self.metrics: Optional[OperatorMetrics] = None
        #: Semantic cardinality key of the logical subtree this operator was
        #: lowered from, attached by :mod:`~repro.core.exec.lower` (None for
        #: hand-built plans).  Execution stamps it onto the operator's
        #: metrics so observations land in the planner-consumable store.
        self.cardinality_key: Optional[str] = None
        #: Sorted base relations the lowered subtree reads.
        self.base_relation_names: Tuple[str, ...] = ()

    def label(self) -> str:
        """One-line rendering of this operator (no children)."""
        return self.op_name

    def walk(self) -> List["PhysicalOperator"]:
        """All nodes of the subtree, children before parents (execution order)."""
        nodes: List[PhysicalOperator] = []
        for child in self.children:
            nodes.extend(child.walk())
        nodes.append(self)
        return nodes


class Scan(PhysicalOperator):
    """Full scan of a stored base relation."""

    op_name = "Scan"

    def __init__(self, relation: str, estimated_rows: Optional[float] = None) -> None:
        super().__init__((), estimated_rows)
        self.relation = relation

    def label(self) -> str:
        return f"Scan({self.relation})"


class IndexScan(PhysicalOperator):
    """Equality selection over a base relation served by a hash-index probe.

    On a Database the probe hits the engine's shared
    :class:`~repro.relational.indexes.IndexPool`; on a UWSDT it hits the
    cached ``template_index`` (probing the constant plus the ``?``
    placeholder key, per Figure 16's uncertain-field path).
    """

    op_name = "IndexScan"

    def __init__(
        self, relation: str, predicate: Predicate, estimated_rows: Optional[float] = None
    ) -> None:
        super().__init__((), estimated_rows)
        self.relation = relation
        self.predicate = predicate

    def label(self) -> str:
        return f"IndexScan({self.relation}, {self.predicate!r})"


class Filter(PhysicalOperator):
    """Selection σ_pred over an arbitrary input."""

    op_name = "Filter"

    def __init__(
        self,
        child: PhysicalOperator,
        predicate: Predicate,
        estimated_rows: Optional[float] = None,
    ) -> None:
        super().__init__((child,), estimated_rows)
        self.predicate = predicate

    def label(self) -> str:
        return f"Filter({self.predicate!r})"


class Project(PhysicalOperator):
    """Projection π_U (set semantics)."""

    op_name = "Project"

    def __init__(
        self,
        child: PhysicalOperator,
        attributes: Sequence[str],
        estimated_rows: Optional[float] = None,
    ) -> None:
        super().__init__((child,), estimated_rows)
        self.attributes = tuple(attributes)

    def label(self) -> str:
        return f"Project({', '.join(self.attributes)})"


class Rename(PhysicalOperator):
    """Attribute renaming δ."""

    op_name = "Rename"

    def __init__(
        self,
        child: PhysicalOperator,
        old: str,
        new: str,
        estimated_rows: Optional[float] = None,
    ) -> None:
        super().__init__((child,), estimated_rows)
        self.old = old
        self.new = new

    def label(self) -> str:
        return f"Rename({self.old}→{self.new})"


class Product(PhysicalOperator):
    """Cartesian product ×."""

    op_name = "Product"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        estimated_rows: Optional[float] = None,
    ) -> None:
        super().__init__((left, right), estimated_rows)


class Union(PhysicalOperator):
    """Union ∪."""

    op_name = "Union"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        estimated_rows: Optional[float] = None,
    ) -> None:
        super().__init__((left, right), estimated_rows)


class Difference(PhysicalOperator):
    """Difference −."""

    op_name = "Difference"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        estimated_rows: Optional[float] = None,
    ) -> None:
        super().__init__((left, right), estimated_rows)


class Intersection(PhysicalOperator):
    """Native intersection ∩ (Database backend only; the representation
    engines execute the lowered ``A − (A − B)`` expansion instead)."""

    op_name = "Intersection"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        estimated_rows: Optional[float] = None,
    ) -> None:
        super().__init__((left, right), estimated_rows)


class Materialize(PhysicalOperator):
    """Row handle → :class:`~repro.core.exec.columnar.ColumnBatch` boundary.

    Inserted by :func:`~repro.core.exec.columnar.insert_columnar_boundaries`
    at the edge of a columnar region; ``Materialize(Scan)`` is the
    vectorized scan.  Only the columnar backend executes these.
    """

    op_name = "Materialize"

    def __init__(
        self, child: PhysicalOperator, estimated_rows: Optional[float] = None
    ) -> None:
        super().__init__((child,), estimated_rows)


class Dematerialize(PhysicalOperator):
    """Batch → row-handle boundary (restores set semantics on the way out)."""

    op_name = "Dematerialize"

    def __init__(
        self, child: PhysicalOperator, estimated_rows: Optional[float] = None
    ) -> None:
        super().__init__((child,), estimated_rows)


class Exchange(PhysicalOperator):
    """Shard boundary: the subtree below is hash-partitioned by world-set
    component and executed once per shard in the worker pool.

    Inserted by :func:`~repro.core.exec.shard.insert_shard_boundaries`
    around component-confined subtrees (per-tuple operators only); only the
    sharded backend executes it — via the enclosing :class:`Gather`, which
    hands the whole pair to ``backend.gather``.  After execution its
    metrics carry the coordination overhead (partition + ship time not
    accounted to the subtree's own operators) and ``shard_rows`` the
    per-shard result row counts for skew reporting.
    """

    op_name = "Exchange"

    def __init__(
        self,
        child: PhysicalOperator,
        workers: int,
        estimated_rows: Optional[float] = None,
    ) -> None:
        super().__init__((child,), estimated_rows)
        self.workers = workers
        #: Per-shard result row counts, filled in by ``backend.gather``.
        self.shard_rows: List[int] = []
        #: Wall time of the parent-side merge, filled in by ``backend.gather``.
        self.merge_seconds: float = 0.0

    def label(self) -> str:
        return f"Exchange(workers={self.workers})"


class Gather(PhysicalOperator):
    """Merge boundary over an :class:`Exchange`: collects the per-shard
    results back into the parent engine (template rows under their original
    tuple ids, evolved components replacing the shipped originals)."""

    op_name = "Gather"

    def __init__(
        self, child: Exchange, estimated_rows: Optional[float] = None
    ) -> None:
        super().__init__((child,), estimated_rows)


class HashJoin(PhysicalOperator):
    """Equi-join via an ephemeral build-and-probe hash table."""

    op_name = "HashJoin"

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_attr: str,
        right_attr: str,
        estimated_rows: Optional[float] = None,
    ) -> None:
        super().__init__((left, right), estimated_rows)
        self.left_attr = left_attr
        self.right_attr = right_attr

    def label(self) -> str:
        return f"HashJoin({self.left_attr} = {self.right_attr})"


class IndexNestedLoopJoin(PhysicalOperator):
    """Equi-join probing the engine's cached index over a base relation.

    The *inner* child must be a :class:`Scan` of a stored relation: the
    backend never executes it — each outer tuple probes the engine's
    persistent hash index (Database :class:`~repro.relational.indexes.IndexPool`
    / ``UWSDT.template_index``) instead.
    """

    op_name = "IndexNestedLoopJoin"

    def __init__(
        self,
        outer: PhysicalOperator,
        inner: Scan,
        left_attr: str,
        right_attr: str,
        estimated_rows: Optional[float] = None,
    ) -> None:
        super().__init__((outer, inner), estimated_rows)
        self.outer = outer
        self.inner = inner
        self.left_attr = left_attr
        self.right_attr = right_attr

    def label(self) -> str:
        return (
            f"IndexNestedLoopJoin({self.left_attr} = "
            f"{self.inner.relation}.{self.right_attr})"
        )


class ExecutionResult:
    """A query result bundled with its execution metrics and physical plan.

    ``value`` is what ``Query.run`` returns without metrics collection: the
    result :class:`~repro.relational.relation.Relation` on a Database, the
    result relation's name on a WSD/UWSDT.
    """

    def __init__(self, value: Any, metrics: ExecutionMetrics, physical: "PhysicalPlan") -> None:
        self.value = value
        self.metrics = metrics
        self.physical = physical

    def __repr__(self) -> str:
        return (
            f"ExecutionResult({self.value!r}, {len(self.metrics.records)} operators, "
            f"{self.metrics.total_seconds * 1e3:.3f} ms)"
        )


class PhysicalPlan:
    """An executable physical operator tree for one engine kind."""

    def __init__(self, root: PhysicalOperator, engine: str) -> None:
        self.root = root
        self.engine = engine

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(self, backend: Any, result_name: str = "result") -> Any:
        """Run the plan against ``backend``; returns the backend's result
        (the result :class:`~repro.relational.relation.Relation` on a
        Database, the result relation's *name* on a WSD/UWSDT)."""
        if backend.kind != self.engine:
            raise QueryError(
                f"plan lowered for the {self.engine!r} engine cannot run on "
                f"a {backend.kind!r} backend"
            )
        backend.begin(result_name)
        handle = self._execute(self.root, backend, result_name)
        return backend.finish(handle, result_name)

    def _execute(self, node: PhysicalOperator, backend: Any, result_name: Optional[str]) -> Any:
        tracer = get_tracer()
        if not tracer.enabled:
            # Strict fast path: one attribute check, no span objects.
            return self._execute_node(node, backend, result_name)
        # The span covers the whole subtree (children nest inside it), so
        # its duration is *cumulative* time; ``OperatorMetrics.seconds``
        # stays the operator's own self time.
        with tracer.span(f"execute-operator:{node.op_name}", label=node.label()) as span:
            handle = self._execute_node(node, backend, result_name)
            if node.metrics is not None:
                span.annotate(
                    rows_out=node.metrics.rows_out,
                    self_seconds=node.metrics.seconds,
                    estimated_rows=node.metrics.estimated_rows,
                )
        return handle

    def _execute_node(self, node: PhysicalOperator, backend: Any, result_name: Optional[str]) -> Any:
        if isinstance(node, IndexNestedLoopJoin):
            # The inner Scan is never executed: the backend probes the
            # engine's cached index over the stored relation directly.
            outer = self._execute(node.outer, backend, None)
            rows_in = (backend.row_count(outer), backend.base_rows(node.inner.relation))
            arity_in = (backend.arity(outer), backend.base_arity(node.inner.relation))
            start = time.perf_counter()
            handle = backend.index_join(
                outer, node.inner.relation, node.left_attr, node.right_attr, result_name
            )
            seconds = time.perf_counter() - start
            self._record(node, backend, handle, rows_in, arity_in, seconds)
            return handle

        if isinstance(node, Gather):
            # The Exchange subtree never executes here: the sharded backend
            # partitions the engine, runs the subtree once per shard in the
            # worker pool, merges the results, and attributes the workers'
            # per-operator metrics onto the subtree's nodes.
            exchange = node.children[0]
            start = time.perf_counter()
            handle = backend.gather(exchange, result_name)
            total = time.perf_counter() - start
            shipped = exchange.metrics.rows_out if exchange.metrics is not None else 0
            seconds = max(0.0, total - self.cumulative_seconds(exchange))
            self._record(
                node,
                backend,
                handle,
                (shipped,),
                (backend.arity(handle),),
                seconds,
            )
            return handle

        handles = [self._execute(child, backend, None) for child in node.children]
        rows_in = tuple(backend.row_count(handle) for handle in handles)
        arity_in = tuple(backend.arity(handle) for handle in handles)
        start = time.perf_counter()
        if isinstance(node, Scan):
            handle = backend.scan(node.relation, result_name)
        elif isinstance(node, IndexScan):
            handle = backend.index_scan(node.relation, node.predicate, result_name)
        elif isinstance(node, Filter):
            handle = backend.filter(handles[0], node.predicate, result_name)
        elif isinstance(node, Project):
            handle = backend.project(handles[0], node.attributes, result_name)
        elif isinstance(node, Rename):
            handle = backend.rename(handles[0], node.old, node.new, result_name)
        elif isinstance(node, Product):
            handle = backend.product(handles[0], handles[1], result_name)
        elif isinstance(node, Union):
            handle = backend.union(handles[0], handles[1], result_name)
        elif isinstance(node, Difference):
            handle = backend.difference(handles[0], handles[1], result_name)
        elif isinstance(node, Intersection):
            handle = backend.intersection(handles[0], handles[1], result_name)
        elif isinstance(node, HashJoin):
            handle = backend.hash_join(
                handles[0], handles[1], node.left_attr, node.right_attr, result_name
            )
        elif isinstance(node, Materialize):
            handle = backend.materialize(handles[0], result_name)
        elif isinstance(node, Dematerialize):
            handle = backend.dematerialize(handles[0], result_name)
        else:
            raise QueryError(f"unknown physical operator {node.label()}")
        seconds = time.perf_counter() - start
        if isinstance(node, (Scan, IndexScan)):
            rows_in = (backend.base_rows(node.relation),)
            arity_in = (backend.base_arity(node.relation),)
        self._record(node, backend, handle, rows_in, arity_in, seconds)
        return handle

    def _record(
        self,
        node: PhysicalOperator,
        backend: Any,
        handle: Any,
        rows_in: Tuple[int, ...],
        arity_in: Tuple[int, ...],
        seconds: float,
    ) -> None:
        node.metrics = OperatorMetrics(
            operator=node.op_name,
            label=node.label(),
            rows_in=rows_in,
            rows_out=backend.row_count(handle),
            arity_in=arity_in,
            arity_out=backend.arity(handle),
            seconds=seconds,
            estimated_rows=node.estimated_rows,
            semantic_key=node.cardinality_key,
            relations=node.base_relation_names,
        )
        # Feed the process-wide registry: one histogram observation per
        # executed operator (not per tuple — constant overhead per node).
        registry = get_registry()
        registry.histogram(
            "repro.exec.operator_seconds",
            LATENCY_BUCKETS,
            operator=node.op_name,
            backend=backend.kind,
        ).observe(seconds)
        error = node.metrics.cardinality_error
        if error is not None:
            registry.histogram(
                "repro.exec.operator_qerror",
                QERROR_BUCKETS,
                operator=node.op_name,
                backend=backend.kind,
            ).observe(error)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def operators(self) -> List[PhysicalOperator]:
        """All nodes, children before parents (execution order)."""
        return self.root.walk()

    def uses(self, op_name: str) -> bool:
        """True iff some operator of the plan is of the named kind."""
        return any(node.op_name == op_name for node in self.operators())

    def metrics(self) -> ExecutionMetrics:
        """Roll up the per-operator records (empty before execution)."""
        return ExecutionMetrics(
            self.engine,
            [node.metrics for node in self.operators() if node.metrics is not None],
        )

    def explain(self) -> str:
        """Human-readable physical tree with estimates (and, once the plan
        has executed, the actual cardinalities and timings)."""
        header = f"physical plan ({self.engine})"
        lines = [header, "=" * len(header)]
        lines.extend(self._render(self.root, "", ""))
        return "\n".join(lines)

    def cumulative_seconds(self, node: Optional[PhysicalOperator] = None) -> float:
        """Self time of ``node`` plus all of its descendants (0 before
        execution; unexecuted nodes such as the INLJ's inner scan count 0)."""
        node = self.root if node is None else node
        own = node.metrics.seconds if node.metrics is not None else 0.0
        return own + sum(self.cumulative_seconds(child) for child in node.children)

    def explain_analyze(
        self,
        observed_keys: FrozenSet[str] = frozenset(),
        header_lines: Sequence[str] = (),
        certainty: Optional[Any] = None,
    ) -> str:
        """The executed plan, annotated per node with estimated vs actual
        rows, q-error, self vs cumulative time, and per-child input rows.

        ``observed_keys`` are the semantic cardinality keys whose estimates
        came from executed-cardinality feedback rather than samples — nodes
        lowered from those subtrees are tagged ``est←feedback``.  Must run
        after :meth:`execute`; unexecuted nodes render without actuals.
        ``certainty`` (a :class:`~repro.analysis.certainty.CertaintyContext`)
        additionally tags each node with its placeholder-certainty verdict.
        """
        header = f"EXPLAIN ANALYZE ({self.engine})"
        lines = [header, "=" * len(header)]
        lines.extend(header_lines)
        metrics = self.metrics()
        worst = metrics.max_cardinality_error()
        summary = (
            f"total {metrics.total_seconds * 1e3:.3f} ms across "
            f"{len(metrics.records)} operators"
        )
        if worst is not None:
            summary += f"; worst q-error {worst:.2f}"
        lines.append(summary)
        lines.extend(self._render_analyze(self.root, "", "", observed_keys, certainty))
        return "\n".join(lines)

    def _render_analyze(
        self,
        node: PhysicalOperator,
        prefix: str,
        child_prefix: str,
        observed_keys: FrozenSet[str],
        certainty: Optional[Any] = None,
    ) -> List[str]:
        annotations: List[str] = []
        if node.estimated_rows is not None:
            source = (
                "est←feedback"
                if node.cardinality_key is not None and node.cardinality_key in observed_keys
                else "est"
            )
            annotations.append(f"{source} {node.estimated_rows:,.0f}")
        record = node.metrics
        if record is not None:
            if record.rows_in:
                annotations.append(
                    "in " + " × ".join(f"{rows:,}" for rows in record.rows_in)
                )
            annotations.append(f"actual {record.rows_out:,}")
            if record.cardinality_error is not None:
                annotations.append(f"q-err {record.cardinality_error:.2f}")
            annotations.append(f"self {record.seconds * 1e3:.3f} ms")
            annotations.append(f"cum {self.cumulative_seconds(node) * 1e3:.3f} ms")
        elif node.op_name == "Scan":
            annotations.append("not executed (index probe target)")
        if isinstance(node, Exchange) and node.shard_rows:
            annotations.append(
                "shard rows "
                + "/".join(f"{rows:,}" for rows in node.shard_rows)
                + f" (max {max(node.shard_rows):,}, min {min(node.shard_rows):,})"
            )
            annotations.append(f"merge {node.merge_seconds * 1e3:.3f} ms")
        if certainty is not None:
            from ...analysis.certainty import UNKNOWN, physical_certainty

            verdict = physical_certainty(node.base_relation_names, certainty)
            if verdict != UNKNOWN:
                annotations.append(verdict)
        suffix = f"  [{' | '.join(annotations)}]" if annotations else ""
        lines = [f"{prefix}{node.label()}{suffix}"]
        for index, child in enumerate(node.children):
            last = index == len(node.children) - 1
            branch = "└── " if last else "├── "
            extend = "    " if last else "│   "
            lines.extend(
                self._render_analyze(
                    child, child_prefix + branch, child_prefix + extend, observed_keys,
                    certainty,
                )
            )
        return lines

    def _render(self, node: PhysicalOperator, prefix: str, child_prefix: str) -> List[str]:
        annotations = []
        if node.estimated_rows is not None:
            annotations.append(f"est {node.estimated_rows:,.0f} rows")
        if node.metrics is not None:
            annotations.append(
                f"actual {node.metrics.rows_out:,} rows, "
                f"{node.metrics.seconds * 1e3:.3f} ms"
            )
        suffix = f"  [{'; '.join(annotations)}]" if annotations else ""
        lines = [f"{prefix}{node.label()}{suffix}"]
        for index, child in enumerate(node.children):
            last = index == len(node.children) - 1
            branch = "└── " if last else "├── "
            extend = "    " if last else "│   "
            lines.extend(self._render(child, child_prefix + branch, child_prefix + extend))
        return lines

    def __repr__(self) -> str:
        return f"PhysicalPlan({self.engine}, {len(self.operators())} operators)"
