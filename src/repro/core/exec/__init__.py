"""The physical execution layer: plans, backends, metrics, self-tuning.

The logical planner produces a :class:`~repro.core.planner.Plan`; this
package *lowers* its chosen tree into a :class:`PhysicalPlan` of concrete
operators (``Scan`` / ``IndexScan`` / ``Filter`` / ``HashJoin`` /
``IndexNestedLoopJoin`` / ``Product`` / ``Project`` / ``Rename`` /
``Union`` / ``Difference`` / ``Intersection``) and executes it through an
:class:`EngineBackend` — one per representation system, all wrapping the
operator modules that implement the paper's semantics.  Execution records
per-operator runtime metrics, and :mod:`repro.core.exec.feedback` folds
them back into the calibrated cost profile (the self-tuning loop).

* :mod:`repro.core.exec.physical` — operator nodes, the executor,
  ``PhysicalPlan.explain()``.
* :mod:`repro.core.exec.backends` — the ``EngineBackend`` protocol and the
  Database/WSD/UWSDT implementations (the only place engine types are
  dispatched on).
* :mod:`repro.core.exec.lower`    — logical → physical lowering, including
  the hash-join vs index-nested-loop-join cost decision.
* :mod:`repro.core.exec.metrics`  — ``OperatorMetrics`` /
  ``ExecutionMetrics`` (rows in/out, wall time, estimated vs actual
  cardinality).
* :mod:`repro.core.exec.feedback` — exponentially weighted cost-constant
  updates persisted through the ``repro-cost-profile`` JSON path, plus
  actual-cardinality feedback into the statistics catalog.
"""

from .backends import (
    DatabaseBackend,
    EngineBackend,
    UWSDTBackend,
    WSDBackend,
    backend_for,
    index_pool_for,
)
from .columnar import (
    BACKEND_ENV,
    BACKEND_SPECS,
    SHARD_WORKERS_ENV,
    ColumnBatch,
    ColumnarBackend,
    insert_columnar_boundaries,
    resolve_backend,
)
from .feedback import (
    DEFAULT_ALPHA,
    FeedbackResult,
    apply_feedback,
    cost_model_error,
    fold_metrics,
    observed_cost_units,
    record_into_catalog,
)
from .lower import JOIN_ALGORITHMS, lower
from .metrics import ExecutionMetrics, OperatorMetrics
from .physical import (
    Dematerialize,
    Difference,
    Exchange,
    ExecutionResult,
    Filter,
    Gather,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    Intersection,
    Materialize,
    PhysicalOperator,
    PhysicalPlan,
    Product,
    Project,
    Rename,
    Scan,
    Union,
)
from .shard import (
    DEFAULT_WORKERS,
    SHARDABLE_OPS,
    ShardedBackend,
    insert_shard_boundaries,
    partition_uwsdt_components,
    reset_shard_pool,
)

__all__ = [
    "DatabaseBackend",
    "EngineBackend",
    "UWSDTBackend",
    "WSDBackend",
    "backend_for",
    "index_pool_for",
    "BACKEND_ENV",
    "BACKEND_SPECS",
    "SHARD_WORKERS_ENV",
    "ColumnBatch",
    "ColumnarBackend",
    "insert_columnar_boundaries",
    "resolve_backend",
    "DEFAULT_WORKERS",
    "SHARDABLE_OPS",
    "ShardedBackend",
    "insert_shard_boundaries",
    "partition_uwsdt_components",
    "reset_shard_pool",
    "DEFAULT_ALPHA",
    "FeedbackResult",
    "apply_feedback",
    "cost_model_error",
    "fold_metrics",
    "observed_cost_units",
    "record_into_catalog",
    "JOIN_ALGORITHMS",
    "lower",
    "ExecutionMetrics",
    "OperatorMetrics",
    "Dematerialize",
    "Difference",
    "Exchange",
    "ExecutionResult",
    "Filter",
    "Gather",
    "HashJoin",
    "IndexNestedLoopJoin",
    "IndexScan",
    "Intersection",
    "Materialize",
    "PhysicalOperator",
    "PhysicalPlan",
    "Product",
    "Project",
    "Rename",
    "Scan",
    "Union",
]
