"""Engine backends: one executor per representation system.

The physical layer talks to engines exclusively through the
:class:`EngineBackend` interface — ``Query.run`` no longer dispatches on
engine types at all.  Each backend wraps the corresponding operator module
(:mod:`~repro.relational.algebra` for classical relations,
:mod:`~repro.core.algebra.wsd_ops` for WSDs,
:mod:`~repro.core.algebra.uwsdt_ops` for UWSDTs) behind a uniform
handle-passing protocol:

* on a :class:`~repro.relational.database.Database` a handle is a
  :class:`~repro.relational.relation.Relation` (operators are pure
  functions);
* on a :class:`~repro.core.wsd.WSD` / :class:`~repro.core.uwsdt.UWSDT` a
  handle is a relation *name* — the operators extend the representation in
  place, one intermediate relation per operator, preserving correlations
  with the input (the paper's ``Q̂`` convention).

Capability flags (``supports_index_scan``, ``supports_index_join``,
``native_intersection``) tell the lowering pass which physical operators
this backend can execute.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Optional, Sequence

from ...relational import algebra as relational_algebra
from ...relational.database import Database
from ...relational.errors import QueryError
from ...relational.indexes import IndexPool
from ...relational.predicates import Predicate
from ...relational.relation import Relation
from ..algebra import uwsdt_ops, wsd_ops
from ..uwsdt import UWSDT
from ..wsd import WSD

#: Attribute under which :func:`index_pool_for` stores the pool on a Database.
INDEX_POOL_ATTRIBUTE = "_index_pool"


def index_pool_for(database: Database) -> IndexPool:
    """The hash-index pool attached to a Database, creating it on first use.

    Persisting the pool on the engine means repeated queries — and the index
    nested-loop join — probe indexes built once, instead of one throwaway
    pool per ``Query.run``.
    """
    pool = getattr(database, INDEX_POOL_ATTRIBUTE, None)
    if pool is None:
        pool = IndexPool()
        try:
            setattr(database, INDEX_POOL_ATTRIBUTE, pool)
        except AttributeError:
            pass  # engine type without the slot: still usable, just unattached
    return pool


class EngineBackend:
    """The operator interface the physical executor drives.

    Handles are opaque to the executor; only the backend interprets them.
    ``result_name`` is non-None exactly for the plan's root operator.
    """

    kind = "abstract"
    supports_index_scan = False
    supports_index_join = False
    native_intersection = False

    def __init__(self, engine: Any) -> None:
        self.engine = engine

    # -- lifecycle --------------------------------------------------------- #

    def begin(self, result_name: str) -> None:
        """Reset per-execution state (intermediate-name generators etc.)."""

    def finish(self, handle, result_name: str):
        """Turn the root handle into the value ``Query.run`` returns."""
        return handle

    # -- introspection ----------------------------------------------------- #

    def row_count(self, handle) -> int:
        raise NotImplementedError

    def arity(self, handle) -> int:
        raise NotImplementedError

    def base_rows(self, relation_name: str) -> int:
        """Cardinality of a stored relation (for scan/index-join metrics)."""
        raise NotImplementedError

    def base_arity(self, relation_name: str) -> int:
        raise NotImplementedError


class DatabaseBackend(EngineBackend):
    """Classical one-world evaluation over pure relational operators."""

    kind = "database"
    supports_index_scan = True
    supports_index_join = True
    native_intersection = True

    def __init__(self, engine: Database) -> None:
        super().__init__(engine)
        self.pool = index_pool_for(engine)

    def finish(self, handle: Relation, result_name: str) -> Relation:
        return handle.copy(result_name)

    # -- operators --------------------------------------------------------- #

    def scan(self, name: str, result_name: Optional[str]) -> Relation:
        return self.engine.relation(name)

    def index_scan(self, name: str, predicate: Predicate, result_name: Optional[str]) -> Relation:
        relation = self.engine.relation(name)
        index = self.pool.hash_index(relation, (predicate.attribute,))
        return relational_algebra.select(relation, predicate, index=index)

    def filter(self, child: Relation, predicate: Predicate, result_name: Optional[str]) -> Relation:
        return relational_algebra.select(child, predicate)

    def project(self, child: Relation, attributes: Sequence[str], result_name) -> Relation:
        return relational_algebra.project(child, attributes)

    def rename(self, child: Relation, old: str, new: str, result_name) -> Relation:
        return relational_algebra.rename(child, old, new)

    def product(self, left: Relation, right: Relation, result_name) -> Relation:
        return relational_algebra.product(left, right)

    def union(self, left: Relation, right: Relation, result_name) -> Relation:
        return relational_algebra.union(left, right)

    def difference(self, left: Relation, right: Relation, result_name) -> Relation:
        return relational_algebra.difference(left, right)

    def intersection(self, left: Relation, right: Relation, result_name) -> Relation:
        return relational_algebra.intersection(left, right)

    def hash_join(
        self, left: Relation, right: Relation, left_attr: str, right_attr: str, result_name
    ) -> Relation:
        return relational_algebra.equi_join(left, right, left_attr, right_attr)

    def index_join(
        self, outer: Relation, inner_name: str, outer_attr: str, inner_attr: str, result_name
    ) -> Relation:
        """Probe the pool's cached index over the stored inner relation."""
        inner = self.engine.relation(inner_name)
        index = self.pool.hash_index(inner, (inner_attr,))
        schema = outer.schema.concat(inner.schema, None)
        result = Relation(schema)
        position = outer.schema.position(outer_attr)
        for row in outer:
            for inner_row in index.lookup(row[position]):
                result.insert(row + inner_row)
        return result

    # -- introspection ----------------------------------------------------- #

    def row_count(self, handle: Relation) -> int:
        return len(handle)

    def arity(self, handle: Relation) -> int:
        return handle.schema.arity

    def base_rows(self, relation_name: str) -> int:
        return len(self.engine.relation(relation_name))

    def base_arity(self, relation_name: str) -> int:
        return self.engine.relation(relation_name).schema.arity


def _name_generator(prefix: str, schema) -> Iterator[str]:
    """Fresh intermediate relation names, skipping any already in ``schema``."""
    for index in itertools.count(1):
        name = f"{prefix}{index}"
        if schema is not None and schema.has_relation(name):
            continue
        yield name


class _RepresentationBackend(EngineBackend):
    """Shared machinery of the in-place WSD/UWSDT backends."""

    def begin(self, result_name: str) -> None:
        self._names = _name_generator("__q", self.engine.schema)

    def target(self, result_name: Optional[str]) -> str:
        return result_name if result_name is not None else next(self._names)

    def alias_name(self) -> str:
        """A fresh intermediate name (for the union-with-itself alias)."""
        return next(self._names)

    def arity(self, handle: str) -> int:
        return self.engine.schema.relation(handle).arity

    def base_arity(self, relation_name: str) -> int:
        return self.engine.schema.relation(relation_name).arity

    def base_rows(self, relation_name: str) -> int:
        return self.row_count(relation_name)


class WSDBackend(_RepresentationBackend):
    """The Figure 9 operators over world-set decompositions."""

    kind = "wsd"

    def scan(self, name: str, result_name: Optional[str]) -> str:
        if result_name is not None and result_name != name:
            wsd_ops.copy_relation(self.engine, name, result_name)
            return result_name
        return name

    def filter(self, child: str, predicate: Predicate, result_name) -> str:
        target = self.target(result_name)
        wsd_ops.select(self.engine, child, target, predicate)
        return target

    def project(self, child: str, attributes: Sequence[str], result_name) -> str:
        target = self.target(result_name)
        wsd_ops.project(self.engine, child, target, attributes)
        return target

    def rename(self, child: str, old: str, new: str, result_name) -> str:
        target = self.target(result_name)
        wsd_ops.rename(self.engine, child, target, old, new)
        return target

    def product(self, left: str, right: str, result_name) -> str:
        target = self.target(result_name)
        wsd_ops.product(self.engine, left, right, target)
        return target

    def union(self, left: str, right: str, result_name) -> str:
        if right == left:
            # Union of a relation with itself: tuple ids are derived from
            # the operand names, so alias one side to keep them distinct.
            alias = self.alias_name()
            wsd_ops.copy_relation(self.engine, right, alias)
            right = alias
        target = self.target(result_name)
        wsd_ops.union(self.engine, left, right, target)
        return target

    def difference(self, left: str, right: str, result_name) -> str:
        target = self.target(result_name)
        wsd_ops.difference(self.engine, left, right, target)
        return target

    def hash_join(self, left: str, right: str, left_attr: str, right_attr: str, result_name) -> str:
        target = self.target(result_name)
        wsd_ops.equi_join(self.engine, left, right, left_attr, right_attr, target)
        return target

    def row_count(self, handle: str) -> int:
        return len(self.engine.tuple_ids.get(handle, ()))


class UWSDTBackend(_RepresentationBackend):
    """The native Section 5 operators over template relations."""

    kind = "uwsdt"
    supports_index_scan = True
    supports_index_join = True

    def _copy(self, name: str, target: str) -> None:
        # Copy implemented as an identity rename (the existing device).
        attribute = self.engine.schema.relation(name).attributes[0]
        uwsdt_ops.rename(self.engine, name, target, attribute, attribute)

    def scan(self, name: str, result_name: Optional[str]) -> str:
        if result_name is not None and result_name != name:
            self._copy(name, result_name)
            return result_name
        return name

    def index_scan(self, name: str, predicate: Predicate, result_name) -> str:
        # uwsdt_ops.select probes the cached template index itself for
        # hashable equality predicates (the candidate fast path).
        return self.filter(name, predicate, result_name)

    def filter(self, child: str, predicate: Predicate, result_name) -> str:
        target = self.target(result_name)
        uwsdt_ops.select(self.engine, child, target, predicate)
        return target

    def project(self, child: str, attributes: Sequence[str], result_name) -> str:
        target = self.target(result_name)
        uwsdt_ops.project(self.engine, child, target, attributes)
        return target

    def rename(self, child: str, old: str, new: str, result_name) -> str:
        target = self.target(result_name)
        uwsdt_ops.rename(self.engine, child, target, old, new)
        return target

    def product(self, left: str, right: str, result_name) -> str:
        target = self.target(result_name)
        uwsdt_ops.product(self.engine, left, right, target)
        return target

    def union(self, left: str, right: str, result_name) -> str:
        if right == left:
            alias = self.alias_name()
            self._copy(right, alias)
            right = alias
        target = self.target(result_name)
        uwsdt_ops.union(self.engine, left, right, target)
        return target

    def difference(self, left: str, right: str, result_name) -> str:
        target = self.target(result_name)
        uwsdt_ops.difference(self.engine, left, right, target)
        return target

    def hash_join(self, left: str, right: str, left_attr: str, right_attr: str, result_name) -> str:
        target = self.target(result_name)
        uwsdt_ops.equi_join(self.engine, left, right, left_attr, right_attr, target)
        return target

    def index_join(self, outer: str, inner_name: str, outer_attr: str, inner_attr: str, result_name) -> str:
        target = self.target(result_name)
        uwsdt_ops.equi_join(
            self.engine,
            outer,
            inner_name,
            outer_attr,
            inner_attr,
            target,
            use_template_index=True,
        )
        return target

    def row_count(self, handle: str) -> int:
        return self.engine.template_size(handle)


def backend_for(engine: Any) -> EngineBackend:
    """The backend matching an engine object.

    This is the single place that maps engine types to executors —
    ``Query.run`` and the planner are engine-type agnostic.
    """
    if isinstance(engine, Database):
        return DatabaseBackend(engine)
    if isinstance(engine, UWSDT):
        return UWSDTBackend(engine)
    if isinstance(engine, WSD):
        return WSDBackend(engine)
    raise QueryError(
        f"cannot evaluate a query on {type(engine).__name__}; "
        "expected Database, WSD or UWSDT"
    )
