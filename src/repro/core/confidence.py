"""Confidence computation and the ``possible`` operator (Section 6, Figures 17–19).

These are the operators that look *across* worlds:

* ``conf(t)``        — probability that tuple ``t`` appears in a relation,
* ``possible(R)``    — tuples appearing in at least one world,
* ``possible_p(R)``  — possible tuples together with their confidences,
* ``certain(R)``     — tuples appearing in every world (derived).

The implementation follows the paper's algorithm: prune the components to
the columns relevant for the queried relation, normalize to a *tuple-level*
WSD (every tuple's fields in one component — this step can be exponential
in the worst case, which is unavoidable since certainty checking is
NP-hard), and then combine per-component matches with the independence
formula ``c := 1 − (1 − c) · (1 − conf_C)``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..relational.errors import RepresentationError
from ..relational.relation import Relation
from ..relational.schema import RelationSchema
from ..relational.values import BOTTOM, is_placeholder
from .component import Component, compose_all
from .fields import FieldRef
from .uwsdt import UWSDT
from .wsd import WSD

#: A possible tuple together with its confidence.
RankedTuple = Tuple[Tuple[Any, ...], float]


# --------------------------------------------------------------------------- #
# Tuple-level normalization
# --------------------------------------------------------------------------- #


def tuple_level_components(wsd: WSD, relation_name: str) -> List[Tuple[Component, List[Any]]]:
    """Group the components so every tuple of ``relation_name`` lives in one component.

    Returns ``(component, tuple_ids)`` pairs: the (possibly composed)
    component together with the tuple ids of ``relation_name`` it defines.
    Components not defining any field of ``relation_name`` are dropped (they
    cannot influence membership of its tuples).
    """
    relation_schema = wsd.schema.relation(relation_name)

    # Restrict each component to the columns of the queried relation.
    pruned: List[Component] = []
    for component in wsd.components:
        keep = [f for f in component.fields if f.relation == relation_name]
        if not keep:
            continue
        drop = [f for f in component.fields if f.relation != relation_name]
        reduced = component.project_away(drop) if drop else component
        if reduced is not None:
            pruned.append(reduced)

    # Union-find over tuple ids so all fields of one tuple end up together.
    groups: List[List[Component]] = []
    group_of_tuple: Dict[Any, int] = {}
    for component in pruned:
        tuple_ids = {f.tuple_id for f in component.fields}
        touching = sorted({group_of_tuple[t] for t in tuple_ids if t in group_of_tuple})
        if not touching:
            groups.append([component])
            index = len(groups) - 1
        else:
            index = touching[0]
            groups[index].append(component)
            for other in touching[1:]:
                groups[index].extend(groups[other])
                groups[other] = []
        for component_in_group in groups[index]:
            for field in component_in_group.fields:
                group_of_tuple[field.tuple_id] = index

    result: List[Tuple[Component, List[Any]]] = []
    for group in groups:
        if not group:
            continue
        composed = compose_all(group)
        tuple_ids = sorted({f.tuple_id for f in composed.fields}, key=repr)
        result.append((composed, tuple_ids))
    return result


def _tuple_values(
    component: Component,
    relation_name: str,
    tuple_id: Any,
    row: Tuple[Any, ...],
    attributes: Sequence[str],
    certain: Dict[str, Any],
) -> Optional[Tuple[Any, ...]]:
    """The values of one tuple in one local world, or None if the tuple is absent."""
    values: List[Any] = []
    for attribute in attributes:
        field = FieldRef(relation_name, tuple_id, attribute)
        if component.has_field(field):
            value = row[component.position(field)]
        elif attribute in certain:
            value = certain[attribute]
        else:
            return None
        if value is BOTTOM:
            return None
        values.append(value)
    return tuple(values)


# --------------------------------------------------------------------------- #
# WSD-level operators (Figures 17–19)
# --------------------------------------------------------------------------- #


def confidence(wsd: WSD, relation_name: str, values: Sequence[Any]) -> float:
    """``conf(t)``: probability that tuple ``values`` is in ``relation_name`` (Figure 17)."""
    if not wsd.is_probabilistic:
        raise RepresentationError("confidence computation requires a probabilistic WSD")
    target = tuple(values)
    attributes = wsd.schema.relation(relation_name).attributes
    if len(target) != len(attributes):
        raise RepresentationError(
            f"tuple {target!r} has arity {len(target)}, expected {len(attributes)}"
        )
    result = 0.0
    for component, tuple_ids in tuple_level_components(wsd, relation_name):
        component_confidence = 0.0
        for row_index, row in enumerate(component.rows):
            matched = False
            for tuple_id in tuple_ids:
                candidate = _tuple_values(component, relation_name, tuple_id, row, attributes, {})
                if candidate == target:
                    matched = True
                    break
            if matched:
                component_confidence += component.probability(row_index)
        result = 1.0 - (1.0 - result) * (1.0 - component_confidence)
    return result


def possible(wsd: WSD, relation_name: str) -> List[Tuple[Any, ...]]:
    """``possible(R)``: tuples appearing in at least one world (Figure 18)."""
    attributes = wsd.schema.relation(relation_name).attributes
    seen: List[Tuple[Any, ...]] = []
    seen_set = set()
    for component, tuple_ids in tuple_level_components(wsd, relation_name):
        for row in component.rows:
            for tuple_id in tuple_ids:
                candidate = _tuple_values(component, relation_name, tuple_id, row, attributes, {})
                if candidate is not None and candidate not in seen_set:
                    seen_set.add(candidate)
                    seen.append(candidate)
    return seen


def possible_with_confidence(wsd: WSD, relation_name: str) -> List[RankedTuple]:
    """``possible_p(R)``: possible tuples with their confidences (Figure 19)."""
    return [(row, confidence(wsd, relation_name, row)) for row in possible(wsd, relation_name)]


def certain(wsd: WSD, relation_name: str, tolerance: float = 1e-9) -> List[Tuple[Any, ...]]:
    """Tuples whose confidence is 1 (present in every world)."""
    return [
        row
        for row, conf in possible_with_confidence(wsd, relation_name)
        if conf >= 1.0 - tolerance
    ]


def possible_relation(wsd: WSD, relation_name: str, result_name: str = "possible") -> Relation:
    """Materialize ``possible(R)`` as an ordinary relation."""
    attributes = wsd.schema.relation(relation_name).attributes
    relation = Relation(RelationSchema(result_name, attributes))
    for row in possible(wsd, relation_name):
        relation.insert(row)
    return relation


# --------------------------------------------------------------------------- #
# UWSDT-level operators
# --------------------------------------------------------------------------- #


def _uwsdt_tuple_groups(uwsdt: UWSDT, relation_name: str):
    """Yield, per template tuple, its certain values and (optionally) composed component.

    Tuples sharing a component are grouped together so the independence
    combination remains correct for correlated tuples.
    """
    relation_schema = uwsdt.schema.relation(relation_name)
    attributes = relation_schema.attributes

    certain_rows: List[Tuple[Any, Dict[str, Any]]] = []
    uncertain_rows: List[Tuple[Any, Dict[str, Any], List[FieldRef]]] = []
    for tuple_id, values in uwsdt.template_rows(relation_name):
        value_map = dict(zip(attributes, values))
        placeholder_fields = [
            FieldRef(relation_name, tuple_id, a) for a in attributes if is_placeholder(value_map[a])
        ]
        if placeholder_fields:
            uncertain_rows.append((tuple_id, value_map, placeholder_fields))
        else:
            certain_rows.append((tuple_id, value_map))

    # Group uncertain tuples by the set of components they touch.
    component_groups: Dict[frozenset, List[Tuple[Any, Dict[str, Any], List[FieldRef]]]] = {}
    for entry in uncertain_rows:
        cids = frozenset(uwsdt.component_of(field) for field in entry[2])
        component_groups.setdefault(cids, []).append(entry)

    # Merge groups that share a component id.
    merged_groups: List[Tuple[set, List[Tuple[Any, Dict[str, Any], List[FieldRef]]]]] = []
    for cids, entries in component_groups.items():
        placed = False
        for group in merged_groups:
            if group[0] & cids:
                group[0].update(cids)
                group[1].extend(entries)
                placed = True
                break
        if not placed:
            merged_groups.append((set(cids), list(entries)))

    return attributes, certain_rows, merged_groups


def uwsdt_possible_with_confidence(uwsdt: UWSDT, relation_name: str) -> List[RankedTuple]:
    """``possible_p(R)`` natively on a UWSDT.

    Fully certain template tuples contribute confidence 1 directly; tuples
    with placeholders are resolved through their (composed) components.
    """
    attributes, certain_rows, groups = _uwsdt_tuple_groups(uwsdt, relation_name)

    confidences: Dict[Tuple[Any, ...], float] = {}
    order: List[Tuple[Any, ...]] = []

    def note(row: Tuple[Any, ...], component_confidence: float) -> None:
        if row not in confidences:
            confidences[row] = 0.0
            order.append(row)
        confidences[row] = 1.0 - (1.0 - confidences[row]) * (1.0 - component_confidence)

    for _, value_map in certain_rows:
        note(tuple(value_map[a] for a in attributes), 1.0)

    for cids, entries in groups:
        composed = compose_all([uwsdt.components[cid] for cid in sorted(cids)])
        per_row_matches: Dict[Tuple[Any, ...], float] = {}
        for row_index, row in enumerate(composed.rows):
            produced = set()
            for tuple_id, value_map, placeholder_fields in entries:
                values: List[Any] = []
                absent = False
                for attribute in attributes:
                    field = FieldRef(relation_name, tuple_id, attribute)
                    if composed.has_field(field):
                        value = row[composed.position(field)]
                    else:
                        value = value_map[attribute]
                    if value is BOTTOM:
                        absent = True
                        break
                    values.append(value)
                if not absent:
                    produced.add(tuple(values))
            for produced_row in produced:
                per_row_matches[produced_row] = per_row_matches.get(produced_row, 0.0) + (
                    composed.probability(row_index)
                )
        for produced_row, component_confidence in per_row_matches.items():
            note(produced_row, min(component_confidence, 1.0))

    return [(row, confidences[row]) for row in order]


def uwsdt_possible(uwsdt: UWSDT, relation_name: str) -> List[Tuple[Any, ...]]:
    """``possible(R)`` natively on a UWSDT."""
    return [row for row, _ in uwsdt_possible_with_confidence(uwsdt, relation_name)]


def uwsdt_confidence(uwsdt: UWSDT, relation_name: str, values: Sequence[Any]) -> float:
    """``conf(t)`` natively on a UWSDT."""
    target = tuple(values)
    for row, conf in uwsdt_possible_with_confidence(uwsdt, relation_name):
        if row == target:
            return conf
    return 0.0
