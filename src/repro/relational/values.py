"""Domain values and the two special markers used by the representation layer.

The paper uses two special symbols that are *not* domain values:

* ``⊥`` (bottom) marks a field belonging to a "deleted"/absent tuple inside
  a WSD component (Section 3).  Any tuple containing at least one ``⊥`` is
  treated as absent from the world it would otherwise belong to.
* ``?`` marks a field of a template relation whose value differs across
  worlds (Section 3, "Adding Template Relations").

Both are represented here by singleton sentinel objects so they can never be
confused with ordinary strings or numbers stored in relations.
"""

from __future__ import annotations

from typing import Any


class _Sentinel:
    """A named singleton sentinel value."""

    __slots__ = ("_label",)

    def __init__(self, label: str) -> None:
        self._label = label

    def __repr__(self) -> str:
        return self._label

    def __copy__(self) -> "_Sentinel":
        return self

    def __deepcopy__(self, memo: dict) -> "_Sentinel":
        return self

    def __reduce__(self):
        # Preserve singleton-ness across pickling.
        if self._label == "BOTTOM":
            return (_get_bottom, ())
        return (_get_placeholder, ())


def _get_bottom() -> "_Sentinel":
    return BOTTOM


def _get_placeholder() -> "_Sentinel":
    return PLACEHOLDER


#: The ``⊥`` marker of the paper: field of a deleted/absent tuple.
BOTTOM = _Sentinel("BOTTOM")

#: The ``?`` marker of the paper: template field whose value is uncertain.
PLACEHOLDER = _Sentinel("PLACEHOLDER")


def is_bottom(value: Any) -> bool:
    """Return True iff ``value`` is the ``⊥`` marker."""
    return value is BOTTOM


def is_placeholder(value: Any) -> bool:
    """Return True iff ``value`` is the ``?`` marker."""
    return value is PLACEHOLDER


def is_domain_value(value: Any) -> bool:
    """Return True iff ``value`` is an ordinary domain value (not ``⊥`` or ``?``)."""
    return value is not BOTTOM and value is not PLACEHOLDER


def contains_bottom(values: tuple) -> bool:
    """Return True iff any element of ``values`` is the ``⊥`` marker.

    Per the paper, a tuple with at least one ``⊥`` field is a ``t⊥`` tuple
    and does not belong to the world it is part of.
    """
    return any(v is BOTTOM for v in values)


def format_value(value: Any) -> str:
    """Render a value for tabular display (``⊥`` and ``?`` shown as such)."""
    if value is BOTTOM:
        return "⊥"
    if value is PLACEHOLDER:
        return "?"
    return str(value)
