"""Exception hierarchy for the relational substrate and the WSD layers.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch everything from this package with a single ``except``
clause while still being able to discriminate finer-grained failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A relation or database schema is malformed or used inconsistently.

    Examples: duplicate attribute names, projecting on an attribute that
    does not exist, taking the product of relations with overlapping
    attribute sets.
    """


class UnknownAttributeError(SchemaError):
    """An operation referenced an attribute that the schema does not define."""

    def __init__(self, attribute: str, available: tuple) -> None:
        super().__init__(
            f"unknown attribute {attribute!r}; available attributes: {list(available)!r}"
        )
        self.attribute = attribute
        self.available = tuple(available)


class UnknownRelationError(SchemaError):
    """A database was asked for a relation name it does not contain."""

    def __init__(self, name: str, available: tuple) -> None:
        super().__init__(
            f"unknown relation {name!r}; available relations: {list(available)!r}"
        )
        self.name = name
        self.available = tuple(available)


class ArityError(SchemaError):
    """A tuple's arity does not match the arity of its relation schema."""


class PredicateError(ReproError):
    """A selection predicate is malformed or cannot be evaluated on a tuple."""


class QueryError(ReproError):
    """A relational-algebra query is malformed (unknown operator, bad plan)."""


class RepresentationError(ReproError):
    """An incomplete-information representation is internally inconsistent.

    Raised, for instance, when a WSD component defines the same field twice,
    when component probabilities do not sum to one, or when a UWSDT's
    mapping relation references a component that has no local worlds.
    """


class InconsistentWorldSetError(ReproError):
    """Data cleaning removed every possible world.

    Mirrors the ``error("World-set is inconsistent")`` exit of the chase
    algorithm in Figure 24 of the paper.
    """


class ConversionError(ReproError):
    """A conversion between representation systems failed."""
