"""Relation and database schemas for the named perspective of the relational model.

The paper (Section 2) uses the named perspective: a relational schema is a
tuple ``(R1[U1], ..., Rk[Uk])`` where each ``Ri`` is a relation name and
``Ui`` a set of attribute names.  We additionally fix an *order* on the
attributes of each relation so that tuples can be stored as plain Python
tuples of values, which keeps the in-memory engine compact and fast.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from .errors import SchemaError, UnknownAttributeError, UnknownRelationError


class RelationSchema:
    """Schema of a single relation: a name plus an ordered list of attributes.

    Parameters
    ----------
    name:
        The relation name (``R`` in ``R[A, B, C]``).
    attributes:
        Attribute names in storage order.  Names must be unique.
    """

    __slots__ = ("name", "attributes", "_positions")

    def __init__(self, name: str, attributes: Sequence[str]) -> None:
        attrs = tuple(attributes)
        if not name:
            raise SchemaError("relation name must be a non-empty string")
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attribute names in schema of {name!r}: {attrs!r}")
        self.name = name
        self.attributes = attrs
        self._positions: Dict[str, int] = {a: i for i, a in enumerate(attrs)}

    @property
    def arity(self) -> int:
        """Number of attributes (``ar(R)`` in the paper)."""
        return len(self.attributes)

    def position(self, attribute: str) -> int:
        """Return the storage position of ``attribute``.

        Raises :class:`UnknownAttributeError` if the attribute is not part of
        the schema.
        """
        try:
            return self._positions[attribute]
        except KeyError:
            raise UnknownAttributeError(attribute, self.attributes) from None

    def has_attribute(self, attribute: str) -> bool:
        """Return True if ``attribute`` belongs to this schema."""
        return attribute in self._positions

    def positions(self, attributes: Iterable[str]) -> Tuple[int, ...]:
        """Return storage positions for several attributes, in the given order."""
        return tuple(self.position(a) for a in attributes)

    def project(self, attributes: Sequence[str], name: Optional[str] = None) -> "RelationSchema":
        """Return a new schema restricted to ``attributes`` (kept in the given order)."""
        for a in attributes:
            self.position(a)
        return RelationSchema(name or self.name, attributes)

    def rename_attribute(self, old: str, new: str, name: Optional[str] = None) -> "RelationSchema":
        """Return a new schema with ``old`` renamed to ``new``."""
        self.position(old)
        if self.has_attribute(new) and new != old:
            raise SchemaError(
                f"cannot rename {old!r} to {new!r}: attribute already exists in {self.name!r}"
            )
        attrs = tuple(new if a == old else a for a in self.attributes)
        return RelationSchema(name or self.name, attrs)

    def renamed(self, name: str) -> "RelationSchema":
        """Return the same schema under a different relation name."""
        return RelationSchema(name, self.attributes)

    def concat(self, other: "RelationSchema", name: Optional[str] = None) -> "RelationSchema":
        """Return the schema of the product of this relation with ``other``.

        The attribute sets must be disjoint (as required by the paper's
        product operator).
        """
        overlap = set(self.attributes) & set(other.attributes)
        if overlap:
            raise SchemaError(
                f"cannot build product schema of {self.name!r} and {other.name!r}: "
                f"attributes {sorted(overlap)!r} occur in both"
            )
        return RelationSchema(name or f"{self.name}_x_{other.name}", self.attributes + other.attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __repr__(self) -> str:
        return f"RelationSchema({self.name!r}, {list(self.attributes)!r})"


class DatabaseSchema:
    """A database schema: an ordered collection of relation schemas."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:
        self._relations: Dict[str, RelationSchema] = {}
        for schema in relations:
            self.add(schema)

    def add(self, schema: RelationSchema) -> None:
        """Add a relation schema; the name must not already be present."""
        if schema.name in self._relations:
            raise SchemaError(f"relation {schema.name!r} already declared in database schema")
        self._relations[schema.name] = schema

    def relation(self, name: str) -> RelationSchema:
        """Return the schema of relation ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name, tuple(self._relations)) from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return self._relations == other._relations

    def __repr__(self) -> str:
        return f"DatabaseSchema({list(self._relations.values())!r})"
