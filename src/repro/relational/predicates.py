"""Selection predicates for the relational algebra.

The paper's selection operator supports conditions of the forms ``A θ c``
(attribute compared to a constant) and ``A θ B`` (attribute compared to an
attribute), where ``θ`` is one of ``=, ≠, <, ≤, >, ≥``.  We additionally
provide boolean combinators so that the census queries (Figure 29), which
use conjunctions and disjunctions, can be expressed as single selections.

Predicates are evaluated against a (schema, row) pair.  For repeated
evaluation over the rows of one relation, :meth:`Predicate.compile` returns
a closure bound to attribute positions, avoiding repeated name lookups.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Dict, Iterable, Tuple

from .errors import PredicateError
from .schema import RelationSchema
from .values import BOTTOM, is_domain_value

#: Comparison operators supported by ``θ`` in the paper.
COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def comparator(symbol: str) -> Callable[[Any, Any], bool]:
    """Return the comparison function for a ``θ`` symbol."""
    try:
        return COMPARATORS[symbol]
    except KeyError:
        raise PredicateError(
            f"unknown comparison operator {symbol!r}; expected one of {sorted(COMPARATORS)}"
        ) from None


def compare(left: Any, symbol: str, right: Any) -> bool:
    """Evaluate ``left θ right``.

    Comparisons involving the ``⊥`` marker are always false: a deleted tuple
    never satisfies a selection condition.  Comparisons between incompatible
    types (e.g. a string column compared to an int constant) are false for
    ordering operators rather than raising, mirroring SQL's permissive
    casting in the paper's PostgreSQL prototype.
    """
    if left is BOTTOM or right is BOTTOM:
        return False
    op = comparator(symbol)
    try:
        return bool(op(left, right))
    except TypeError:
        if symbol in ("=", "=="):
            return False
        if symbol in ("!=", "<>"):
            return True
        return False


class Predicate:
    """Base class of selection predicates."""

    def evaluate(self, schema: RelationSchema, row: Tuple[Any, ...]) -> bool:
        """Return True iff the row satisfies the predicate."""
        raise NotImplementedError

    def compile(self, schema: RelationSchema) -> Callable[[Tuple[Any, ...]], bool]:
        """Return a fast row-level evaluator bound to ``schema``."""
        return lambda row: self.evaluate(schema, row)

    def attributes(self) -> Tuple[str, ...]:
        """Return the attributes referenced by the predicate (with duplicates removed)."""
        seen = []
        for attr in self._referenced():
            if attr not in seen:
                seen.append(attr)
        return tuple(seen)

    def _referenced(self) -> Iterable[str]:
        raise NotImplementedError

    # Combinators ------------------------------------------------------- #

    def __and__(self, other: "Predicate") -> "And":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)


class AttrConst(Predicate):
    """Condition ``A θ c``: attribute compared with a constant."""

    __slots__ = ("attribute", "op", "constant")

    def __init__(self, attribute: str, op: str, constant: Any) -> None:
        comparator(op)  # validate eagerly
        self.attribute = attribute
        self.op = op
        self.constant = constant

    def evaluate(self, schema: RelationSchema, row: Tuple[Any, ...]) -> bool:
        return compare(row[schema.position(self.attribute)], self.op, self.constant)

    def compile(self, schema: RelationSchema) -> Callable[[Tuple[Any, ...]], bool]:
        pos = schema.position(self.attribute)
        op, constant = self.op, self.constant
        return lambda row: compare(row[pos], op, constant)

    def _referenced(self) -> Iterable[str]:
        return (self.attribute,)

    def __repr__(self) -> str:
        return f"({self.attribute} {self.op} {self.constant!r})"


class AttrAttr(Predicate):
    """Condition ``A θ B``: attribute compared with another attribute."""

    __slots__ = ("left", "op", "right")

    def __init__(self, left: str, op: str, right: str) -> None:
        comparator(op)
        self.left = left
        self.op = op
        self.right = right

    def evaluate(self, schema: RelationSchema, row: Tuple[Any, ...]) -> bool:
        return compare(
            row[schema.position(self.left)], self.op, row[schema.position(self.right)]
        )

    def compile(self, schema: RelationSchema) -> Callable[[Tuple[Any, ...]], bool]:
        left_pos = schema.position(self.left)
        right_pos = schema.position(self.right)
        op = self.op
        return lambda row: compare(row[left_pos], op, row[right_pos])

    def _referenced(self) -> Iterable[str]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


class And(Predicate):
    """Conjunction of predicates."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Predicate) -> None:
        if not parts:
            raise PredicateError("And requires at least one operand")
        flattened = []
        for part in parts:
            if isinstance(part, And):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        self.parts = tuple(flattened)

    def evaluate(self, schema: RelationSchema, row: Tuple[Any, ...]) -> bool:
        return all(part.evaluate(schema, row) for part in self.parts)

    def compile(self, schema: RelationSchema) -> Callable[[Tuple[Any, ...]], bool]:
        compiled = [part.compile(schema) for part in self.parts]
        return lambda row: all(check(row) for check in compiled)

    def _referenced(self) -> Iterable[str]:
        for part in self.parts:
            yield from part._referenced()

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(p) for p in self.parts) + ")"


class Or(Predicate):
    """Disjunction of predicates."""

    __slots__ = ("parts",)

    def __init__(self, *parts: Predicate) -> None:
        if not parts:
            raise PredicateError("Or requires at least one operand")
        flattened = []
        for part in parts:
            if isinstance(part, Or):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        self.parts = tuple(flattened)

    def evaluate(self, schema: RelationSchema, row: Tuple[Any, ...]) -> bool:
        return any(part.evaluate(schema, row) for part in self.parts)

    def compile(self, schema: RelationSchema) -> Callable[[Tuple[Any, ...]], bool]:
        compiled = [part.compile(schema) for part in self.parts]
        return lambda row: any(check(row) for check in compiled)

    def _referenced(self) -> Iterable[str]:
        for part in self.parts:
            yield from part._referenced()

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(p) for p in self.parts) + ")"


class Not(Predicate):
    """Negation of a predicate.

    Note that negation over the ``⊥`` marker keeps "deleted tuples never
    match": a row containing ``⊥`` in a referenced attribute fails the inner
    comparison and would therefore *pass* a plain negation.  We explicitly
    exclude such rows so that ``Not`` is still a world-wise sound filter.
    """

    __slots__ = ("inner",)

    def __init__(self, inner: Predicate) -> None:
        self.inner = inner

    def evaluate(self, schema: RelationSchema, row: Tuple[Any, ...]) -> bool:
        for attr in self.inner.attributes():
            if not is_domain_value(row[schema.position(attr)]):
                return False
        return not self.inner.evaluate(schema, row)

    def _referenced(self) -> Iterable[str]:
        return self.inner._referenced()

    def __repr__(self) -> str:
        return f"(NOT {self.inner!r})"


class TruePredicate(Predicate):
    """A predicate satisfied by every row (useful as a neutral element)."""

    def evaluate(self, schema: RelationSchema, row: Tuple[Any, ...]) -> bool:
        return True

    def compile(self, schema: RelationSchema) -> Callable[[Tuple[Any, ...]], bool]:
        return lambda row: True

    def _referenced(self) -> Iterable[str]:
        return ()

    def __repr__(self) -> str:
        return "TRUE"


def eq(attribute: str, constant: Any) -> AttrConst:
    """Shorthand for ``A = c``."""
    return AttrConst(attribute, "=", constant)


def ne(attribute: str, constant: Any) -> AttrConst:
    """Shorthand for ``A ≠ c``."""
    return AttrConst(attribute, "!=", constant)


def lt(attribute: str, constant: Any) -> AttrConst:
    """Shorthand for ``A < c``."""
    return AttrConst(attribute, "<", constant)


def le(attribute: str, constant: Any) -> AttrConst:
    """Shorthand for ``A ≤ c``."""
    return AttrConst(attribute, "<=", constant)


def gt(attribute: str, constant: Any) -> AttrConst:
    """Shorthand for ``A > c``."""
    return AttrConst(attribute, ">", constant)


def ge(attribute: str, constant: Any) -> AttrConst:
    """Shorthand for ``A ≥ c``."""
    return AttrConst(attribute, ">=", constant)


def attr_eq(left: str, right: str) -> AttrAttr:
    """Shorthand for ``A = B``."""
    return AttrAttr(left, "=", right)
