"""Classical relational algebra on in-memory relations.

These operators are the "single world" semantics that the paper's WSD
operators must agree with on every possible world (Theorem 1).  They are
used in three places:

* as the substrate for evaluating template-relation plans in UWSDT query
  processing (Section 5),
* as the correctness oracle in tests: the naive baseline enumerates every
  world, evaluates the query with these operators, and compares against
  the WSD-level evaluation,
* as the one-world / 0 %-density baseline in the Figure 30 benchmarks.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Sequence, Tuple

from .errors import SchemaError
from .indexes import HashIndex
from .predicates import AttrConst, Predicate
from .relation import Relation, require_same_attributes
from .schema import RelationSchema


def select(
    relation: Relation,
    predicate: Predicate,
    name: Optional[str] = None,
    index: Optional[HashIndex] = None,
) -> Relation:
    """Selection ``σ_pred(R)``: keep the rows satisfying ``predicate``.

    When a :class:`~repro.relational.indexes.HashIndex` over the predicate's
    attribute is supplied and the predicate is an equality ``A = c``, the
    index is probed instead of scanning the relation.
    """
    result = Relation(relation.schema.renamed(name or relation.schema.name))
    if (
        index is not None
        and isinstance(predicate, AttrConst)
        and predicate.op in ("=", "==")
        and index.attributes == (predicate.attribute,)
        and index.relation is relation
    ):
        for row in index.lookup(predicate.constant):
            result.insert(row)
        return result
    check = predicate.compile(relation.schema)
    for row in relation:
        if check(row):
            result.insert(row)
    return result


def project(relation: Relation, attributes: Sequence[str], name: Optional[str] = None) -> Relation:
    """Projection ``π_U(R)`` with set semantics (duplicates removed)."""
    schema = relation.schema.project(attributes, name or relation.schema.name)
    positions = relation.schema.positions(attributes)
    result = Relation(schema)
    for row in relation:
        result.insert(tuple(row[p] for p in positions))
    return result


def product(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """Cartesian product ``R × S``; attribute sets must be disjoint."""
    schema = left.schema.concat(right.schema, name)
    result = Relation(schema)
    for lrow in left:
        for rrow in right:
            result.insert(lrow + rrow)
    return result


def union(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """Union ``R ∪ S`` of union-compatible relations."""
    require_same_attributes(left, right, "union")
    result = Relation(left.schema.renamed(name or left.schema.name))
    for row in left:
        result.insert(row)
    for row in right:
        result.insert(row)
    return result


def difference(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """Difference ``R − S`` of union-compatible relations."""
    require_same_attributes(left, right, "difference")
    result = Relation(left.schema.renamed(name or left.schema.name))
    right_rows = right.row_set()
    for row in left:
        if row not in right_rows:
            result.insert(row)
    return result


def intersection(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """Intersection ``R ∩ S`` (derived operator)."""
    require_same_attributes(left, right, "intersection")
    result = Relation(left.schema.renamed(name or left.schema.name))
    right_rows = right.row_set()
    for row in left:
        if row in right_rows:
            result.insert(row)
    return result


def rename(relation: Relation, old: str, new: str, name: Optional[str] = None) -> Relation:
    """Attribute renaming ``δ_{A→A'}(R)``."""
    schema = relation.schema.rename_attribute(old, new, name or relation.schema.name)
    result = Relation(schema)
    for row in relation:
        result.insert(row)
    return result


def rename_relation(relation: Relation, name: str) -> Relation:
    """Return the same rows under a new relation name."""
    return relation.copy(name)


def natural_join(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """Natural join on the shared attributes of ``left`` and ``right``.

    Provided as a convenience for examples and the application scenarios;
    the paper expresses joins as product + selection + projection.
    """
    shared = [a for a in left.schema.attributes if right.schema.has_attribute(a)]
    right_only = [a for a in right.schema.attributes if a not in shared]
    schema = RelationSchema(
        name or f"{left.schema.name}_join_{right.schema.name}",
        tuple(left.schema.attributes) + tuple(right_only),
    )
    result = Relation(schema)
    if not shared:
        for lrow in left:
            for rrow in right:
                result.insert(lrow + rrow)
        return result

    left_positions = left.schema.positions(shared)
    right_positions = right.schema.positions(shared)
    right_only_positions = right.schema.positions(right_only)
    index: Dict[Tuple[Any, ...], list] = {}
    for rrow in right:
        key = tuple(rrow[p] for p in right_positions)
        index.setdefault(key, []).append(rrow)
    for lrow in left:
        key = tuple(lrow[p] for p in left_positions)
        for rrow in index.get(key, ()):
            result.insert(lrow + tuple(rrow[p] for p in right_only_positions))
    return result


def equi_join(
    left: Relation,
    right: Relation,
    left_attr: str,
    right_attr: str,
    name: Optional[str] = None,
) -> Relation:
    """Equi-join ``R ⋈_{A=B} S`` implemented with a hash join.

    Attribute sets must be disjoint (use :func:`rename` first otherwise).
    """
    schema = left.schema.concat(right.schema, name)
    result = Relation(schema)
    left_pos = left.schema.position(left_attr)
    right_pos = right.schema.position(right_attr)
    index: Dict[Any, list] = {}
    for rrow in right:
        index.setdefault(rrow[right_pos], []).append(rrow)
    for lrow in left:
        for rrow in index.get(lrow[left_pos], ()):
            result.insert(lrow + rrow)
    return result


def group_count(relation: Relation, attributes: Sequence[str], count_as: str = "count") -> Relation:
    """Group by ``attributes`` and count rows per group (used by the bench harness)."""
    if count_as in attributes:
        raise SchemaError(f"count column {count_as!r} clashes with a grouping attribute")
    positions = relation.schema.positions(attributes)
    counts: Dict[Tuple[Any, ...], int] = {}
    for row in relation:
        key = tuple(row[p] for p in positions)
        counts[key] = counts.get(key, 0) + 1
    schema = RelationSchema(relation.schema.name, tuple(attributes) + (count_as,))
    result = Relation(schema)
    for key, count in counts.items():
        result.insert(key + (count,))
    return result


def aggregate(
    relation: Relation,
    attribute: str,
    function: Callable[[Iterable[Any]], Any],
) -> Any:
    """Apply an aggregate ``function`` to one column (e.g. ``sum``, ``max``)."""
    return function(relation.column(attribute))
