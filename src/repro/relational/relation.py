"""In-memory relations with set semantics.

A :class:`Relation` couples a :class:`~repro.relational.schema.RelationSchema`
with a set of rows.  Rows are stored as plain Python tuples whose positions
follow the schema's attribute order; named access goes through the schema.

Relations follow set semantics (as in the paper): inserting a duplicate row
is a no-op.  Iteration order is insertion order, which keeps query results
deterministic and makes golden tests stable.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .errors import ArityError, SchemaError
from .schema import RelationSchema
from .values import format_value

Row = Tuple[Any, ...]


class Relation:
    """A named relation: a schema plus a set of rows.

    Parameters
    ----------
    schema:
        The relation schema.
    rows:
        Optional initial rows.  Each row may be a sequence (interpreted in
        schema order) or a mapping from attribute name to value.
    """

    __slots__ = ("schema", "_rows", "_row_set", "_version", "_watchers")

    def __init__(self, schema: RelationSchema, rows: Iterable[Any] = ()) -> None:
        self.schema = schema
        self._rows: List[Row] = []
        self._row_set: set = set()
        self._version = 0
        self._watchers: List[Any] = []
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_dicts(
        cls, name: str, attributes: Sequence[str], dicts: Iterable[Mapping[str, Any]]
    ) -> "Relation":
        """Build a relation from dictionaries keyed by attribute name."""
        relation = cls(RelationSchema(name, attributes))
        for record in dicts:
            relation.insert(record)
        return relation

    def empty_like(self, name: Optional[str] = None) -> "Relation":
        """Return an empty relation with the same (possibly renamed) schema."""
        schema = self.schema if name is None else self.schema.renamed(name)
        return Relation(schema)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def _coerce(self, row: Any) -> Row:
        if isinstance(row, Mapping):
            missing = [a for a in self.schema.attributes if a not in row]
            if missing:
                raise ArityError(
                    f"row for {self.schema.name!r} is missing attributes {missing!r}"
                )
            extra = [k for k in row if not self.schema.has_attribute(k)]
            if extra:
                raise ArityError(
                    f"row for {self.schema.name!r} has unknown attributes {extra!r}"
                )
            return tuple(row[a] for a in self.schema.attributes)
        values = tuple(row)
        if len(values) != self.schema.arity:
            raise ArityError(
                f"row {values!r} has arity {len(values)}, "
                f"expected {self.schema.arity} for relation {self.schema.name!r}"
            )
        return values

    def insert(self, row: Any) -> bool:
        """Insert a row; return True if it was new, False if a duplicate."""
        values = self._coerce(row)
        if values in self._row_set:
            return False
        self._row_set.add(values)
        self._rows.append(values)
        self._version += 1
        if self._watchers:
            self._notify()
        return True

    def insert_many(self, rows: Iterable[Any]) -> int:
        """Insert several rows; return the number of newly inserted rows."""
        return sum(1 for row in rows if self.insert(row))

    def remove(self, row: Any) -> bool:
        """Remove a row if present; return True if it was removed."""
        values = self._coerce(row)
        if values not in self._row_set:
            return False
        self._row_set.discard(values)
        self._rows.remove(values)
        self._version += 1
        if self._watchers:
            self._notify()
        return True

    # ------------------------------------------------------------------ #
    # Mutation watchers (eager cache invalidation)
    # ------------------------------------------------------------------ #

    def watch(self, callback: Any) -> Any:
        """Register ``callback(relation)`` to fire on every effective mutation.

        Version polling already lets caches *detect* staleness; watchers let
        them drop stale entries eagerly instead (see
        :class:`~repro.core.planner.catalog.StatisticsCatalog`).  Watchers
        are not copied by :meth:`copy`.  Returns the callback for symmetry
        with :meth:`unwatch`.
        """
        self._watchers.append(callback)
        return callback

    def unwatch(self, callback: Any) -> None:
        """Deregister a watcher (no-op if it was never registered)."""
        try:
            self._watchers.remove(callback)
        except ValueError:
            pass

    def _notify(self) -> None:
        for callback in tuple(self._watchers):
            callback(self)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Any) -> bool:
        try:
            return self._coerce(row) in self._row_set
        except ArityError:
            return False

    @property
    def rows(self) -> Tuple[Row, ...]:
        """The rows of the relation, in insertion order."""
        return tuple(self._rows)

    @property
    def version(self) -> int:
        """Mutation counter; bumped on every effective insert or remove.

        Secondary indexes cache against this value so they can tell whether
        the relation changed underneath them (see
        :class:`~repro.relational.indexes.IndexPool`).
        """
        return self._version

    def row_set(self) -> frozenset:
        """The rows as a frozen set (for order-insensitive comparison)."""
        return frozenset(self._row_set)

    def value(self, row: Row, attribute: str) -> Any:
        """Return the value of ``attribute`` in ``row``."""
        return row[self.schema.position(attribute)]

    def as_dicts(self) -> List[Dict[str, Any]]:
        """Return the rows as dictionaries keyed by attribute name."""
        attrs = self.schema.attributes
        return [dict(zip(attrs, row)) for row in self._rows]

    def column(self, attribute: str) -> List[Any]:
        """Return the values of one attribute, in row order (with duplicates)."""
        pos = self.schema.position(attribute)
        return [row[pos] for row in self._rows]

    def distinct_values(self, attribute: str) -> set:
        """Return the set of distinct values of one attribute."""
        pos = self.schema.position(attribute)
        return {row[pos] for row in self._rows}

    # ------------------------------------------------------------------ #
    # Comparison and display
    # ------------------------------------------------------------------ #

    def same_rows(self, other: "Relation") -> bool:
        """Return True if both relations contain exactly the same row set.

        Attribute order must match; relation names are ignored.
        """
        if self.schema.attributes != other.schema.attributes:
            return False
        return self._row_set == other._row_set

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.schema == other.schema and self._row_set == other._row_set

    def __hash__(self) -> int:
        return hash((self.schema, frozenset(self._row_set)))

    def copy(self, name: Optional[str] = None) -> "Relation":
        """Return a shallow copy (rows are immutable tuples, so this is safe)."""
        schema = self.schema if name is None else self.schema.renamed(name)
        copied = Relation(schema)
        copied._rows = list(self._rows)
        copied._row_set = set(self._row_set)
        copied._version = self._version
        return copied

    def to_text(self, max_rows: int = 20) -> str:
        """Render the relation as an ASCII table (used by examples and docs)."""
        attrs = self.schema.attributes
        shown = self._rows[:max_rows]
        cells = [[format_value(v) for v in row] for row in shown]
        widths = [
            max([len(a)] + [len(row[i]) for row in cells]) for i, a in enumerate(attrs)
        ]
        header = " | ".join(a.ljust(widths[i]) for i, a in enumerate(attrs))
        separator = "-+-".join("-" * w for w in widths)
        lines = [f"{self.schema.name} ({len(self)} rows)", header, separator]
        lines.extend(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in cells
        )
        if len(self._rows) > max_rows:
            lines.append(f"... ({len(self._rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Relation({self.schema.name!r}, {len(self)} rows)"


def require_same_attributes(left: Relation, right: Relation, operation: str) -> None:
    """Raise :class:`SchemaError` unless both relations have identical attribute lists."""
    if left.schema.attributes != right.schema.attributes:
        raise SchemaError(
            f"{operation} requires union-compatible relations, got "
            f"{left.schema.attributes!r} and {right.schema.attributes!r}"
        )
