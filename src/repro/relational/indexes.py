"""Secondary indexes over in-memory relations.

The paper's prototype tunes query evaluation on the fixed UWSDT schema
"by employing indices and materializing often used temporary results"
(Section 5).  The UWSDT component relation ``C[FID, LWID, VAL]`` and the
mapping relation ``F[FID, CID]`` are looked up by field identifier and by
component identifier on every operator, so the UWSDT engine builds hash
indexes over those columns.  This module provides the two index flavours
used by the engine: an exact-match hash index and a sorted index supporting
range scans.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .relation import Relation, Row


class HashIndex:
    """Exact-match index mapping a key (one or more attributes) to rows."""

    __slots__ = ("relation", "attributes", "_positions", "_buckets")

    def __init__(self, relation: Relation, attributes: Sequence[str]) -> None:
        self.relation = relation
        self.attributes = tuple(attributes)
        self._positions = relation.schema.positions(self.attributes)
        self._buckets: Dict[Tuple[Any, ...], List[Row]] = {}
        for row in relation:
            self.add(row)

    def _key(self, row: Row) -> Tuple[Any, ...]:
        return tuple(row[p] for p in self._positions)

    def add(self, row: Row) -> None:
        """Register a row that has been inserted in the indexed relation."""
        self._buckets.setdefault(self._key(row), []).append(row)

    def lookup(self, *key: Any) -> List[Row]:
        """Return the rows whose indexed attributes equal ``key``."""
        return list(self._buckets.get(tuple(key), ()))

    def contains(self, *key: Any) -> bool:
        """Return True iff some row has the given key."""
        return tuple(key) in self._buckets

    def keys(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate over the distinct keys present in the index."""
        return iter(self._buckets)

    def group_sizes(self) -> Dict[Tuple[Any, ...], int]:
        """Return the number of rows per key (used for component statistics)."""
        return {key: len(rows) for key, rows in self._buckets.items()}

    def __len__(self) -> int:
        return len(self._buckets)


class IndexPool:
    """A version-validated cache of :class:`HashIndex` objects.

    The engines ask the pool for an index on every pushed-down equality
    selection; the pool rebuilds an index only when the underlying relation
    has actually changed (tracked via :attr:`Relation.version`), so repeated
    selections over the same base relation probe a shared index instead of
    rescanning it.  Keys use ``id(relation)`` — the pool must therefore keep
    a reference to the relation, which it does via the stored index.

    One pool is shared per engine, so concurrent sessions can race on the
    cache dict; a lock makes check-then-build atomic.  (Two sessions racing
    the build would each get a *correct* index either way — the lock mainly
    prevents dict corruption and duplicated build work.)
    """

    __slots__ = ("_cache", "_lock")

    def __init__(self) -> None:
        self._cache: Dict[Tuple[int, Tuple[str, ...]], Tuple[int, HashIndex]] = {}
        self._lock = threading.RLock()

    def __getstate__(self) -> bool:
        # The cache keys by ``id(relation)`` — meaningless in another
        # process — and the lock cannot pickle.  A pool crossing a process
        # boundary (a shard payload) starts empty and rebuilds on demand.
        return True

    def __setstate__(self, state: bool) -> None:
        self._cache = {}
        self._lock = threading.RLock()

    def hash_index(self, relation: Relation, attributes: Sequence[str]) -> HashIndex:
        """Return a (cached) hash index over ``attributes`` of ``relation``."""
        with self._lock:
            key = (id(relation), tuple(attributes))
            entry = self._cache.get(key)
            if entry is not None and entry[0] == relation.version and entry[1].relation is relation:
                return entry[1]
            index = HashIndex(relation, attributes)
            self._cache[key] = (relation.version, index)
            return index

    def invalidate(self, relation: Relation) -> None:
        """Drop all cached indexes of one relation."""
        with self._lock:
            stale = [key for key in self._cache if key[0] == id(relation)]
            for key in stale:
                del self._cache[key]

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)


class SortedIndex:
    """Sorted single-attribute index supporting range lookups."""

    __slots__ = ("relation", "attribute", "_position", "_keys", "_rows")

    def __init__(self, relation: Relation, attribute: str) -> None:
        self.relation = relation
        self.attribute = attribute
        self._position = relation.schema.position(attribute)
        pairs = sorted(
            ((row[self._position], row) for row in relation),
            key=lambda pair: pair[0],
        )
        self._keys = [key for key, _ in pairs]
        self._rows = [row for _, row in pairs]

    def range(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> List[Row]:
        """Return rows whose key lies in the interval ``[low, high]``.

        ``None`` bounds are unbounded.  Inclusion of each endpoint is
        controlled by ``include_low`` / ``include_high``.
        """
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._keys, low)
        else:
            start = bisect.bisect_right(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif include_high:
            stop = bisect.bisect_right(self._keys, high)
        else:
            stop = bisect.bisect_left(self._keys, high)
        return self._rows[start:stop]

    def equal(self, key: Any) -> List[Row]:
        """Return rows whose key equals ``key``."""
        return self.range(key, key)

    def min_key(self) -> Optional[Any]:
        """Smallest key, or None if the relation is empty."""
        return self._keys[0] if self._keys else None

    def max_key(self) -> Optional[Any]:
        """Largest key, or None if the relation is empty."""
        return self._keys[-1] if self._keys else None

    def __len__(self) -> int:
        return len(self._rows)
