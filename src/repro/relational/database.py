"""A database: a collection of named relations over a database schema.

A :class:`Database` is a single "possible world" in the paper's sense: a
set of relations ``R^A``, one per relation schema in ``Σ``.  The possible
worlds layer (:mod:`repro.worlds`) builds finite sets of these.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from .errors import SchemaError, UnknownRelationError
from .relation import Relation
from .schema import DatabaseSchema, RelationSchema


class Database:
    """A collection of named relations (one possible world).

    Parameters
    ----------
    relations:
        The relations of the database.  Relation names must be unique.
    """

    # ``_statistics_catalog`` is the planner's lazily attached per-engine
    # statistics cache (see repro.core.planner.catalog.catalog_for);
    # ``_index_pool`` is the executor's persistent hash-index pool
    # (see repro.core.exec.backends.index_pool_for); ``_plan_cache`` is the
    # query service's fingerprinted plan cache
    # (see repro.service.plan_cache.plan_cache_for).
    __slots__ = ("_relations", "_statistics_catalog", "_index_pool", "_plan_cache")

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: Dict[str, Relation] = {}
        for relation in relations:
            self.add(relation)

    @classmethod
    def from_mapping(cls, relations: Mapping[str, Relation]) -> "Database":
        """Build a database from a mapping ``name -> relation``.

        The mapping keys must agree with each relation's schema name.
        """
        database = cls()
        for name, relation in relations.items():
            if name != relation.schema.name:
                raise SchemaError(
                    f"mapping key {name!r} does not match relation name {relation.schema.name!r}"
                )
            database.add(relation)
        return database

    def add(self, relation: Relation) -> None:
        """Add a relation; its name must not be present yet."""
        if relation.schema.name in self._relations:
            raise SchemaError(f"relation {relation.schema.name!r} already exists in database")
        self._relations[relation.schema.name] = relation

    def replace(self, relation: Relation) -> None:
        """Add or overwrite a relation."""
        self._relations[relation.schema.name] = relation

    def relation(self, name: str) -> Relation:
        """Return the relation called ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name, tuple(self._relations)) from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def drop(self, name: str) -> None:
        """Remove a relation from the database."""
        if name not in self._relations:
            raise UnknownRelationError(name, tuple(self._relations))
        del self._relations[name]

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def schema(self) -> DatabaseSchema:
        """Return the database schema induced by the stored relations."""
        return DatabaseSchema(relation.schema for relation in self._relations.values())

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def copy(self) -> "Database":
        """Return a copy with copied relations (rows are shared immutable tuples)."""
        return Database(relation.copy() for relation in self._relations.values())

    def canonical_form(self) -> Tuple[Tuple[str, Tuple[str, ...], frozenset], ...]:
        """A hashable, order-insensitive rendering of the database contents.

        Two databases are the same possible world iff their canonical forms
        are equal.  Used heavily by tests that compare world-sets.
        """
        return tuple(
            sorted(
                (name, relation.schema.attributes, relation.row_set())
                for name, relation in self._relations.items()
            )
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self.canonical_form() == other.canonical_form()

    def __hash__(self) -> int:
        return hash(self.canonical_form())

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}({len(rel)})" for name, rel in self._relations.items())
        return f"Database({parts})"


def empty_database(schema: DatabaseSchema) -> Database:
    """Return a database with an empty relation for each schema in ``schema``."""
    return Database(Relation(relation_schema) for relation_schema in schema)


def single_relation_database(relation: Relation) -> Database:
    """Convenience constructor for the common single-relation case."""
    return Database([relation])


def make_relation_schema(name: str, attributes: Iterable[str]) -> RelationSchema:
    """Convenience re-export so callers can avoid importing two modules."""
    return RelationSchema(name, tuple(attributes))
