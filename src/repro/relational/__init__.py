"""In-memory relational engine: the substrate beneath the WSD layers.

The paper's prototype (MayBMS) runs on top of PostgreSQL.  This subpackage
is the pure-Python substitute: named-perspective schemas, relations with set
semantics, relational algebra, selection predicates, secondary indexes, and
CSV I/O.  See DESIGN.md for the substitution rationale.
"""

from .algebra import (
    aggregate,
    difference,
    equi_join,
    group_count,
    intersection,
    natural_join,
    product,
    project,
    rename,
    rename_relation,
    select,
    union,
)
from .csvio import load_relation, save_relation
from .database import Database, empty_database, single_relation_database
from .errors import (
    ArityError,
    ConversionError,
    InconsistentWorldSetError,
    PredicateError,
    QueryError,
    RepresentationError,
    ReproError,
    SchemaError,
    UnknownAttributeError,
    UnknownRelationError,
)
from .indexes import HashIndex, IndexPool, SortedIndex
from .predicates import (
    And,
    AttrAttr,
    AttrConst,
    Not,
    Or,
    Predicate,
    TruePredicate,
    attr_eq,
    compare,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)
from .relation import Relation
from .schema import DatabaseSchema, RelationSchema
from .values import BOTTOM, PLACEHOLDER, is_bottom, is_domain_value, is_placeholder

__all__ = [
    "aggregate",
    "difference",
    "equi_join",
    "group_count",
    "intersection",
    "natural_join",
    "product",
    "project",
    "rename",
    "rename_relation",
    "select",
    "union",
    "load_relation",
    "save_relation",
    "Database",
    "empty_database",
    "single_relation_database",
    "ArityError",
    "ConversionError",
    "InconsistentWorldSetError",
    "PredicateError",
    "QueryError",
    "RepresentationError",
    "ReproError",
    "SchemaError",
    "UnknownAttributeError",
    "UnknownRelationError",
    "HashIndex",
    "IndexPool",
    "SortedIndex",
    "And",
    "AttrAttr",
    "AttrConst",
    "Not",
    "Or",
    "Predicate",
    "TruePredicate",
    "attr_eq",
    "compare",
    "eq",
    "ge",
    "gt",
    "le",
    "lt",
    "ne",
    "Relation",
    "DatabaseSchema",
    "RelationSchema",
    "BOTTOM",
    "PLACEHOLDER",
    "is_bottom",
    "is_domain_value",
    "is_placeholder",
]
