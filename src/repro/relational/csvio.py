"""CSV import/export for relations.

The census experiments load the (synthetic) IPUMS extract from disk; these
helpers provide the corresponding load/save path.  Values are written as
strings; an optional ``types`` mapping converts columns back to ints/floats
on load.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Union

from .errors import SchemaError
from .relation import Relation
from .schema import RelationSchema
from .values import BOTTOM, PLACEHOLDER

#: Textual encodings of the special markers in CSV files.
_BOTTOM_TOKEN = "__BOTTOM__"
_PLACEHOLDER_TOKEN = "__PLACEHOLDER__"

PathLike = Union[str, Path]


def save_relation(relation: Relation, path: PathLike) -> None:
    """Write ``relation`` to ``path`` as a CSV file with a header row."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.attributes)
        for row in relation:
            writer.writerow([_encode(value) for value in row])


def load_relation(
    path: PathLike,
    name: Optional[str] = None,
    types: Optional[Mapping[str, Callable[[str], Any]]] = None,
) -> Relation:
    """Read a CSV file (with a header row) into a relation.

    Parameters
    ----------
    path:
        CSV file to read.
    name:
        Relation name; defaults to the file stem.
    types:
        Optional mapping ``attribute -> converter`` applied to each value
        (e.g. ``{"AGE": int}``).  Attributes not mentioned stay strings.
    """
    source = Path(path)
    relation_name = name or source.stem
    with source.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"CSV file {source} is empty (no header row)") from None
        schema = RelationSchema(relation_name, header)
        converters: Dict[int, Callable[[str], Any]] = {}
        if types:
            for attribute, converter in types.items():
                converters[schema.position(attribute)] = converter
        relation = Relation(schema)
        for raw in reader:
            if len(raw) != schema.arity:
                raise SchemaError(
                    f"row {raw!r} in {source} has {len(raw)} fields, expected {schema.arity}"
                )
            values = []
            for position, text in enumerate(raw):
                decoded = _decode(text)
                if decoded is BOTTOM or decoded is PLACEHOLDER:
                    values.append(decoded)
                elif position in converters:
                    values.append(converters[position](decoded))
                else:
                    values.append(decoded)
            relation.insert(tuple(values))
    return relation


def _encode(value: Any) -> str:
    if value is BOTTOM:
        return _BOTTOM_TOKEN
    if value is PLACEHOLDER:
        return _PLACEHOLDER_TOKEN
    return str(value)


def _decode(text: str) -> Any:
    if text == _BOTTOM_TOKEN:
        return BOTTOM
    if text == _PLACEHOLDER_TOKEN:
        return PLACEHOLDER
    return text
