"""The plan-invariant verifier: rewrites and lowered plans, checked.

Two families of invariants, both enabled by ``REPRO_VERIFY_PLANS=1`` (the
tier-1 suite and the possible-worlds oracle turn the flag on globally, so
every rewrite-rule application and every lowering in every test is
checked):

* **Rewrites are schema-preserving.**  After every successful rule firing
  the planner compares the inferred output attribute list of the tree
  before and after the rewrite (via
  :func:`~repro.analysis.schema.inferred_attributes`).  A rule that
  changes the output schema is a planner bug, reported with the rule name,
  both trees and both schemas.

* **Physical plans are well-formed.**  After lowering, the physical tree
  is checked for: attribute resolution through every operator (the same
  checks as the logical analyzer), hash-join/INLJ key compatibility,
  ``IndexScan`` only where the backend can probe an index (hashable
  equality predicate over a stored relation), ``Materialize`` /
  ``Dematerialize`` properly paired (batch regions open with Materialize,
  close with Dematerialize, contain only vectorized-kernel operators, and
  sit over provably-certain subtrees), and the plan's engine kind matching
  the backend that will execute it.  The plan cache re-checks kind
  consistency when serving entries.

Violations raise :class:`PlanInvariantError`.  Verification is off by
default in library use (zero overhead beyond one truthiness check); tests
and the CI suite run with it on.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Optional, Sequence, Tuple

from ..relational.errors import QueryError
from ..core.exec.physical import (
    Dematerialize,
    Difference,
    Exchange,
    Filter,
    Gather,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    Intersection,
    Materialize,
    PhysicalOperator,
    PhysicalPlan,
    Product,
    Project,
    Rename,
    Scan,
    Union,
)
from .schema import SchemaContext, inferred_attributes

#: Environment variable that switches verification on (``1``/``true``/...).
VERIFY_ENV = "REPRO_VERIFY_PLANS"

#: Operators allowed inside a columnar batch region (must mirror
#: ``repro.core.exec.columnar.COLUMNAR_KERNEL_OPS``).
KERNEL_OPS = frozenset(
    {"Filter", "Project", "Rename", "HashJoin", "Union", "Difference", "Intersection"}
)

#: Operators allowed inside an ``Exchange`` shard subtree (must mirror
#: ``repro.core.exec.shard.SHARDABLE_OPS``): per-tuple operators only —
#: anything that merges components across distinct base tuples must run
#: above the Gather, on the merged engine.
SHARDABLE_OPS = frozenset({"Scan", "IndexScan", "Filter", "Project", "Rename"})

_OVERRIDE: Optional[bool] = None
_REWRITES_VERIFIED = 0
_PLANS_VERIFIED = 0


class PlanInvariantError(QueryError):
    """A rewrite or a lowered plan violated a planner invariant."""


def set_verification(enabled: Optional[bool]) -> Optional[bool]:
    """Force verification on/off for this process (None restores the env
    variable's say); returns the previous override, for restoring."""
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = enabled
    return previous


def verification_enabled() -> bool:
    """Whether plan verification is active (override, else ``REPRO_VERIFY_PLANS``)."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    value = os.environ.get(VERIFY_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


def rewrites_verified() -> int:
    """Rewrite applications checked so far in this process (test probe)."""
    return _REWRITES_VERIFIED


def plans_verified() -> int:
    """Physical plans checked so far in this process (test probe)."""
    return _PLANS_VERIFIED


# --------------------------------------------------------------------------- #
# Rewrite verification
# --------------------------------------------------------------------------- #


def verify_rewrite(
    rule_name: str,
    phase: str,
    before: Any,
    after: Any,
    schema_context: Optional[SchemaContext] = None,
) -> None:
    """Assert one rule firing preserved the subtree's output schema.

    Comparison is on the *ordered* attribute list — a rule that permutes
    columns changes query results and is just as wrong as one that drops
    them.  Either side inferring to None (unknown base schema) skips the
    check: absence of information is not a violation.
    """
    global _REWRITES_VERIFIED
    _REWRITES_VERIFIED += 1
    before_attrs = inferred_attributes(before, schema_context)
    after_attrs = inferred_attributes(after, schema_context)
    if before_attrs is None or after_attrs is None:
        return
    if tuple(before_attrs) != tuple(after_attrs):
        raise PlanInvariantError(
            f"rewrite rule {rule_name!r} (phase {phase!r}) is not "
            f"schema-preserving:\n"
            f"  before {tuple(before_attrs)!r}:\n{before.to_text('    ')}\n"
            f"  after  {tuple(after_attrs)!r}:\n{after.to_text('    ')}"
        )


# --------------------------------------------------------------------------- #
# Physical plan verification
# --------------------------------------------------------------------------- #


def _fail(plan: PhysicalPlan, node: PhysicalOperator, reason: str) -> None:
    raise PlanInvariantError(
        f"malformed physical plan: {reason}\n"
        f"  at operator: {node.label()}\n{plan.explain()}"
    )


def _hashable_equality(predicate: Any) -> bool:
    from ..relational.predicates import AttrConst

    if not isinstance(predicate, AttrConst) or predicate.op not in ("=", "=="):
        return False
    try:
        hash(predicate.constant)
    except TypeError:
        return False
    return True


def verify_physical(
    plan: PhysicalPlan,
    backend: Any = None,
    schema_context: Optional[SchemaContext] = None,
    certain_base: Optional[Callable[[str], bool]] = None,
) -> None:
    """Check a lowered plan's structural well-formedness.

    ``backend`` (optional) contributes capability checks — engine-kind
    match, index support; ``schema_context`` contributes attribute
    resolution; ``certain_base`` (optional, the columnar backend's probe)
    lets the verifier confirm Materialize only sits over certain subtrees.
    Any information not supplied simply disables the checks that need it.
    """
    global _PLANS_VERIFIED
    _PLANS_VERIFIED += 1
    context = schema_context or SchemaContext.empty()

    if backend is not None and backend.kind != plan.engine:
        raise PlanInvariantError(
            f"plan lowered for engine kind {plan.engine!r} paired with a "
            f"{backend.kind!r} backend"
        )
    columnar_plan = plan.engine == "columnar"
    sharded_plan = plan.engine == "sharded"

    def visit(node: PhysicalOperator) -> Tuple[Optional[Tuple[str, ...]], str]:
        """Returns ``(attributes or None, handle kind)`` for the subtree;
        ``kind`` is ``"row"`` or ``"batch"``."""
        if isinstance(node, (Materialize, Dematerialize)) and not columnar_plan:
            _fail(
                plan,
                node,
                f"{node.op_name} in a {plan.engine!r} plan — boundaries belong "
                "to columnar plans only",
            )
        if isinstance(node, (Exchange, Gather)) and not sharded_plan:
            _fail(
                plan,
                node,
                f"{node.op_name} in a {plan.engine!r} plan — shard boundaries "
                "belong to sharded plans only",
            )
        if isinstance(node, Gather):
            exchange = node.children[0]
            if not isinstance(exchange, Exchange):
                _fail(plan, node, "Gather must sit directly over an Exchange")
            for inner in exchange.children[0].walk():
                if inner.op_name not in SHARDABLE_OPS:
                    _fail(
                        plan,
                        node,
                        f"{inner.op_name} inside an Exchange subtree — only "
                        "per-tuple (component-confined) operators may shard",
                    )
            attrs, kind = visit(exchange.children[0])
            if kind != "row":
                _fail(plan, node, "Exchange subtree must produce a row handle")
            return attrs, "row"
        if isinstance(node, Exchange):
            _fail(plan, node, "Exchange without an enclosing Gather")
        if isinstance(node, Scan):
            return context.relation_attributes(node.relation), "row"
        if isinstance(node, IndexScan):
            if backend is not None and not backend.supports_index_scan:
                _fail(plan, node, "IndexScan on a backend without index support")
            if not _hashable_equality(node.predicate):
                _fail(
                    plan,
                    node,
                    f"IndexScan predicate {node.predicate!r} is not a hashable "
                    "equality — no index can serve it",
                )
            attrs = context.relation_attributes(node.relation)
            if attrs is not None:
                for attribute in node.predicate.attributes():
                    if attribute not in attrs:
                        _fail(
                            plan,
                            node,
                            f"IndexScan predicate references {attribute!r}, not an "
                            f"attribute of {node.relation!r} {tuple(attrs)!r}",
                        )
            return attrs, "row"
        if isinstance(node, IndexNestedLoopJoin):
            if not isinstance(node.inner, Scan):
                _fail(
                    plan,
                    node,
                    "IndexNestedLoopJoin inner input must be a base-relation Scan",
                )
            if backend is not None and not backend.supports_index_join:
                _fail(
                    plan, node, "IndexNestedLoopJoin on a backend without index joins"
                )
            outer_attrs, outer_kind = visit(node.outer)
            if outer_kind != "row":
                _fail(plan, node, "IndexNestedLoopJoin outer input must be a row handle")
            inner_attrs = context.relation_attributes(node.inner.relation)
            if outer_attrs is not None and node.left_attr not in outer_attrs:
                _fail(
                    plan,
                    node,
                    f"join key {node.left_attr!r} not produced by the outer input "
                    f"{tuple(outer_attrs)!r}",
                )
            if inner_attrs is not None and node.right_attr not in inner_attrs:
                _fail(
                    plan,
                    node,
                    f"join key {node.right_attr!r} not an attribute of "
                    f"{node.inner.relation!r} {tuple(inner_attrs)!r}",
                )
            if outer_attrs is None or inner_attrs is None:
                return None, "row"
            return outer_attrs + inner_attrs, "row"
        if isinstance(node, Materialize):
            child_attrs, child_kind = visit(node.children[0])
            if child_kind != "row":
                _fail(plan, node, "Materialize over a batch handle (double boundary)")
            if certain_base is not None and node.base_relation_names:
                for name in node.base_relation_names:
                    if not certain_base(name):
                        _fail(
                            plan,
                            node,
                            f"Materialize over subtree reading uncertain relation "
                            f"{name!r} — kernels only run over certain subtrees",
                        )
            return child_attrs, "batch"
        if isinstance(node, Dematerialize):
            child_attrs, child_kind = visit(node.children[0])
            if child_kind != "batch":
                _fail(plan, node, "Dematerialize over a row handle (unpaired boundary)")
            return child_attrs, "row"

        results = [visit(child) for child in node.children]
        kinds = {kind for _, kind in results}
        if len(kinds) > 1:
            _fail(plan, node, f"{node.op_name} mixes batch and row inputs")
        kind = kinds.pop() if kinds else "row"
        if kind == "batch" and node.op_name not in KERNEL_OPS:
            _fail(
                plan,
                node,
                f"{node.op_name} consumes a batch but has no vectorized kernel",
            )

        if isinstance(node, Filter):
            attrs = results[0][0]
            if attrs is not None:
                for attribute in node.predicate.attributes():
                    if attribute not in attrs:
                        _fail(
                            plan,
                            node,
                            f"filter predicate references {attribute!r}, not in the "
                            f"input schema {tuple(attrs)!r}",
                        )
            return attrs, kind
        if isinstance(node, Project):
            attrs = results[0][0]
            if attrs is not None:
                for attribute in node.attributes:
                    if attribute not in attrs:
                        _fail(
                            plan,
                            node,
                            f"projection references {attribute!r}, not in the input "
                            f"schema {tuple(attrs)!r}",
                        )
            return tuple(node.attributes), kind
        if isinstance(node, Rename):
            attrs = results[0][0]
            if attrs is None:
                return None, kind
            if node.old not in attrs:
                _fail(
                    plan,
                    node,
                    f"rename of {node.old!r}, not in the input schema {tuple(attrs)!r}",
                )
            if node.new != node.old and node.new in attrs:
                _fail(
                    plan,
                    node,
                    f"rename {node.old!r}→{node.new!r} collides with an existing "
                    f"attribute in {tuple(attrs)!r}",
                )
            return tuple(node.new if a == node.old else a for a in attrs), kind
        if isinstance(node, HashJoin):
            left_attrs, right_attrs = results[0][0], results[1][0]
            if left_attrs is not None and node.left_attr not in left_attrs:
                _fail(
                    plan,
                    node,
                    f"join key {node.left_attr!r} not produced by the left input "
                    f"{tuple(left_attrs)!r}",
                )
            if right_attrs is not None and node.right_attr not in right_attrs:
                _fail(
                    plan,
                    node,
                    f"join key {node.right_attr!r} not produced by the right input "
                    f"{tuple(right_attrs)!r}",
                )
            if left_attrs is None or right_attrs is None:
                return None, kind
            return left_attrs + right_attrs, kind
        if isinstance(node, Product):
            left_attrs, right_attrs = results[0][0], results[1][0]
            if left_attrs is not None and right_attrs is not None:
                overlap = set(left_attrs) & set(right_attrs)
                if overlap:
                    _fail(
                        plan,
                        node,
                        f"product sides share attributes {sorted(overlap)!r}",
                    )
                return left_attrs + right_attrs, kind
            return None, kind
        if isinstance(node, (Union, Difference, Intersection)):
            left_attrs, right_attrs = results[0][0], results[1][0]
            if left_attrs is not None and right_attrs is not None:
                if tuple(left_attrs) != tuple(right_attrs):
                    _fail(
                        plan,
                        node,
                        f"{node.op_name} inputs are not union-compatible: "
                        f"{tuple(left_attrs)!r} vs {tuple(right_attrs)!r}",
                    )
            return (
                left_attrs if left_attrs is not None else right_attrs,
                kind,
            )
        # Unknown / future operator kinds: nothing to check structurally.
        return None, kind

    _, root_kind = visit(plan.root)
    if root_kind != "row":
        raise PlanInvariantError(
            "physical plan root produces a batch handle — the final "
            f"Dematerialize boundary is missing\n{plan.explain()}"
        )


# --------------------------------------------------------------------------- #
# Plan-cache backend-kind consistency
# --------------------------------------------------------------------------- #


def verify_cached_backend(
    entry_backend: str, physical_engine: str, valid_kinds: Sequence[str]
) -> None:
    """Assert a plan-cache entry's recorded backend kind is coherent.

    The entry's ``backend`` must equal the engine kind its physical plan was
    lowered for, and that kind must be one the owning engine can execute
    (its row backend kind, or ``columnar``).
    """
    if entry_backend != physical_engine:
        raise PlanInvariantError(
            f"plan-cache entry records backend {entry_backend!r} but its "
            f"physical plan was lowered for {physical_engine!r}"
        )
    if entry_backend not in valid_kinds:
        raise PlanInvariantError(
            f"plan-cache entry backend {entry_backend!r} is not executable "
            f"by this engine (valid kinds: {tuple(valid_kinds)!r})"
        )
