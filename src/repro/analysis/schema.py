"""Bottom-up schema and type inference over logical :class:`Query` trees.

The analyses here answer, *before execution*, the questions the engines
otherwise answer with a ``KeyError`` (or a silently-false comparison) deep
inside an operator:

* does every referenced attribute exist at the point of reference?
* does a product/join introduce a duplicate attribute, or a rename collide
  with an existing one?
* are the two sides of a ∪ / − / ∩ union-compatible (same arity, same
  attribute names, compatible column types)?
* does a predicate compare compatible domains (a string column against an
  int constant can never match — the permissive ``compare()`` would just
  return False row by row)?

Attribute *names* come from the planner statistics (or any
:class:`SchemaContext`); attribute *types* are abstracted into a tiny
lattice — ``number`` / ``str`` / ``bytes`` / ``any`` — and inferred from
the catalog's reservoir samples.  ``any`` is compatible with everything, so
the analysis only rejects *definite* errors: a relation the context has
never seen simply propagates "unknown" and disables the checks that would
need it.

Strict checking (:func:`analyze`) raises :class:`AnalysisError` — a
:class:`~repro.relational.errors.SchemaError` — whose message embeds the
rendered query tree with a marker on the offending node.  The non-raising
:func:`inferred_attributes` does pure attribute propagation and is what the
plan-invariant verifier uses to prove rewrites schema-preserving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.algebra.query import (
    BaseRelation,
    Difference,
    Intersection,
    Join,
    Product,
    Project,
    Query,
    Rename,
    Select,
    Union,
)
from ..relational.errors import SchemaError
from ..relational.predicates import (
    And,
    AttrAttr,
    AttrConst,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from ..relational.values import is_domain_value

# --------------------------------------------------------------------------- #
# The type lattice
# --------------------------------------------------------------------------- #

#: Top of the type lattice: compatible with every type.
ANY_TYPE = "any"
#: int / float / bool collapse into one numeric domain (Python compares them).
NUMBER = "number"
STRING = "str"
BYTES = "bytes"


def type_name(value: Any) -> str:
    """Abstract domain of a constant (placeholders/⊥ abstract to ``any``)."""
    if not is_domain_value(value):
        return ANY_TYPE
    if isinstance(value, (bool, int, float)):
        return NUMBER
    if isinstance(value, str):
        return STRING
    if isinstance(value, bytes):
        return BYTES
    return ANY_TYPE


def types_compatible(left: str, right: str) -> bool:
    """Whether two abstract types can ever compare equal."""
    return left == ANY_TYPE or right == ANY_TYPE or left == right


def join_types(left: str, right: str) -> str:
    """Least upper bound of two abstract types."""
    return left if left == right else ANY_TYPE


# --------------------------------------------------------------------------- #
# Schema context: what the analysis knows about stored relations
# --------------------------------------------------------------------------- #


class SchemaContext:
    """Base-relation attribute lists and (lazily derived) column types.

    ``attributes`` maps relation name → ordered attribute tuple; ``types``
    (optional) maps relation name → per-attribute abstract type.  Relations
    absent from the context are *unknown*: inference propagates None for
    them and every check that would need their schema is skipped.
    """

    def __init__(
        self,
        attributes: Optional[Mapping[str, Sequence[str]]] = None,
        types: Optional[Mapping[str, Mapping[str, str]]] = None,
        type_loader: Optional[Callable[[str], Optional[Mapping[str, str]]]] = None,
    ) -> None:
        self._attributes: Dict[str, Tuple[str, ...]] = {
            name: tuple(attrs) for name, attrs in (attributes or {}).items()
        }
        self._types: Dict[str, Dict[str, str]] = {
            name: dict(mapping) for name, mapping in (types or {}).items()
        }
        #: Lazily resolves a relation's column types on first use (sampling
        #: work is only paid for relations a query actually mentions).
        self._type_loader = type_loader

    @classmethod
    def empty(cls) -> "SchemaContext":
        return cls()

    @classmethod
    def from_statistics(cls, statistics: Any) -> "SchemaContext":
        """Schema context over planner statistics (names + sampled types)."""

        def load_types(name: str) -> Optional[Mapping[str, str]]:
            sample = statistics.samples.get(name)
            if sample is None or not sample.rows:
                return None
            return column_types(sample.attributes, sample.rows)

        return cls(attributes=statistics.attributes, type_loader=load_types)

    @classmethod
    def from_engine(cls, engine: Any) -> "SchemaContext":
        """Schema context for a live engine (names from its schema; types
        from stored rows on a Database, template rows on a UWSDT)."""
        schema = getattr(engine, "schema", None)
        if callable(schema):  # Database.schema() is a method; UWSDT/WSD attribute
            schema = schema()
        if schema is None:
            return cls()
        attributes = {rs.name: rs.attributes for rs in schema}

        def load_types(name: str) -> Optional[Mapping[str, str]]:
            attrs = attributes.get(name)
            if attrs is None:
                return None
            rows: List[Tuple[Any, ...]] = []
            if hasattr(engine, "relation"):  # Database
                try:
                    rows = list(engine.relation(name))[:128]
                except Exception:
                    return None
            elif hasattr(engine, "template_rows"):  # UWSDT
                try:
                    rows = [values for _, values in engine.template_rows(name)][:128]
                except Exception:
                    return None
            if not rows:
                return None
            return column_types(attrs, rows)

        return cls(attributes=attributes, type_loader=load_types)

    def relation_attributes(self, name: str) -> Optional[Tuple[str, ...]]:
        return self._attributes.get(name)

    def relation_types(self, name: str) -> Mapping[str, str]:
        cached = self._types.get(name)
        if cached is None:
            loaded = self._type_loader(name) if self._type_loader is not None else None
            cached = dict(loaded) if loaded is not None else {}
            self._types[name] = cached
        return cached

    def attribute_type(self, relation: str, attribute: str) -> str:
        return self.relation_types(relation).get(attribute, ANY_TYPE)

    def __repr__(self) -> str:
        return f"SchemaContext({sorted(self._attributes)})"


def column_types(
    attributes: Sequence[str], rows: Iterable[Tuple[Any, ...]]
) -> Dict[str, str]:
    """Per-attribute abstract type over sampled rows (placeholders skipped)."""
    types: Dict[str, Optional[str]] = {a: None for a in attributes}
    for row in rows:
        for attribute, value in zip(attributes, row):
            if not is_domain_value(value):
                continue
            observed = type_name(value)
            current = types[attribute]
            types[attribute] = observed if current is None else join_types(current, observed)
    return {a: (t if t is not None else ANY_TYPE) for a, t in types.items()}


# --------------------------------------------------------------------------- #
# Inference results and errors
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class InferredSchema:
    """Resolved output schema of a query subtree: ordered names + types."""

    attributes: Tuple[str, ...]
    types: Tuple[str, ...]

    def type_of(self, attribute: str) -> str:
        try:
            return self.types[self.attributes.index(attribute)]
        except ValueError:
            return ANY_TYPE

    def describe(self) -> str:
        return "(" + ", ".join(
            a if t == ANY_TYPE else f"{a}: {t}"
            for a, t in zip(self.attributes, self.types)
        ) + ")"


#: Marker appended to the offending node's line in rendered error trees.
OFFENDING_MARKER = "   <-- here"


def render_offending(root: Query, offending: Query, indent: str = "  ") -> str:
    """Render ``root`` like ``Query.to_text`` with ``offending`` marked.

    The marker matches by object identity, so structurally equal siblings
    stay unmarked.
    """

    def walk(node: Query, prefix: str) -> List[str]:
        line = prefix + node.node_label()
        if node is offending:
            line += OFFENDING_MARKER
        lines = [line]
        for child in node.children():
            lines.extend(walk(child, prefix + "  "))
        return lines

    return "\n".join(walk(root, indent))


class AnalysisError(SchemaError):
    """A definite schema/type error found by static analysis.

    ``code`` discriminates the error class (``unknown-attribute``,
    ``duplicate-attribute``, ``arity-mismatch``, ``attribute-mismatch``,
    ``type-mismatch``); the message embeds the rendered query tree with the
    offending node marked.
    """

    def __init__(self, code: str, reason: str, root: Query, node: Query) -> None:
        message = f"plan analysis failed [{code}]: {reason}"
        if root is not None:
            message += "\n" + render_offending(root, node)
        super().__init__(message)
        self.code = code
        self.reason = reason
        self.root = root
        self.node = node


#: The error classes :func:`analyze` can report.
ERROR_CODES = (
    "unknown-attribute",
    "duplicate-attribute",
    "arity-mismatch",
    "attribute-mismatch",
    "type-mismatch",
)


# --------------------------------------------------------------------------- #
# Strict analysis
# --------------------------------------------------------------------------- #


class _Analyzer:
    def __init__(self, root: Query, context: SchemaContext) -> None:
        self.root = root
        self.context = context

    def fail(self, code: str, node: Query, reason: str) -> None:
        raise AnalysisError(code, reason, self.root, node)

    def infer(self, node: Query) -> Optional[InferredSchema]:
        if isinstance(node, BaseRelation):
            attrs = self.context.relation_attributes(node.name)
            if attrs is None:
                return None
            types = tuple(self.context.attribute_type(node.name, a) for a in attrs)
            return InferredSchema(attrs, types)
        if isinstance(node, Select):
            child = self.infer(node.child)
            if child is not None:
                self.check_predicate(node, node.predicate, child)
            return child
        if isinstance(node, Project):
            child = self.infer(node.child)
            duplicate = _first_duplicate(node.attributes)
            if duplicate is not None:
                self.fail(
                    "duplicate-attribute",
                    node,
                    f"projection lists attribute {duplicate!r} more than once",
                )
            if child is None:
                return InferredSchema(
                    tuple(node.attributes), (ANY_TYPE,) * len(node.attributes)
                )
            for attribute in node.attributes:
                if attribute not in child.attributes:
                    self.fail(
                        "unknown-attribute",
                        node,
                        f"projection references unknown attribute {attribute!r}; "
                        f"input schema is {child.describe()}",
                    )
            return InferredSchema(
                tuple(node.attributes),
                tuple(child.type_of(a) for a in node.attributes),
            )
        if isinstance(node, Rename):
            child = self.infer(node.child)
            if child is None:
                return None
            if node.old not in child.attributes:
                self.fail(
                    "unknown-attribute",
                    node,
                    f"rename references unknown attribute {node.old!r}; "
                    f"input schema is {child.describe()}",
                )
            if node.new != node.old and node.new in child.attributes:
                self.fail(
                    "duplicate-attribute",
                    node,
                    f"renaming {node.old!r} to {node.new!r} collides with an "
                    f"existing attribute; input schema is {child.describe()}",
                )
            return InferredSchema(
                tuple(node.new if a == node.old else a for a in child.attributes),
                child.types,
            )
        if isinstance(node, (Product, Join)):
            left = self.infer(node.left)
            right = self.infer(node.right)
            if isinstance(node, Join):
                self.check_join_keys(node, left, right)
            if left is None or right is None:
                return None
            overlap = set(left.attributes) & set(right.attributes)
            if overlap:
                self.fail(
                    "duplicate-attribute",
                    node,
                    f"both sides of the {'join' if isinstance(node, Join) else 'product'} "
                    f"define {sorted(overlap)!r}; left is {left.describe()}, "
                    f"right is {right.describe()} — rename one side first",
                )
            return InferredSchema(
                left.attributes + right.attributes, left.types + right.types
            )
        if isinstance(node, (Union, Difference, Intersection)):
            left = self.infer(node.left)
            right = self.infer(node.right)
            if left is not None and right is not None:
                self.check_set_compatible(node, left, right)
                return InferredSchema(
                    left.attributes,
                    tuple(join_types(lt, rt) for lt, rt in zip(left.types, right.types)),
                )
            return left if left is not None else right
        raise TypeError(f"cannot analyze query node {node!r}")

    # -- per-construct checks ---------------------------------------------- #

    def check_predicate(
        self, node: Query, predicate: Predicate, schema: InferredSchema
    ) -> None:
        if isinstance(predicate, (And, Or)):
            for part in predicate.parts:
                self.check_predicate(node, part, schema)
            return
        if isinstance(predicate, Not):
            self.check_predicate(node, predicate.inner, schema)
            return
        if isinstance(predicate, TruePredicate):
            return
        for attribute in predicate.attributes():
            if attribute not in schema.attributes:
                self.fail(
                    "unknown-attribute",
                    node,
                    f"predicate {predicate!r} references unknown attribute "
                    f"{attribute!r}; input schema is {schema.describe()}",
                )
        if isinstance(predicate, AttrConst):
            attribute_type = schema.type_of(predicate.attribute)
            constant_type = type_name(predicate.constant)
            if not types_compatible(attribute_type, constant_type):
                self.fail(
                    "type-mismatch",
                    node,
                    f"predicate {predicate!r} compares {predicate.attribute!r} "
                    f"({attribute_type}) with a {constant_type} constant — "
                    "the comparison can never hold",
                )
        elif isinstance(predicate, AttrAttr):
            left_type = schema.type_of(predicate.left)
            right_type = schema.type_of(predicate.right)
            if not types_compatible(left_type, right_type):
                self.fail(
                    "type-mismatch",
                    node,
                    f"predicate {predicate!r} compares {predicate.left!r} "
                    f"({left_type}) with {predicate.right!r} ({right_type}) — "
                    "the comparison can never hold",
                )

    def check_join_keys(
        self,
        node: Join,
        left: Optional[InferredSchema],
        right: Optional[InferredSchema],
    ) -> None:
        if left is not None and node.left_attr not in left.attributes:
            self.fail(
                "unknown-attribute",
                node,
                f"join key {node.left_attr!r} is not produced by the left "
                f"input {left.describe()}",
            )
        if right is not None and node.right_attr not in right.attributes:
            self.fail(
                "unknown-attribute",
                node,
                f"join key {node.right_attr!r} is not produced by the right "
                f"input {right.describe()}",
            )
        if left is not None and right is not None:
            left_type = left.type_of(node.left_attr)
            right_type = right.type_of(node.right_attr)
            if not types_compatible(left_type, right_type):
                self.fail(
                    "type-mismatch",
                    node,
                    f"join compares {node.left_attr!r} ({left_type}) with "
                    f"{node.right_attr!r} ({right_type}) — the keys can never match",
                )

    def check_set_compatible(
        self, node: Query, left: InferredSchema, right: InferredSchema
    ) -> None:
        operator = node.node_label()
        if len(left.attributes) != len(right.attributes):
            self.fail(
                "arity-mismatch",
                node,
                f"{operator} requires union-compatible inputs; left has arity "
                f"{len(left.attributes)} {left.describe()} but right has arity "
                f"{len(right.attributes)} {right.describe()}",
            )
        if left.attributes != right.attributes:
            self.fail(
                "attribute-mismatch",
                node,
                f"{operator} requires identical attribute lists; left is "
                f"{left.describe()} but right is {right.describe()}",
            )
        for attribute, left_type, right_type in zip(
            left.attributes, left.types, right.types
        ):
            if not types_compatible(left_type, right_type):
                self.fail(
                    "type-mismatch",
                    node,
                    f"{operator} column {attribute!r} has type {left_type} on "
                    f"the left but {right_type} on the right",
                )


def _first_duplicate(values: Sequence[str]) -> Optional[str]:
    seen = set()
    for value in values:
        if value in seen:
            return value
        seen.add(value)
    return None


def analyze(query: Query, context: Optional[SchemaContext] = None) -> Optional[InferredSchema]:
    """Strictly analyze ``query``; return its inferred output schema.

    Raises :class:`AnalysisError` on any *definite* schema or type error.
    Returns None when the output schema cannot be resolved (some base
    relation is unknown to the context) — in that case every check that
    needed the missing schema was skipped, not failed.
    """
    context = context or SchemaContext.empty()
    return _Analyzer(query, context).infer(query)


def analyze_for_statistics(query: Query, statistics: Any) -> Optional[InferredSchema]:
    """:func:`analyze` against planner statistics (the ``plan()`` hook)."""
    return analyze(query, SchemaContext.from_statistics(statistics))


# --------------------------------------------------------------------------- #
# Non-raising attribute propagation (the verifier's workhorse)
# --------------------------------------------------------------------------- #


def inferred_attributes(
    query: Query, context: Optional[SchemaContext] = None
) -> Optional[Tuple[str, ...]]:
    """Output attribute list of ``query``, or None where unresolvable.

    Pure structural propagation — no validation, never raises.  Matches the
    planner's ``output_attributes`` but sourced from a :class:`SchemaContext`,
    so the invariant verifier can compare pre- and post-rewrite schemas
    without constructing Statistics objects.
    """
    context = context or SchemaContext.empty()

    def walk(node: Query) -> Optional[Tuple[str, ...]]:
        if isinstance(node, BaseRelation):
            return context.relation_attributes(node.name)
        if isinstance(node, Select):
            return walk(node.child)
        if isinstance(node, Project):
            return tuple(node.attributes)
        if isinstance(node, Rename):
            child = walk(node.child)
            if child is None:
                return None
            return tuple(node.new if a == node.old else a for a in child)
        if isinstance(node, (Product, Join)):
            left = walk(node.left)
            right = walk(node.right)
            if left is None or right is None:
                return None
            return left + right
        if isinstance(node, (Union, Difference, Intersection)):
            left = walk(node.left)
            return left if left is not None else walk(node.right)
        return None

    return walk(query)


# --------------------------------------------------------------------------- #
# Builder-time set-operation compatibility (Query.union / difference / ∩)
# --------------------------------------------------------------------------- #


def check_set_operation(operator: str, left: Query, right: Query, node: Query) -> None:
    """Eagerly reject a definitely-incompatible ∪ / − / ∩ at build time.

    Called from the ``Query`` combinators with no statistics in scope, so
    only *structurally* resolvable schemas participate (projections pin
    their attribute lists; bare base relations are unknown and pass).  Both
    schemas are spelled out in the raised message.
    """
    left_attrs = inferred_attributes(left)
    right_attrs = inferred_attributes(right)
    if left_attrs is None or right_attrs is None:
        return
    if len(left_attrs) != len(right_attrs):
        raise AnalysisError(
            "arity-mismatch",
            f"{operator} requires union-compatible inputs; left has arity "
            f"{len(left_attrs)} {tuple(left_attrs)!r} but right has arity "
            f"{len(right_attrs)} {tuple(right_attrs)!r}",
            node,
            node,
        )
    if tuple(left_attrs) != tuple(right_attrs):
        raise AnalysisError(
            "attribute-mismatch",
            f"{operator} requires identical attribute lists; left is "
            f"{tuple(left_attrs)!r} but right is {tuple(right_attrs)!r}",
            node,
            node,
        )
