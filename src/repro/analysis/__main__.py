"""Command-line entry point: ``python -m repro.analysis --lint``.

Runs the repo-specific AST lint of :mod:`repro.analysis.lint` over the
``repro`` package, compares the findings against the checked-in baseline,
optionally writes the CI report artifact, and exits non-zero only when
*new* (non-baselined) violations exist.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .lint import (
    DEFAULT_BASELINE,
    build_report,
    default_root,
    load_baseline,
    run_lint,
    split_by_baseline,
    write_baseline,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis utilities for the repro codebase.",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="run the repo-specific AST lint rules",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="package directory to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline of accepted violations (default: %(default)s)",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="write a JSON report (the LINT_report.json CI artifact) here",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept the current findings as the new baseline and exit 0",
    )
    args = parser.parse_args(argv)

    if not args.lint:
        parser.print_help()
        return 2

    root = args.root if args.root is not None else default_root()
    violations = run_lint(root)
    baseline = load_baseline(args.baseline)
    new, known = split_by_baseline(violations, baseline)

    if args.report is not None:
        args.report.write_text(
            json.dumps(build_report(violations, baseline), indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"report written to {args.report}")

    if args.update_baseline:
        path = write_baseline(violations, args.baseline)
        print(f"baseline updated: {len(violations)} accepted violations -> {path}")
        return 0

    for violation in known:
        print(f"baselined: {violation.render()}")
    for violation in new:
        print(f"NEW: {violation.render()}")
    print(
        f"lint: {len(violations)} findings "
        f"({len(new)} new, {len(known)} baselined)"
    )
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
