"""Static analysis over plan trees and over the codebase itself.

The algebra on world-set decompositions is only sound when every rewrite
preserves schema and every operator respects placeholder semantics.  Until
this package existed those invariants were enforced only *dynamically* — by
the possible-worlds oracle at test time — while a malformed query surfaced
as a deep ``KeyError`` in the middle of an operator.  ``repro.analysis``
checks them statically, at plan-construction time:

* :mod:`~repro.analysis.schema` — bottom-up attribute/type inference over
  the logical :class:`~repro.core.algebra.query.Query` algebra.  Unknown
  attributes, duplicate attributes after a join or rename, arity/type
  mismatches across set operations and ill-typed predicates are rejected at
  ``Query`` build or ``plan()`` time with a rendered tree pointing at the
  offending node.
* :mod:`~repro.analysis.invariants` — the plan-invariant verifier: every
  rewrite-rule output is checked against the pre-rewrite inferred schema
  (rewrites must be schema-preserving) and every lowered physical plan for
  structural well-formedness (Materialize/Dematerialize pairing, join key
  compatibility, index applicability, backend-kind consistency).  Enabled
  by ``REPRO_VERIFY_PLANS=1``; the tier-1 suite turns it on globally.
* :mod:`~repro.analysis.certainty` — an abstract-interpretation pass
  propagating per-attribute certain/maybe-placeholder facts through logical
  trees.  Columnar eligibility is decided by this analysis, and
  ``explain()`` renders its per-node verdicts.
* :mod:`~repro.analysis.lint` — Python-AST lint rules specific to this
  repository (``python -m repro.analysis --lint``), with a checked-in
  baseline so CI fails only on *new* violations.
"""

from __future__ import annotations

from .certainty import (
    CERTAIN,
    MAYBE,
    UNKNOWN,
    CertaintyContext,
    node_certainty,
    render_with_certainty,
)
from .invariants import (
    PlanInvariantError,
    VERIFY_ENV,
    verification_enabled,
    verify_physical,
    verify_rewrite,
)
from .schema import (
    AnalysisError,
    InferredSchema,
    SchemaContext,
    analyze,
    check_set_operation,
    inferred_attributes,
)

__all__ = [
    "AnalysisError",
    "CERTAIN",
    "CertaintyContext",
    "InferredSchema",
    "MAYBE",
    "PlanInvariantError",
    "SchemaContext",
    "UNKNOWN",
    "VERIFY_ENV",
    "analyze",
    "check_set_operation",
    "inferred_attributes",
    "node_certainty",
    "render_with_certainty",
    "verification_enabled",
    "verify_physical",
    "verify_rewrite",
]
